"""E24 -- the observation-overhead gate: metrics must ride for ~free.

The contract of :mod:`repro.obs` is that instrumentation is cheap enough
to leave on: every hot-path touch point is a cached attribute bump (or an
``is None`` check when observation is off), polled gauges are evaluated
only at sampling instants, and the sampler itself schedules ordinary
simulator events.  This benchmark *enforces* that contract in CI: it runs
the same churn scenario with observation off, with the metrics registry +
simulated-time sampler attached, and with 1-in-64 journey sampling on top
(``observe="journeys"``), all interleaved, takes the **minimum of N
rounds** per arm (minimum is the right wall-clock estimator -- noise only
ever adds time), and fails when the metrics arm is more than
``--tolerance`` (default 10%) slower or the journeys arm more than
``--journeys-tolerance`` (default 15%) slower.

The two arms are seed-identical by construction (pinned functionally by
``tests/test_hot_path_equivalence.py``); this gate pins the *cost* side,
so a future change that accidentally turns a counter bump into a dict
lookup per event shows up in the PR that introduces it.

Run as a script for the CI gate::

    python benchmarks/bench_obs_overhead.py --scale smoke \
        --json BENCH_obs_overhead.json
"""

import time

from common import benchmark_arg_parser, write_bench_json

from repro.scenarios import churn_scenario, run_scenario

#: The gate's workload: the E18 churn shape -- 100 processes across 10
#: overlapping groups -- which runs a few wall-clock seconds per round,
#: long enough for a 10% ratio to be meaningful on CI hardware.
SMOKE_SCALE = dict(
    n_processes=100,
    n_groups=10,
    group_size=12,
    crashes=3,
    leaves=3,
    messages_per_sender=2,
    seed=7,
)

#: The E19 thousand-process shape, for local deep measurement.
FULL_SCALE = dict(
    n_processes=1000,
    n_groups=100,
    group_size=12,
    crashes=5,
    leaves=5,
    formations=3,
    messages_per_sender=1,
    seed=7,
)

SCALES = {"smoke": SMOKE_SCALE, "full": FULL_SCALE}

#: The gate: metrics-enabled wall clock within 10% of the unobserved run.
DEFAULT_TOLERANCE = 0.10

#: The journeys arm's gate: metrics + sampler + 1-in-64 journey sampling
#: within 15% of the unobserved run (the per-message hooks cost one dict
#: miss for the 63-in-64 untracked majority).
DEFAULT_JOURNEYS_TOLERANCE = 0.15

#: Rounds per arm; the minimum is kept.  Five rounds rather than three:
#: the true overhead measures ~3-4%, but with few rounds a noisy neighbour
#: can gift the baseline arm one lucky-fast round and push the ratio past
#: the ceiling; more rounds converge both minimums.
DEFAULT_ROUNDS = 5


def _run_once(scale, observe):
    """One online churn run; returns (wall_seconds, behaviour fingerprint).

    The fingerprint is what observation must NOT change: deliveries,
    messages and trace events.  ``events_processed`` is deliberately
    excluded -- the sampler's own ticks are simulator events, the one
    addition observation is allowed.
    """
    config = churn_scenario(batch_window=0.25, **scale)
    start = time.perf_counter()
    result = run_scenario(config, analysis="online", observe=observe)
    wall = time.perf_counter() - start
    assert result.passed, result.checks.violations[:3]
    return wall, (result.deliveries, result.messages_sent, result.trace_events)


def measure(scale=None, rounds=DEFAULT_ROUNDS):
    """Interleaved baseline/metrics/journeys rounds; min-of-N per arm.

    Interleaving (off, metrics, journeys, off, metrics, journeys, ...)
    rather than running each arm in a block keeps slow drift -- thermal
    throttling, a noisy CI neighbour -- from loading one arm more than
    the others.
    """
    scale = SMOKE_SCALE if scale is None else scale
    baseline_walls, observed_walls, journey_walls = [], [], []
    fingerprint = None
    for _ in range(rounds):
        wall, fingerprint = _run_once(scale, observe=None)
        baseline_walls.append(wall)
        wall, observed_fingerprint = _run_once(scale, observe="metrics")
        observed_walls.append(wall)
        assert observed_fingerprint == fingerprint, (
            "observation changed the run: "
            f"{observed_fingerprint} != {fingerprint}"
        )
        wall, journeys_fingerprint = _run_once(scale, observe="journeys")
        journey_walls.append(wall)
        assert journeys_fingerprint == fingerprint, (
            "journey tracing changed the run: "
            f"{journeys_fingerprint} != {fingerprint}"
        )
    baseline = min(baseline_walls)
    observed = min(observed_walls)
    journeys = min(journey_walls)
    deliveries, messages_sent, trace_events = fingerprint
    return {
        "rounds": rounds,
        "deliveries": deliveries,
        "messages_sent": messages_sent,
        "trace_events": trace_events,
        "baseline_seconds": round(baseline, 4),
        "observed_seconds": round(observed, 4),
        "journeys_seconds": round(journeys, 4),
        "baseline_rounds": [round(w, 4) for w in baseline_walls],
        "observed_rounds": [round(w, 4) for w in observed_walls],
        "journeys_rounds": [round(w, 4) for w in journey_walls],
        "overhead_ratio": round(observed / baseline, 4) if baseline else None,
        "overhead_ratio_journeys": (
            round(journeys / baseline, 4) if baseline else None
        ),
    }


def check_gate(payload, tolerance=DEFAULT_TOLERANCE,
               journeys_tolerance=DEFAULT_JOURNEYS_TOLERANCE):
    """Assert both observed arms are within tolerance of the baseline."""
    ratio = payload["overhead_ratio"]
    ceiling = 1.0 + tolerance
    assert ratio is not None and ratio <= ceiling, (
        f"metrics+sampler overhead gate failed: observed run is {ratio:.3f}x "
        f"the unobserved baseline (ceiling {ceiling:.2f}x) -- "
        f"baseline min {payload['baseline_seconds']}s over "
        f"{payload['baseline_rounds']}, observed min "
        f"{payload['observed_seconds']}s over {payload['observed_rounds']}; "
        "an instrument on the hot path got more expensive than a cached "
        "attribute bump"
    )
    journeys_ratio = payload["overhead_ratio_journeys"]
    journeys_ceiling = 1.0 + journeys_tolerance
    assert journeys_ratio is not None and journeys_ratio <= journeys_ceiling, (
        f"journey-sampling overhead gate failed: the journeys arm is "
        f"{journeys_ratio:.3f}x the unobserved baseline "
        f"(ceiling {journeys_ceiling:.2f}x) -- journeys min "
        f"{payload['journeys_seconds']}s over {payload['journeys_rounds']}; "
        "a journey hook got more expensive than one dict miss per "
        "untracked message"
    )
    return ceiling


def record_results(scale_name, json_path, parallel=None, observe=None,
                   tolerance=DEFAULT_TOLERANCE, rounds=DEFAULT_ROUNDS,
                   journeys_tolerance=DEFAULT_JOURNEYS_TOLERANCE):
    """Measure, enforce the gates, write the JSON (CI hook)."""
    scale = SCALES[scale_name]
    start = time.time()
    payload = measure(scale, rounds=rounds)
    payload["tolerance"] = tolerance
    payload["journeys_tolerance"] = journeys_tolerance
    payload["gate_ceiling"] = check_gate(payload, tolerance, journeys_tolerance)
    payload["journeys_gate_ceiling"] = 1.0 + journeys_tolerance
    return write_bench_json(
        json_path,
        "obs_overhead",
        scale_name,
        payload,
        config=dict(scale),
        seed=scale["seed"],
        wall_seconds=time.time() - start,
    )


def main():
    parser = benchmark_arg_parser(__doc__, "BENCH_obs_overhead.json", SCALES)
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional overhead of the observed arm "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_ROUNDS,
        help="rounds per arm; the minimum wall clock is kept "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--journeys-tolerance", type=float, default=DEFAULT_JOURNEYS_TOLERANCE,
        help="allowed fractional overhead of the journey-sampling arm "
        "(default: %(default)s)",
    )
    args = parser.parse_args()
    payload = record_results(
        args.scale, args.json, tolerance=args.tolerance, rounds=args.rounds,
        journeys_tolerance=args.journeys_tolerance,
    )
    print(
        f"{payload['benchmark']} [{payload['scale']}]: baseline "
        f"{payload['baseline_seconds']}s vs metrics+sampler "
        f"{payload['observed_seconds']}s -> {payload['overhead_ratio']}x "
        f"(gate {payload['gate_ceiling']:.2f}x); journeys arm "
        f"{payload['journeys_seconds']}s -> "
        f"{payload['overhead_ratio_journeys']}x "
        f"(gate {payload['journeys_gate_ceiling']:.2f}x) over "
        f"{payload['messages_sent']} messages -> {args.json}"
    )


if __name__ == "__main__":
    main()
