"""Benchmark-suite pytest configuration.

Makes ``src`` importable without installation (same as the repository-root
conftest) and provides a session-wide results collector so every benchmark
prints the rows it reproduces in one consolidated report at the end of the
run (mirroring how the paper presents its scenarios qualitatively).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_HERE = os.path.dirname(__file__)
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

import pytest  # noqa: E402  (import after the path fix)

from common import RESULTS  # noqa: E402


def pytest_sessionfinish(session, exitstatus):
    """Print the consolidated experiment report after the benchmark run."""
    if RESULTS.tables:
        terminal = session.config.pluginmanager.get_plugin("terminalreporter")
        writer = terminal.write_line if terminal else print
        writer("")
        writer("=" * 78)
        writer("Newtop reproduction -- experiment results (paper-vs-measured shapes)")
        writer("=" * 78)
        for title, rows in RESULTS.tables:
            writer("")
            writer(title)
            writer("-" * len(title))
            for row in rows:
                writer("  " + row)
