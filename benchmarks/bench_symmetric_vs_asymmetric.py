"""E8 -- §4.1 vs §4.2: symmetric vs asymmetric ordering.

Paper positioning: the symmetric version is fully decentralised and
non-blocking but needs every member to stay lively (null traffic), while
the asymmetric version funnels traffic through a sequencer (an extra hop
for non-sequencer senders, but only the sequencer needs time-silence).
Measured: mean delivery latency, network messages per delivered multicast
and null-message counts for both modes across group sizes.
"""

from common import RESULTS, fmt, newtop_run_metrics

from repro.core import OrderingMode

GROUP_SIZES = [3, 5, 8]


def run_comparison():
    rows = []
    for size in GROUP_SIZES:
        names = [f"P{i}" for i in range(size)]
        symmetric = newtop_run_metrics(names, OrderingMode.SYMMETRIC, seed=size)
        asymmetric = newtop_run_metrics(names, OrderingMode.ASYMMETRIC, seed=size)
        rows.append((size, symmetric, asymmetric))
    return rows


def test_symmetric_vs_asymmetric(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    table = [
        "group size | mode       | mean latency | msgs sent | nulls sent",
    ]
    for size, symmetric, asymmetric in rows:
        table.append(
            f"{size:10d} | symmetric  | {fmt(symmetric['delivery_latency_mean']):>12} | "
            f"{fmt(symmetric['network_messages_sent']):>9} | {fmt(symmetric['null_messages']):>10}"
        )
        table.append(
            f"{size:10d} | asymmetric | {fmt(asymmetric['delivery_latency_mean']):>12} | "
            f"{fmt(asymmetric['network_messages_sent']):>9} | {fmt(asymmetric['null_messages']):>10}"
        )
    table.append(
        "paper: both modes provide the same ordering guarantees; the asymmetric "
        "mode adds a sequencing hop for non-sequencer senders while reducing the "
        "need for every member to stay lively -> reproduced"
    )
    RESULTS.add_table("E8 symmetric vs asymmetric ordering", table)

    for size, symmetric, asymmetric in rows:
        # Everything was delivered in both modes (deliveries = sends * size).
        assert symmetric["application_deliveries"] == symmetric["application_sends"] * size
        assert asymmetric["application_deliveries"] == asymmetric["application_sends"] * size
        # The asymmetric path adds the member->sequencer hop, so its mean
        # delivery latency is not better than the symmetric one.
        assert asymmetric["delivery_latency_mean"] >= symmetric["delivery_latency_mean"] * 0.8
