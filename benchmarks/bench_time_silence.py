"""E10 -- §4.1: the time-silence mechanism's cost/latency trade-off.

Paper claim: null messages are what keep delivery live when members are
quiet, at the cost of extra traffic; ω controls the trade-off.  Measured:
null-message ratio and mean delivery latency as ω is swept, for a workload
where only one member generates application traffic.
"""

from common import RESULTS, assert_session_correct, fmt, run_session

from repro.analysis.metrics import build_report

OMEGAS = [1.0, 2.0, 4.0, 8.0]


def run_sweep():
    rows = []
    for omega in OMEGAS:
        # The null-message ratio and latency summary are post-hoc report
        # quantities, so this sweep keeps the offline (materialized-trace)
        # analysis mode.
        session = run_session(
            ["P1", "P2", "P3", "P4"],
            groups=[("g", None)],
            seed=17,
            mode_overrides=dict(omega=omega, suspicion_timeout=omega * 8),
        )
        start = session.sim.now
        for index in range(6):
            session.multicast("P1", "g", index)
            session.run(3.0)
        session.run(60)
        report = build_report(
            session.trace(), session.network.stats, duration=session.sim.now - start, group="g"
        )
        assert_session_correct(session)
        rows.append((omega, report.null_ratio, report.delivery_latency.mean,
                     report.application_deliveries))
    return rows


def test_time_silence_tradeoff(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = ["omega | null msgs per app send | mean delivery latency | deliveries"]
    for omega, ratio, latency, deliveries in rows:
        table.append(
            f"{fmt(omega):>5} | {fmt(ratio):>22} | {fmt(latency):>21} | {deliveries:10d}"
        )
    table.append(
        "paper: the mechanism 'can increase the message overhead' but is essential "
        "for liveness -> smaller omega = more null traffic and lower delivery "
        "latency; larger omega = the opposite"
    )
    RESULTS.add_table("E10 time-silence overhead vs omega", table)

    ratios = [row[1] for row in rows]
    latencies = [row[2] for row in rows]
    assert ratios[0] > ratios[-1]          # more nulls with a small omega
    assert latencies[0] < latencies[-1]    # and lower delivery latency
    assert all(row[3] == 24 for row in rows)  # 6 sends x 4 members delivered
