"""E10 -- §4.1: the time-silence mechanism's cost/latency trade-off.

Paper claim: null messages are what keep delivery live when members are
quiet, at the cost of extra traffic; ω controls the trade-off.  Measured:
null-message ratio and mean delivery latency as ω is swept, for a workload
where only one member generates application traffic.
"""

from common import RESULTS, fmt

from repro.analysis.metrics import build_report
from repro.core import NewtopCluster, NewtopConfig

OMEGAS = [1.0, 2.0, 4.0, 8.0]


def run_sweep():
    rows = []
    for omega in OMEGAS:
        config = NewtopConfig(omega=omega, suspicion_timeout=omega * 8)
        cluster = NewtopCluster(["P1", "P2", "P3", "P4"], config=config, seed=17)
        cluster.create_group("g")
        start = cluster.sim.now
        for index in range(6):
            cluster["P1"].multicast("g", index)
            cluster.run(3.0)
        cluster.run(60)
        report = build_report(
            cluster.trace(), cluster.network.stats, duration=cluster.sim.now - start, group="g"
        )
        rows.append((omega, report.null_ratio, report.delivery_latency.mean,
                     report.application_deliveries))
    return rows


def test_time_silence_tradeoff(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = ["omega | null msgs per app send | mean delivery latency | deliveries"]
    for omega, ratio, latency, deliveries in rows:
        table.append(
            f"{fmt(omega):>5} | {fmt(ratio):>22} | {fmt(latency):>21} | {deliveries:10d}"
        )
    table.append(
        "paper: the mechanism 'can increase the message overhead' but is essential "
        "for liveness -> smaller omega = more null traffic and lower delivery "
        "latency; larger omega = the opposite"
    )
    RESULTS.add_table("E10 time-silence overhead vs omega", table)

    ratios = [row[1] for row in rows]
    latencies = [row[2] for row in rows]
    assert ratios[0] > ratios[-1]          # more nulls with a small omega
    assert latencies[0] < latencies[-1]    # and lower delivery latency
    assert all(row[3] == 24 for row in rows)  # 6 sends x 4 members delivered
