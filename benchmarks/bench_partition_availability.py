"""E16 -- §6: availability under partitions, Newtop vs primary-partition
membership.

Paper claim: primary-partition protocols keep a group operational only when
one side holds a majority of the previous view, which "may not always be
possible to meet"; Newtop lets every connected subgroup keep operating and
leaves their fate to the application.  Measured: the fraction of processes
still able to deliver new multicasts after several partition shapes, under
both policies (Newtop measured on the running protocol, the primary
partition via the policy model applied to the same scenarios).
"""

from common import RESULTS, fmt, run_session, run_until_delivered

from repro.baselines import PrimaryPartitionMembership

MEMBERS = ["P1", "P2", "P3", "P4", "P5"]
SCENARIOS = {
    "2 | 3 split": [["P1", "P2"], ["P3", "P4", "P5"]],
    "1 | 4 split": [["P1"], ["P2", "P3", "P4", "P5"]],
    "2 | 2 | 1 split": [["P1", "P2"], ["P3", "P4"], ["P5"]],
}


def newtop_available_fraction(components, seed: int) -> float:
    session = run_session(MEMBERS, groups=[("g", MEMBERS)], seed=seed, analysis="online")
    session.run(5)
    session.partition(components)
    session.run(200)
    available = 0
    for component in components:
        # A side is operational if a fresh multicast from one of its members
        # is delivered by every member of that side.
        sender = component[0]
        message_id = session[sender].multicast("g", f"probe-{sender}")
        if run_until_delivered(session, message_id, processes=component, timeout=120):
            available += len(component)
    return available / len(MEMBERS)


def run_sweep():
    rows = []
    for index, (name, components) in enumerate(SCENARIOS.items()):
        policy = PrimaryPartitionMembership(MEMBERS)
        primary = policy.availability_fraction(components)
        newtop = newtop_available_fraction(components, seed=80 + index)
        rows.append((name, primary, newtop))
    return rows


def test_partition_availability(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = ["partition shape   | primary-partition availability | Newtop availability"]
    for name, primary, newtop in rows:
        table.append(f"{name:17s} | {primary:30.0%} | {newtop:19.0%}")
    table.append(
        "paper: Newtop keeps every connected subgroup operational (application "
        "decides their fate); primary-partition protocols lose the minority and, "
        "with no majority side, everything -> reproduced"
    )
    RESULTS.add_table("E16 availability under partitions", table)

    for name, primary, newtop in rows:
        assert newtop == 1.0
        assert newtop >= primary
    assert any(primary == 0.0 for _, primary, _ in rows)  # the no-majority case
