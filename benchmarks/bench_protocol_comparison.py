"""E20 -- churn-under-load comparison: Newtop vs every §6 baseline.

The paper's central claim is *comparative*: Newtop orders multicasts with
constant per-message overhead and keeps operating through crashes and
membership churn, where sequencer-, ISIS-, Lamport- and Psync-style
protocols either pay more per message or stall.  With the unified
``repro.api`` session layer, one declarative churn scenario (the E18/E19
generator) now runs unchanged on all six stacks -- Newtop symmetric,
Newtop asymmetric, fixed sequencer, ISIS, Lamport all-ack and Psync --
under identical network conditions, with streaming verification selecting
each stack's own claimed guarantees (total order for the sequencer
protocols, causal order for Psync, everything for Newtop).

Events a baseline has no capability for (voluntary ``leave``) are skipped
with a recorded warning; crashes apply to every stack.  That asymmetry is
the measurement: after a crash the Lamport all-ack group can never gather
a full acknowledgement set again and the affected baselines' delivery
counts flatline, while Newtop's membership service excludes the failed
process and keeps delivering -- quantified below as per-stack delivered
counts, latency statistics and message overhead at 200 processes.

Run as a script to record the per-stack JSON for CI (``--parallel N``
runs the six per-stack sessions on a :mod:`repro.parallel` pool -- they
are independent simulations, so the rows are identical either way)::

    python benchmarks/bench_protocol_comparison.py --scale full \
        --json BENCH_protocol_comparison.json --parallel 3
"""

import time

from common import RESULTS, benchmark_arg_parser, fmt, write_bench_json

from repro.api import COMPARISON_STACKS
from repro.parallel import WorkUnit, run_units
from repro.scenarios import churn_scenario, run_scenario

#: The headline configuration: >=200 processes across 20 overlapping groups.
FULL_SCALE = dict(
    n_processes=200,
    n_groups=20,
    group_size=12,
    crashes=3,
    leaves=3,
    messages_per_sender=4,  # traffic continues past the crash window
    seed=7,
)

#: Tiny configuration for the tier-1 smoke test (same code path, ~2s).
SMOKE_SCALE = dict(
    n_processes=10,
    n_groups=3,
    group_size=5,
    crashes=1,
    leaves=1,
    messages_per_sender=2,
    seed=5,
)

SCALES = {"smoke": SMOKE_SCALE, "full": FULL_SCALE}


def _stack_row(config, stack):
    """One stack's verified run on the shared scenario (a pool work unit)."""
    start = time.time()
    result = run_scenario(
        config, stack=stack, analysis="online", on_unsupported="skip"
    )
    wall = time.time() - start
    assert result.passed, (stack, result.checks.violations[:3])
    assert result.trace_events_stored == 0, "online mode materialized a trace"
    return {
        "passed": result.passed,
        "deliveries": result.deliveries,
        "messages_sent": result.messages_sent,
        "delivery_events": result.delivery_events,
        "latency": result.metrics["latency"],
        "msgs_per_delivery": (
            round(result.messages_sent / result.deliveries, 2)
            if result.deliveries
            else None
        ),
        "trace_events": result.trace_events,
        "skipped_events": len(result.skipped_events),
        "wall_seconds": round(wall, 3),
    }


def run_comparison(scale=None, stacks=COMPARISON_STACKS, parallel=None):
    """Run the same churn scenario on every stack; returns per-stack rows.

    Every run is verified online against the stack's declared checks; a
    verdict failure raises, so the table below only ever shows runs whose
    claimed guarantees actually held.  ``parallel=N`` shards the per-stack
    sessions across a worker pool; each session's randomness derives from
    the scenario seed, so the rows match the serial ones exactly.
    """
    overrides = dict(FULL_SCALE if scale is None else scale)
    config = churn_scenario(**overrides)
    if (parallel or 1) <= 1:
        return {stack: _stack_row(config, stack) for stack in stacks}
    units = [
        WorkUnit(unit_id=stack, fn=_stack_row, args=(config, stack))
        for stack in stacks
    ]
    outcomes = run_units(units, parallel=parallel)
    failed = [outcome for outcome in outcomes if not outcome.ok]
    assert not failed, [(outcome.unit_id, outcome.status, outcome.error)
                        for outcome in failed]
    return {stack: outcome.value for stack, outcome in zip(stacks, outcomes)}


def test_protocol_comparison(benchmark):
    comparison = benchmark.pedantic(
        run_comparison, kwargs=dict(scale=FULL_SCALE), rounds=1, iterations=1
    )
    table = [
        f"churn scenario at {FULL_SCALE['n_processes']} processes / "
        f"{FULL_SCALE['n_groups']} overlapping groups, crashes under load",
        "stack             | delivered | msgs sent | msgs/deliv | mean latency",
    ]
    for stack, row in comparison.items():
        mean = row["latency"]["mean"]
        table.append(
            f"{stack:17s} | {fmt(row['deliveries']):>9} | "
            f"{fmt(row['messages_sent']):>9} | {row['msgs_per_delivery'] or float('nan'):>10} | "
            f"{fmt(mean) if mean is not None else 'n/a':>12}"
        )
    newtop = comparison["newtop-symmetric"]
    baselines = [row for stack, row in comparison.items() if not stack.startswith("newtop")]
    table.append(
        "every stack verified ONLINE against its own claimed guarantees; "
        "baselines skip the membership events they cannot express"
    )
    table.append(
        "paper: Newtop keeps delivering through churn where static-membership "
        "baselines stall -> reproduced (compare delivered counts)"
    )
    RESULTS.add_table("E20 protocol comparison under churn (six stacks)", table)

    # Shape assertions: everyone passed its own checks; only the baselines
    # had to skip membership events; and the all-ack protocol -- which can
    # never complete an acknowledgement round once a member crashed --
    # visibly stalls where Newtop's membership service keeps delivering.
    assert all(row["passed"] for row in comparison.values())
    assert comparison["newtop-symmetric"]["skipped_events"] == 0
    assert all(row["skipped_events"] > 0 for row in baselines)
    assert newtop["deliveries"] > comparison["lamport_ack"]["deliveries"]


def record_results(scale_name, json_path, parallel=None):
    """Run the named scale on all six stacks and write the JSON (CI hook)."""
    start = time.time()
    comparison = run_comparison(scale=SCALES[scale_name], parallel=parallel)
    return write_bench_json(
        json_path,
        "protocol_comparison",
        scale_name,
        {"analysis": "online", "parallel": parallel or 1, "stacks": comparison},
        config=SCALES[scale_name],
        seed=SCALES[scale_name]["seed"],
        wall_seconds=time.time() - start,
    )


def main():
    parser = benchmark_arg_parser(
        __doc__, "BENCH_protocol_comparison.json", SCALES, default_scale="full"
    )
    args = parser.parse_args()
    payload = record_results(args.scale, args.json, parallel=args.parallel)
    for stack, row in payload["stacks"].items():
        print(
            f"{stack:17s} passed={row['passed']} deliveries={row['deliveries']} "
            f"msgs={row['messages_sent']} wall={row['wall_seconds']}s"
        )
    print(f"-> {args.json}")


if __name__ == "__main__":
    main()
