"""E26 -- sharded KV store: goodput, failover and live-rebalance cost.

The end-to-end application benchmark for :mod:`repro.apps.kv`: a ring of
N shards, each a Newtop group of R replicas running the replicated
state-machine pattern, under open-loop traffic from a large population of
logical clients drawing Zipf-skewed keys through cached (possibly stale)
hash rings.  Mid-window the run injects the two disruptive events the
subsystem exists to absorb:

* **crash failover** (~T/4) -- the *sequencer* of one shard crash-stops;
  the membership service excludes it and, in asymmetric mode, sequencer
  duty migrates to the next-smallest member.  No ring change, no
  operator: the protocol *is* the failover mechanism.
* **live split** (~T/2) -- the shard owning the hottest key is split via
  dynamic group formation + fence + keyed state transfer + ring publish
  (:class:`repro.apps.kv.Rebalancer`), while every other shard keeps
  serving.

Everything is verified online -- the protocol stack's own checks *plus*
the :class:`repro.apps.kv.KVOracle` (per-key linearizability within each
shard, read-your-writes / monotonic reads across the ring, migration
integrity) ride the live trace with **zero stored events**.  The headline
numbers are per-shard goodput, client-observed tail latency, and the
*unavailability windows* -- the shared
:func:`common.unavailability_windows` extractor over per-shard served/
offered time bins -- which must stay empty for untouched shards and
bounded for the split source.

Run as a script to record the JSON artifact for CI::

    python benchmarks/bench_kv_shards.py --scale smoke \
        --json BENCH_kv_shards.json --observe journeys
"""

import time

from common import (
    RESULTS,
    benchmark_arg_parser,
    fmt,
    unavailability_windows,
    write_bench_json,
)

from repro.api import Session
from repro.apps.kv import KVOracle, KVWorkload, Rebalancer, ShardedKV
from repro.core.config import OrderingMode

SMOKE_SCALE = dict(
    shards=3,
    replicas=3,
    spares=2,
    clients=200,
    keys=128,
    rate=40.0,
    duration=60.0,
    drain=40.0,
    read_fraction=0.7,
    zipf_exponent=1.1,
    bin_width=5.0,
    # Outage budget for the *touched* shards (split source waits out the
    # fence-to-publish freeze; the crashed shard waits out suspicion).
    window_bound=30.0,
    seed=11,
)

FULL_SCALE = dict(
    shards=6,
    replicas=3,
    spares=2,
    clients=2000,
    keys=1024,
    rate=150.0,
    duration=120.0,
    drain=60.0,
    read_fraction=0.7,
    zipf_exponent=1.1,
    bin_width=5.0,
    window_bound=30.0,
    seed=11,
)

SCALES = {"smoke": SMOKE_SCALE, "full": FULL_SCALE}


def _layout(scale):
    """Shard id -> replica process ids (ids sort so ``r0`` is sequencer)."""
    return {
        f"s{index}": [f"s{index}r{replica}" for replica in range(scale["replicas"])]
        for index in range(scale["shards"])
    }


def run_kv_bench(scale=None, observe=None):
    """One full E26 run; returns the result dict the assertions consume."""
    scale = SMOKE_SCALE if scale is None else scale
    layout = _layout(scale)
    spares = [f"x{index}" for index in range(scale["spares"])]
    oracle = KVOracle()
    session = Session(
        "newtop",
        seed=scale["seed"],
        analysis="online",
        sinks=[oracle],
        observe=observe,
    )
    session.spawn([pid for members in layout.values() for pid in members])
    session.spawn(spares)
    store = ShardedKV(session, mode=OrderingMode.ASYMMETRIC)
    store.bootstrap(layout)
    workload = KVWorkload(
        store,
        clients=scale["clients"],
        keys=scale["keys"],
        rate=scale["rate"],
        duration=scale["duration"],
        drain=scale["drain"],
        read_fraction=scale["read_fraction"],
        zipf_exponent=scale["zipf_exponent"],
        bin_width=scale["bin_width"],
        seed=scale["seed"],
    )
    rebalancer = Rebalancer(store)

    # The hottest key is k0 (Zipf rank 0); its owner is the split source.
    hot_shard = store.ring.lookup("k0")
    # Crash the sequencer (smallest member id) of a *different* shard, so
    # the two disruptions land on two shards and the rest stay untouched.
    crash_shard = next(
        shard for shard in sorted(layout) if shard != hot_shard
    )
    victim = min(layout[crash_shard])
    events = {}

    def do_crash():
        events["crash_at"] = session.sim.now
        session.crash(victim)

    def do_split():
        coordinator = store.alive_members(hot_shard)[0]
        events["split"] = rebalancer.split_shard(
            hot_shard, f"s{scale['shards']}", [coordinator, *spares]
        )

    session.run(1.0)
    workload.start()
    started = session.sim.now
    session.sim.schedule(scale["duration"] * 0.25, do_crash, label="e26_crash")
    session.sim.schedule(scale["duration"] * 0.50, do_split, label="e26_split")
    session.run(scale["duration"] + scale["drain"])
    split = events["split"]
    session.run_until(lambda: split.complete or split.failed is not None, timeout=120.0)
    session.run(5.0)  # let the last acknowledged applies settle everywhere
    result = session.result()

    new_shard = split.target
    shard_windows = {
        shard: unavailability_windows(workload.shard_bins(shard))
        for shard in sorted(store.shards)
        if not store.shards[shard].retired
    }
    per_shard_goodput = {
        shard: round(sum(bins.values()) / scale["duration"], 3)
        for shard, bins in sorted(workload.completed_bins.items())
    }
    return {
        "scale": dict(scale),
        "layout": {shard: list(members) for shard, members in layout.items()},
        "hot_shard": hot_shard,
        "crash_shard": crash_shard,
        "victim": victim,
        "crash_at": round(events["crash_at"] - started, 3),
        "new_shard": new_shard,
        "split": split.describe(),
        "store": store.describe(),
        "store_counters": dict(store.counters),
        "pending_writes": store.pending_writes(),
        "converged": {
            shard: store.converged(shard) for shard in sorted(store.shards)
            if not store.shards[shard].retired
        },
        "workload": workload.report(),
        "per_shard_goodput": per_shard_goodput,
        "unavailability": shard_windows,
        "oracle": oracle.summary(),
        "session": {
            "passed": result.passed,
            "trace_events": result.trace_events,
            "trace_events_stored": result.trace_events_stored,
            "messages_sent": result.messages_sent,
            "delivery_events": result.delivery_events,
            "sim_time": round(result.sim_time, 3),
        },
        "obs": result.obs,
    }


def _assert_run(run, scale):
    """The E26 acceptance shape, asserted identically by test and CI."""
    # Verified online, twice over: the stack's own checks and the KV
    # oracle both rode the live trace, and nothing was materialized.
    assert run["session"]["passed"], run["session"]
    assert run["oracle"]["passed"], run["oracle"]
    assert run["session"]["trace_events_stored"] == 0
    # The rebalance ran to completion and actually moved data.
    assert run["split"]["complete"], run["split"]
    assert run["split"]["moved_keys"] > 0, run["split"]
    # Alive replicas of every live shard converged to identical state.
    assert all(run["converged"].values()), run["converged"]
    # Every shard served real traffic, including the freshly split one.
    for shard, goodput in run["per_shard_goodput"].items():
        assert goodput > 0, (shard, run["per_shard_goodput"])
    # Availability: shards neither split nor crashed never went dark;
    # the touched shards' outage windows are bounded by the budget.
    touched = {run["hot_shard"], run["crash_shard"], run["new_shard"]}
    for shard, windows in run["unavailability"].items():
        if shard not in touched:
            assert not windows, (shard, windows)
        for window in windows:
            assert window["duration"] <= scale["window_bound"], (shard, window)
    # Client accounting closes: only writes stranded by the crash (their
    # coordinator died holding the acknowledgement) may stay in flight.
    counters = run["workload"]["counters"]
    assert counters["completed_reads"] > 0 and counters["completed_writes"] > 0
    assert run["workload"]["in_flight"] <= run["pending_writes"] + 1
    # Tail latency was actually measured on both paths.
    assert run["workload"]["read_latency"]["count"] > 0
    assert run["workload"]["write_latency"]["count"] > 0


def test_kv_shards(benchmark):
    run = benchmark.pedantic(
        run_kv_bench, kwargs=dict(scale=SMOKE_SCALE), rounds=1, iterations=1
    )
    _assert_run(run, SMOKE_SCALE)
    split = run["split"]
    windows = run["unavailability"]
    quiet = [shard for shard, found in sorted(windows.items()) if not found]
    table = [
        f"{SMOKE_SCALE['shards']} shards x {SMOKE_SCALE['replicas']} replicas, "
        f"{SMOKE_SCALE['clients']} logical clients, zipf({SMOKE_SCALE['zipf_exponent']}) "
        f"keys, asymmetric ordering",
        f"crash: {run['victim']} (sequencer of {run['crash_shard']}) at "
        f"t+{run['crash_at']:.0f}s -> membership exclusion + sequencer migration",
        f"split: {run['hot_shard']} -> {run['new_shard']} moved "
        f"{split['moved_keys']} keys in {split['duration']:.1f}s "
        f"(form {split['formed_at'] - split['started_at']:.1f}s, ring v2 published)",
        "shard | goodput op/s | outage windows",
    ]
    for shard, goodput in sorted(run["per_shard_goodput"].items()):
        found = windows.get(shard, [])
        text = ", ".join(f"{w['duration']:.0f}s@{w['start']:.0f}" for w in found) or "none"
        table.append(f"{shard:5s} | {goodput:13.2f} | {text}")
    table.append(
        f"latency: reads p50 {fmt(run['workload']['read_latency']['p50'])} / "
        f"p99 {fmt(run['workload']['read_latency']['p99'])}, writes p50 "
        f"{fmt(run['workload']['write_latency']['p50'])} / p99 "
        f"{fmt(run['workload']['write_latency']['p99'])}"
    )
    table.append(
        f"untouched shards with zero outage windows: {quiet}; oracle checked "
        f"{run['oracle']['applies_checked']} applies + "
        f"{run['oracle']['reads_checked']} reads online, 0 stored"
    )
    table.append(
        "paper: group formation + voluntary departure + membership service "
        "compose into shard rebalancing and failover with no control plane "
        "-> reproduced as a live sharded KV under open-loop load"
    )
    RESULTS.add_table("E26 sharded KV: failover + live rebalance under load", table)


def record_results(scale_name, json_path, parallel=None, observe=None):
    """Run the benchmark and write the shared-schema JSON (CI hook)."""
    scale = SCALES[scale_name]
    start = time.time()
    run = run_kv_bench(scale, observe=observe)
    _assert_run(run, scale)
    payload = {key: value for key, value in run.items() if key != "scale"}
    if payload.get("obs") is None:
        payload.pop("obs", None)
    return write_bench_json(
        json_path,
        "kv_shards",
        scale_name,
        payload,
        config=dict(scale),
        seed=scale["seed"],
        wall_seconds=time.time() - start,
    )


def main():
    parser = benchmark_arg_parser(__doc__, "BENCH_kv_shards.json", SCALES)
    args = parser.parse_args()
    payload = record_results(
        args.scale, args.json, parallel=args.parallel, observe=args.observe
    )
    split = payload["split"]
    print(
        f"{payload['benchmark']} [{payload['scale']}] "
        f"split {split['moved_keys']} keys in {split['duration']:.1f}s, "
        f"oracle passed={payload['oracle']['passed']} "
        f"wall={payload['wall_seconds']}s -> {args.json}"
    )


if __name__ == "__main__":
    main()
