"""E6 -- Example 3: concurrent subgroup views stabilise into
non-intersecting ones.

Paper claim: after a partition hits in the middle of a membership
agreement, the two sides may transiently hold intersecting views, but the
views are guaranteed to stabilise into non-intersecting ones; with the §6
signature-view extension they never intersect at all.  Measured: final
views of both sides, their intersection, signature-view disjointness, and
the stabilisation latency.
"""

from common import RESULTS, fmt, make_cluster

from repro.analysis.checkers import check_view_sequences


def run_example3(use_signatures: bool) -> dict:
    overrides = {"use_signature_views": True} if use_signatures else None
    cluster = make_cluster(["Pi", "Pj", "Pk", "Pl", "Pm"], seed=9, mode_overrides=overrides)
    cluster.create_group("g")
    cluster.run(5)
    cluster.crash("Pm")
    partition_time = cluster.sim.now + 4.0
    cluster.sim.schedule_at(partition_time, cluster.partition, [["Pi", "Pj"], ["Pk", "Pl"]])
    cluster.run(250)
    side_one = cluster["Pi"].view("g").members
    side_two = cluster["Pk"].view("g").members
    stabilisation = max(
        event.time
        for process in ("Pi", "Pk")
        for event in cluster.trace().events(kind="view_install", process=process, group="g")
    )
    signature_disjoint = None
    if use_signatures:
        signature_disjoint = not cluster["Pi"].endpoint("g").signature_view.intersects(
            cluster["Pk"].endpoint("g").signature_view
        )
    assert check_view_sequences(cluster.trace(), "g", ["Pi", "Pj"]).passed
    assert check_view_sequences(cluster.trace(), "g", ["Pk", "Pl"]).passed
    return {
        "side_one": side_one,
        "side_two": side_two,
        "stabilisation_time": stabilisation - partition_time,
        "signature_disjoint": signature_disjoint,
    }


def test_example3_views_stabilise_non_intersecting(benchmark):
    plain = benchmark.pedantic(lambda: run_example3(False), rounds=1, iterations=1)
    signed = run_example3(True)
    RESULTS.add_table(
        "E6 (Example 3) concurrent subgroup views after partition + crash",
        [
            f"side {{Pi,Pj}} final view: {sorted(plain['side_one'])}",
            f"side {{Pk,Pl}} final view: {sorted(plain['side_two'])}",
            f"final views intersect: {bool(plain['side_one'] & plain['side_two'])}",
            f"stabilisation latency after the partition: "
            f"{fmt(plain['stabilisation_time'])} time units",
            f"signature views (section 6 extension) disjoint: {signed['signature_disjoint']}",
            "paper: intersecting concurrent views are short-lived and stabilise into "
            "non-intersecting ones -> reproduced",
        ],
    )
    assert plain["side_one"] == frozenset({"Pi", "Pj"})
    assert plain["side_two"] == frozenset({"Pk", "Pl"})
    assert not (plain["side_one"] & plain["side_two"])
    assert signed["signature_disjoint"]
