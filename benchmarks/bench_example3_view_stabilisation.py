"""E6 -- Example 3: concurrent subgroup views stabilise into
non-intersecting ones.

Paper claim: after a partition hits in the middle of a membership
agreement, the two sides may transiently hold intersecting views, but the
views are guaranteed to stabilise into non-intersecting ones; with the §6
signature-view extension they never intersect at all.  Measured: final
views of both sides, their intersection, signature-view disjointness, and
the stabilisation latency.
"""

from common import RESULTS, EventProbe, assert_session_correct, fmt, run_session

from repro.analysis.checkers import check_view_sequences
from repro.net.trace import VIEW_INSTALL


def run_example3(use_signatures: bool) -> dict:
    overrides = {"use_signature_views": True} if use_signatures else None
    probe = EventProbe(VIEW_INSTALL)
    # The global view-agreement checks assume a single surviving component;
    # this run *deliberately* ends partitioned, so those two checks are
    # replaced by the per-side check_view_sequences calls below.
    session = run_session(
        ["Pi", "Pj", "Pk", "Pl", "Pm"],
        groups=[("g", None)],
        seed=9,
        mode_overrides=overrides,
        analysis="online",
        sinks=[probe],
        checks=("total_order", "sender_in_view", "causal_prefix"),
    )
    session.run(5)
    session.crash("Pm")
    partition_time = session.sim.now + 4.0
    session.sim.schedule_at(partition_time, session.partition, [["Pi", "Pj"], ["Pk", "Pl"]])
    session.run(250)
    side_one = session["Pi"].view("g").members
    side_two = session["Pk"].view("g").members
    stabilisation = max(
        event.time
        for process in ("Pi", "Pk")
        for event in probe.trace().events(kind=VIEW_INSTALL, process=process, group="g")
    )
    signature_disjoint = None
    if use_signatures:
        signature_disjoint = not session["Pi"].endpoint("g").signature_view.intersects(
            session["Pk"].endpoint("g").signature_view
        )
    # Each partition side's view sequences agree (VC1), checked over the
    # probe's captured view installs; the rest streams through the suite.
    assert check_view_sequences(probe.trace(), "g", ["Pi", "Pj"]).passed
    assert check_view_sequences(probe.trace(), "g", ["Pk", "Pl"]).passed
    assert_session_correct(session)
    return {
        "side_one": side_one,
        "side_two": side_two,
        "stabilisation_time": stabilisation - partition_time,
        "signature_disjoint": signature_disjoint,
    }


def test_example3_views_stabilise_non_intersecting(benchmark):
    plain = benchmark.pedantic(lambda: run_example3(False), rounds=1, iterations=1)
    signed = run_example3(True)
    RESULTS.add_table(
        "E6 (Example 3) concurrent subgroup views after partition + crash",
        [
            f"side {{Pi,Pj}} final view: {sorted(plain['side_one'])}",
            f"side {{Pk,Pl}} final view: {sorted(plain['side_two'])}",
            f"final views intersect: {bool(plain['side_one'] & plain['side_two'])}",
            f"stabilisation latency after the partition: "
            f"{fmt(plain['stabilisation_time'])} time units",
            f"signature views (section 6 extension) disjoint: {signed['signature_disjoint']}",
            "paper: intersecting concurrent views are short-lived and stabilise into "
            "non-intersecting ones -> reproduced",
        ],
    )
    assert plain["side_one"] == frozenset({"Pi", "Pj"})
    assert plain["side_two"] == frozenset({"Pk", "Pl"})
    assert not (plain["side_one"] & plain["side_two"])
    assert signed["signature_disjoint"]
