"""Shared helpers for the benchmark harness.

Every benchmark file reproduces one experiment id (E1-E17) from DESIGN.md:
it builds the workload, runs it on the simulated substrate, verifies the
paper's correctness properties on the trace, derives the quantities the
paper argues about, appends a human-readable row set to the consolidated
report, and asserts the *shape* of the result (who wins, how quantities
scale) rather than absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis import check_all
from repro.analysis.metrics import build_report
from repro.core import NewtopCluster, NewtopConfig, OrderingMode

#: Configuration used by most benchmarks: fast time-silence and suspicion so
#: membership events resolve within short simulated runs.
FAST_CONFIG = dict(omega=1.5, suspicion_timeout=6.0, suspector_check_interval=0.5)


@dataclass
class ResultCollector:
    """Collects per-experiment result tables printed at session end."""

    tables: List[Tuple[str, List[str]]] = field(default_factory=list)

    def add_table(self, title: str, rows: Iterable[str]) -> None:
        """Register one experiment's rows for the consolidated report."""
        self.tables.append((title, list(rows)))


#: The session-wide collector used by every benchmark module.
RESULTS = ResultCollector()


def make_cluster(
    names: Sequence[str],
    seed: int = 1,
    mode_overrides: Optional[Dict[str, object]] = None,
) -> NewtopCluster:
    """A cluster with the benchmark-default configuration."""
    overrides = dict(FAST_CONFIG)
    if mode_overrides:
        overrides.update(mode_overrides)
    return NewtopCluster(list(names), config=NewtopConfig(**overrides), seed=seed)


def run_uniform_traffic(
    cluster: NewtopCluster,
    group: str,
    senders: Sequence[str],
    messages_per_sender: int,
    gap: float = 1.0,
    drain: float = 60.0,
) -> None:
    """Issue a fixed, interleaved workload and let deliveries drain."""
    for index in range(messages_per_sender):
        for sender in senders:
            cluster[sender].multicast(group, f"{sender}-{index}")
        cluster.run(gap)
    cluster.run(drain)


def assert_trace_correct(
    cluster: NewtopCluster,
    view_agreement_sets: Optional[Dict[str, Sequence[str]]] = None,
) -> None:
    """Every benchmark checks the paper's guarantees before reporting."""
    result = check_all(cluster.trace(), view_agreement_sets=view_agreement_sets)
    assert result.passed, f"protocol guarantees violated: {result.violations[:3]}"


def newtop_run_metrics(
    names: Sequence[str],
    mode: OrderingMode,
    messages_per_sender: int = 4,
    seed: int = 3,
    senders: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """One standard Newtop run; returns the flattened metrics report."""
    cluster = make_cluster(names, seed=seed)
    cluster.create_group("bench", names, mode=mode)
    active_senders = list(senders) if senders is not None else list(names)
    start = cluster.sim.now
    run_uniform_traffic(cluster, "bench", active_senders, messages_per_sender)
    duration = cluster.sim.now - start
    assert_trace_correct(cluster)
    report = build_report(cluster.trace(), cluster.network.stats, duration=duration, group="bench")
    flattened = report.as_dict()
    flattened["group_size"] = float(len(names))
    return flattened


def fmt(value: float) -> str:
    """Consistent numeric formatting for report rows."""
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"
