"""Shared helpers for the benchmark harness.

Every benchmark file reproduces one experiment id (E1-E17) from DESIGN.md:
it builds the workload, runs it on the simulated substrate, verifies the
paper's correctness properties on the trace, derives the quantities the
paper argues about, appends a human-readable row set to the consolidated
report, and asserts the *shape* of the result (who wins, how quantities
scale) rather than absolute numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.metrics import build_report
from repro.api import ProtocolStack, Session, SessionResult
from repro.core import OrderingMode
from repro.experiments import SweepReport
from repro.net.trace import EventTrace, TraceEvent, TraceSink

#: Configuration used by most benchmarks: fast time-silence and suspicion so
#: membership events resolve within short simulated runs.
FAST_CONFIG = dict(omega=1.5, suspicion_timeout=6.0, suspector_check_interval=0.5)


@dataclass
class ResultCollector:
    """Collects per-experiment result tables printed at session end."""

    tables: List[Tuple[str, List[str]]] = field(default_factory=list)

    def add_table(self, title: str, rows: Iterable[str]) -> None:
        """Register one experiment's rows for the consolidated report."""
        self.tables.append((title, list(rows)))


#: The session-wide collector used by every benchmark module.
RESULTS = ResultCollector()


def run_session(
    names: Sequence[str],
    groups: Optional[Sequence] = None,
    stack: Union[str, ProtocolStack] = "newtop",
    seed: int = 1,
    mode_overrides: Optional[Dict[str, object]] = None,
    analysis: str = "offline",
    checks: Optional[Sequence[str]] = None,
    sinks: Optional[Sequence[TraceSink]] = None,
    view_agreement_sets: Optional[Dict[str, Sequence[str]]] = None,
    observe: object = None,
) -> Session:
    """One :class:`repro.api.Session` with the benchmark-default protocol
    configuration, processes spawned and groups installed.

    ``groups`` entries are ``(group_id, members)`` or
    ``(group_id, members, mode)``; ``members=None`` means every process.
    The default is one group ``"bench"`` over everyone.  This replaces the
    per-benchmark cluster boilerplate: the session carries the trace
    wiring, and :func:`assert_session_correct` reads the verdict from
    whichever analysis mode the benchmark selected.
    """
    overrides = dict(FAST_CONFIG)
    if mode_overrides:
        overrides.update(mode_overrides)
    session = Session(
        stack,
        config=overrides,
        seed=seed,
        sinks=sinks,
        checks=checks,
        analysis=analysis,
        view_agreement_sets=view_agreement_sets,
        observe=observe,
    )
    session.spawn(names)
    for entry in groups if groups is not None else [("bench", None)]:
        group_id, members = entry[0], entry[1]
        mode = entry[2] if len(entry) > 2 else None
        session.group(group_id, members, mode=mode)
    return session


def run_session_traffic(
    session: Session,
    group: str,
    senders: Sequence[str],
    messages_per_sender: int,
    gap: float = 1.0,
    drain: float = 60.0,
) -> None:
    """Issue a fixed, interleaved workload through the session and drain."""
    for index in range(messages_per_sender):
        for sender in senders:
            session.multicast(sender, group, f"{sender}-{index}")
        session.run(gap)
    session.run(drain)


def assert_session_correct(session: Session) -> SessionResult:
    """Every benchmark checks the stack's guarantees before reporting."""
    result = session.result()
    assert result.passed, f"protocol guarantees violated: {result.checks.violations[:3]}"
    return result


def latency_block(result) -> Optional[Dict[str, object]]:
    """The delivery-latency summary (count/mean/p50/p95/p99/...) of a run.

    Reads the block straight off the rolling
    :class:`~repro.net.trace.MetricsSink` snapshot -- which now carries the
    percentiles -- rather than re-walking a reservoir in every benchmark.
    Works on :class:`SessionResult` and ``ScenarioResult`` alike; falls
    back to the exact reservoir for results without a metrics snapshot
    (offline runs), and returns ``None`` when neither exists.
    """
    metrics = getattr(result, "metrics", None)
    if metrics is not None and metrics.get("latency"):
        return metrics["latency"]
    reservoir = getattr(result, "latency_reservoir", None)
    if reservoir is not None:
        return reservoir.summary(percentiles=(50, 95, 99))
    return None


class EventProbe(TraceSink):
    """Retains only the trace events of the given kinds.

    Benchmarks that run ``analysis="online"`` (streamed verification, no
    stored trace) attach one of these via ``sinks=[probe]`` to keep just
    the handful of events their measurement needs -- a view installation
    time, a blocked-send count -- while the bulk of the trace stays
    unmaterialized.  ``probe.trace()`` wraps the captured events in an
    :class:`~repro.net.trace.EventTrace` so the normal query and metrics
    helpers work on them.
    """

    def __init__(self, *kinds: str) -> None:
        self.kinds = frozenset(kinds)
        self.events: List[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        if not self.kinds or event.kind in self.kinds:
            self.events.append(event)

    def trace(self) -> EventTrace:
        return EventTrace(list(self.events))


def run_until_delivered(
    session: Session,
    message_id: str,
    processes: Optional[Sequence[str]] = None,
    timeout: float = 200.0,
) -> bool:
    """Run until every listed (alive) process has delivered ``message_id``."""
    targets = [
        session[process_id]
        for process_id in (processes if processes is not None else session.processes)
    ]

    def all_delivered() -> bool:
        return all(
            process.crashed
            or any(record.msg_id == message_id for record in process.delivered)
            for process in targets
        )

    return session.run_until(all_delivered, timeout)


def newtop_run_metrics(
    names: Sequence[str],
    mode: OrderingMode,
    messages_per_sender: int = 4,
    seed: int = 3,
    senders: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """One standard Newtop run; returns the flattened metrics report."""
    session = run_session(names, groups=[("bench", None, mode)], seed=seed)
    active_senders = list(senders) if senders is not None else list(names)
    start = session.sim.now
    run_session_traffic(session, "bench", active_senders, messages_per_sender)
    duration = session.sim.now - start
    assert_session_correct(session)
    report = build_report(session.trace(), session.network.stats, duration=duration, group="bench")
    flattened = report.as_dict()
    flattened["group_size"] = float(len(names))
    return flattened


#: Version of the shared BENCH_*.json header schema.  Bumped to 2 when the
#: provenance stamps (``git_sha``, ``python_version``) and the optional
#: per-run ``obs`` blocks were added.
BENCH_SCHEMA_VERSION = 2


def _git_sha() -> str:
    """The repository HEAD sha, or ``"unknown"`` outside a git checkout.

    Anchored at this file's directory, not the caller's cwd, so the stamp
    is right even when a benchmark CLI is invoked from elsewhere.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def write_bench_json(
    json_path: str,
    benchmark: str,
    scale: str,
    payload: Mapping[str, object],
    *,
    config: Optional[Mapping[str, object]] = None,
    seed: Optional[int] = None,
    wall_seconds: Optional[float] = None,
) -> Dict[str, object]:
    """Write one benchmark's CI result file with the shared schema.

    Every emitter (E19 churn, E20 protocol comparison, E21 workload sweep)
    goes through here so the artifacts stay diffable across benchmarks:
    the header always carries ``benchmark``, ``scale``, ``config``,
    ``seed``, ``wall_seconds`` and the provenance stamps
    (``schema_version``, ``git_sha``, ``python_version``), and the
    benchmark-specific rows ride in ``payload``.  Returns the full
    document that was written.
    """
    document: Dict[str, object] = {
        "benchmark": benchmark,
        "scale": scale,
        "config": dict(config) if config is not None else {},
        "seed": seed,
        "wall_seconds": round(wall_seconds, 3) if wall_seconds is not None else None,
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_sha": _git_sha(),
        "python_version": platform.python_version(),
    }
    overlap = set(document) & set(payload)
    if overlap:
        raise ValueError(f"payload keys {sorted(overlap)} collide with the header")
    document.update(payload)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return document


def benchmark_arg_parser(
    description: str,
    default_json: str,
    scales: Mapping[str, object],
    default_scale: str = "smoke",
    default_parallel: int = 1,
) -> argparse.ArgumentParser:
    """The shared CLI of every script benchmark: ``--scale``, ``--json``
    and ``--parallel N``.

    ``--parallel`` shards the benchmark's independent work units (sweep
    cells, scenario shards, per-stack runs) across a
    :mod:`repro.parallel` worker pool of N processes; ``1`` runs inline.
    Results are seed-stable either way -- the pool never changes numbers,
    only wall clock -- and a benchmark whose work is a single unit simply
    caps the pool at one worker.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--scale", choices=sorted(scales), default=default_scale)
    parser.add_argument("--json", default=default_json)
    parser.add_argument(
        "--parallel", type=int, default=default_parallel, metavar="N",
        help="worker processes for independent units (default: %(default)s)",
    )
    parser.add_argument(
        "--observe", nargs="?", const="metrics",
        choices=("metrics", "journeys", "full"),
        default=None, metavar="LEVEL",
        help="attach repro.obs to the runs and emit an 'obs' block into the "
        "JSON: bare flag or 'metrics' enables the registry + simulated-time "
        "sampler, 'journeys' adds sampled per-message journey tracing, "
        "'full' adds the hot-path profiler, span breakdowns and journeys "
        "(default: off)",
    )
    return parser


def merge_sweep_reports(*reports: SweepReport) -> SweepReport:
    """One :class:`~repro.experiments.SweepReport` over several sweeps.

    The merged-report path for sharded execution: split a grid into
    sub-specs (per fault pattern, per stack family, per worker budget),
    run each wherever is convenient -- serially, on a pool, on another
    machine -- and recombine the cells into a single report whose
    ``curves()``/``cell()``/``passed`` views and JSON form behave exactly
    as if one sweep had produced everything.  Identical sub-specs collapse
    into one header; differing ones are kept under ``"merged"``.
    """
    if not reports:
        raise ValueError("nothing to merge")
    specs = [report.spec for report in reports]
    spec = specs[0] if all(entry == specs[0] for entry in specs) else {"merged": specs}
    return SweepReport(
        spec=spec, cells=[cell for report in reports for cell in report.cells]
    )


def unavailability_windows(
    series: Sequence[Tuple[float, float, int, int]],
    *,
    min_offered: int = 1,
) -> List[Dict[str, float]]:
    """Merge time bins in which demand went unserved into outage windows.

    ``series`` is a list of ``(start, end, served, offered)`` bins in time
    order -- per-shard workload bins (E26), per-phase client counters
    (E21), or any other served-vs-offered accounting.  A bin is *starved*
    when at least ``min_offered`` operations were offered and none were
    served; consecutive starved bins merge into one window.  Returns
    ``[{"start", "end", "duration"}, ...]`` -- the benchmark-facing shape
    of "how long was this shard/group unavailable, and when".
    """
    windows: List[Dict[str, float]] = []
    current: Optional[List[float]] = None
    for start, end, served, offered in series:
        starved = offered >= min_offered and served == 0
        if starved:
            if current is not None and abs(current[1] - start) < 1e-9:
                current[1] = end
            else:
                if current is not None:
                    windows.append(
                        {"start": current[0], "end": current[1],
                         "duration": current[1] - current[0]}
                    )
                current = [start, end]
        elif current is not None:
            windows.append(
                {"start": current[0], "end": current[1],
                 "duration": current[1] - current[0]}
            )
            current = None
    if current is not None:
        windows.append(
            {"start": current[0], "end": current[1],
             "duration": current[1] - current[0]}
        )
    return windows


def fmt(value: float) -> str:
    """Consistent numeric formatting for report rows."""
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"
