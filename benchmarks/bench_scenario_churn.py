"""E18/E19 -- ROADMAP scale-out: large-scale multi-group churn scenarios.

The paper argues (§2, §7) that Newtop's logical-clock deliverability bound
makes total order cheap enough to run at scale -- no agreement round per
message, constant protocol overhead per multicast.  This benchmark pushes
the claim well past the paper's hand-sized examples: a declarative churn
scenario (see :mod:`repro.scenarios`) drives overlapping groups through
crashes, voluntary departures and dynamic group formations while
application traffic keeps flowing, then verifies every guarantee (total
order, view agreement among the stable core, virtual synchrony).

* **E18** (100 processes / 10 groups) verifies post-hoc on the full trace
  and measures the throughput levers of the simulation runtime --
  same-instant delivery batching and event-heap health -- so runtime
  regressions show up as shape changes, not just slower wall clock.
* **E19** (1000 processes / 100 groups) is only feasible with the
  streaming verification subsystem: the run uses ``analysis="online"`` --
  the trace recorder streams into the incremental checkers and a rolling
  metrics sink with ``keep_events=False``, so *no* event trace is ever
  materialized, while every guarantee is still checked.

The module doubles as the scenario smoke entry point: the test suite
imports :func:`run_churn` with :data:`SMOKE_SCALE` (tiny N) so the whole
scenario path -- both analysis modes -- is exercised by tier-1 without the
full-scale cost.  Run as a script to record results to JSON for CI::

    python benchmarks/bench_scenario_churn.py --scale smoke \
        --json BENCH_scenario_churn.json
"""

import time

from common import RESULTS, benchmark_arg_parser, fmt, write_bench_json

from repro.scenarios import churn_scenario, run_scenario, run_scenarios

#: The E18 headline configuration: >=100 processes across >=10 groups.
FULL_SCALE = dict(
    n_processes=100,
    n_groups=10,
    group_size=12,
    crashes=3,
    leaves=3,
    messages_per_sender=2,
    seed=7,
)

#: The E19 headline configuration: 1000 processes, 100 overlapping groups,
#: crashes + departures + dynamic formations -- verifiable online only.
THOUSAND_SCALE = dict(
    n_processes=1000,
    n_groups=100,
    group_size=12,
    crashes=5,
    leaves=5,
    formations=3,
    messages_per_sender=1,
    seed=7,
)

#: Tiny configuration for the tier-1 smoke test (same code path, ~1s).
SMOKE_SCALE = dict(
    n_processes=10,
    n_groups=3,
    group_size=5,
    crashes=1,
    leaves=1,
    messages_per_sender=2,
    seed=5,
)

SCALES = {"smoke": SMOKE_SCALE, "full": FULL_SCALE, "thousand": THOUSAND_SCALE}


def run_churn(
    scale=None, batch_window=0.25, analysis="offline", stack="newtop", observe=None
):
    """Run one churn scenario and assert its guarantees held.

    Returns the :class:`~repro.scenarios.engine.ScenarioResult` so callers
    (benchmark tables below, smoke test in tier-1, the CI JSON recorder)
    can inspect the runtime metrics.  ``stack`` selects the protocol; see
    ``bench_protocol_comparison.py`` (E20) for the six-stack comparison.
    ``observe`` ("metrics"/"full") attaches :mod:`repro.obs` and fills
    ``result.obs`` without changing the run's numbers.
    """
    overrides = dict(FULL_SCALE if scale is None else scale)
    config = churn_scenario(batch_window=batch_window, **overrides)
    result = run_scenario(
        config,
        analysis=analysis,
        stack=stack,
        on_unsupported="raise" if stack == "newtop" else "skip",
        observe=observe,
    )
    assert result.passed, f"scenario guarantees violated: {result.checks.violations[:3]}"
    if analysis == "online":
        assert result.trace_events_stored == 0, "online mode materialized a trace"
    return result


def run_comparison():
    """Full-scale churn, batched vs unbatched delivery scheduling."""
    batched = run_churn(batch_window=0.25)
    unbatched = run_churn(batch_window=0.0)
    return batched, unbatched


def test_scenario_churn(benchmark):
    batched, unbatched = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    def ratio(result):
        return result.messages_sent / max(1, result.delivery_events)

    table = [
        f"scenario: {batched.name} (crashes + voluntary leaves under load)",
        "delivery scheduling      | msgs sent | sched events | msgs/event | peak heap",
        f"batched (window=0.25)    | {fmt(batched.messages_sent):>9} | "
        f"{fmt(batched.delivery_events):>12} | {fmt(ratio(batched)):>10} | "
        f"{batched.peak_pending_events:>9}",
        f"per-instant only (w=0)   | {fmt(unbatched.messages_sent):>9} | "
        f"{fmt(unbatched.delivery_events):>12} | {fmt(ratio(unbatched)):>10} | "
        f"{unbatched.peak_pending_events:>9}",
        f"app deliveries {batched.deliveries}, simulated events "
        f"{batched.events_processed}, heap compactions {batched.compactions}",
        "all order/view/virtual-synchrony checkers passed at 100 processes / "
        "10 overlapping groups -> the logical-clock bound scales as claimed",
    ]
    RESULTS.add_table("E18 large-scale multi-group churn (scenario engine)", table)

    # Shape assertions: batching must actually coalesce work, and the event
    # heap must stay far below one-entry-per-message.
    assert batched.deliveries > 0
    assert batched.delivery_events < unbatched.delivery_events
    assert ratio(batched) > 1.5
    assert batched.peak_pending_events < batched.messages_sent


def test_scenario_churn_1000_online(benchmark):
    """E19: 1000-process churn verified entirely by the streaming checkers."""
    result = benchmark.pedantic(
        run_churn, kwargs=dict(scale=THOUSAND_SCALE, analysis="online"),
        rounds=1, iterations=1,
    )
    table = [
        f"scenario: {result.name} (crashes + leaves + dynamic formations)",
        f"verification: online ({result.trace_events} trace events streamed, "
        f"{result.trace_events_stored} stored -- no materialized trace)",
        f"messages sent {fmt(result.messages_sent)}, app deliveries "
        f"{result.deliveries}, simulated events {fmt(result.events_processed)}",
        f"heap: peak pending {result.peak_pending_events} "
        f"(live {result.peak_live_pending_events}), compactions {result.compactions}",
        "all order/view/virtual-synchrony checkers passed ONLINE at 1000 "
        "processes / 100 overlapping groups -> verification no longer the "
        "scaling ceiling",
    ]
    RESULTS.add_table("E19 1000-process churn, streaming verification", table)

    assert result.analysis == "online"
    assert result.trace_events_stored == 0
    assert result.deliveries > 0
    assert result.metrics["by_kind"]["deliver"] == result.deliveries


def record_results(scale_name, json_path, parallel=None, observe=None):
    """Run the named scale online and write a JSON result file (CI hook).

    This benchmark is a *single* scenario (one simulation cannot shard),
    so ``--parallel`` routes it through :func:`repro.scenarios.run_scenarios`
    for the pool's crash isolation but caps at one worker; the sharded
    scale runs live in E22 (``bench_parallel_scale.py``).
    """
    start = time.time()
    if (parallel or 1) > 1:
        config = churn_scenario(batch_window=0.25, **SCALES[scale_name])
        result = run_scenarios(
            [config], parallel=parallel, analysis="online", observe=observe
        )[0]
        assert result.passed, result.checks.violations[:3]
    else:
        result = run_churn(scale=SCALES[scale_name], analysis="online", observe=observe)
    payload = {
        "passed": result.passed,
        "analysis": result.analysis,
        "sim_time": result.sim_time,
        "events_processed": result.events_processed,
        "messages_sent": result.messages_sent,
        "deliveries": result.deliveries,
        "delivery_events": result.delivery_events,
        "trace_events": result.trace_events,
        "trace_events_stored": result.trace_events_stored,
        "peak_pending_events": result.peak_pending_events,
        "compactions": result.compactions,
        "metrics": result.metrics,
    }
    if result.obs is not None:
        payload["obs"] = result.obs
    return write_bench_json(
        json_path,
        "scenario_churn",
        scale_name,
        payload,
        config=SCALES[scale_name],
        seed=SCALES[scale_name]["seed"],
        wall_seconds=time.time() - start,
    )


def main():
    parser = benchmark_arg_parser(__doc__, "BENCH_scenario_churn.json", SCALES)
    args = parser.parse_args()
    payload = record_results(
        args.scale, args.json, parallel=args.parallel, observe=args.observe
    )
    print(
        f"{payload['benchmark']} [{payload['scale']}] "
        f"passed={payload['passed']} wall={payload['wall_seconds']}s "
        f"deliveries={payload['deliveries']} "
        f"trace_events={payload['trace_events']} (stored "
        f"{payload['trace_events_stored']}) -> {args.json}"
    )


if __name__ == "__main__":
    main()
