"""E18 -- ROADMAP scale-out: large-scale multi-group churn scenarios.

The paper argues (§2, §7) that Newtop's logical-clock deliverability bound
makes total order cheap enough to run at scale -- no agreement round per
message, constant protocol overhead per multicast.  This benchmark pushes
the claim well past the paper's hand-sized examples: a declarative churn
scenario (see :mod:`repro.scenarios`) drives 100 processes across 10
overlapping groups through crashes and voluntary departures while
application traffic keeps flowing, then verifies every guarantee (total
order, view agreement among the stable core, virtual synchrony) on the
trace.

Measured alongside correctness: the throughput levers of the reworked
simulation runtime -- same-instant delivery batching (scheduled events per
delivered message) and event-heap health (peak pending events, lazy-
deletion compactions) -- so regressions in the runtime show up here as
shape changes, not just as slower wall clock.

The module doubles as the scenario smoke entry point: the test suite
imports :func:`run_churn` with :data:`SMOKE_SCALE` (tiny N) so the whole
scenario path is exercised by tier-1 without the full-scale cost.
"""

from common import RESULTS, fmt

from repro.scenarios import churn_scenario, run_scenario

#: The headline configuration: >=100 processes across >=10 overlapping groups.
FULL_SCALE = dict(
    n_processes=100,
    n_groups=10,
    group_size=12,
    crashes=3,
    leaves=3,
    messages_per_sender=2,
    seed=7,
)

#: Tiny configuration for the tier-1 smoke test (same code path, ~1s).
SMOKE_SCALE = dict(
    n_processes=10,
    n_groups=3,
    group_size=5,
    crashes=1,
    leaves=1,
    messages_per_sender=2,
    seed=5,
)


def run_churn(scale=None, batch_window=0.25):
    """Run one churn scenario and assert its guarantees held.

    Returns the :class:`~repro.scenarios.engine.ScenarioResult` so callers
    (benchmark table below, smoke test in tier-1) can inspect the runtime
    metrics.
    """
    overrides = dict(FULL_SCALE if scale is None else scale)
    config = churn_scenario(batch_window=batch_window, **overrides)
    result = run_scenario(config)
    assert result.passed, f"scenario guarantees violated: {result.checks.violations[:3]}"
    return result


def run_comparison():
    """Full-scale churn, batched vs unbatched delivery scheduling."""
    batched = run_churn(batch_window=0.25)
    unbatched = run_churn(batch_window=0.0)
    return batched, unbatched


def test_scenario_churn(benchmark):
    batched, unbatched = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    def ratio(result):
        return result.messages_sent / max(1, result.delivery_events)

    table = [
        f"scenario: {batched.name} (crashes + voluntary leaves under load)",
        "delivery scheduling      | msgs sent | sched events | msgs/event | peak heap",
        f"batched (window=0.25)    | {fmt(batched.messages_sent):>9} | "
        f"{fmt(batched.delivery_events):>12} | {fmt(ratio(batched)):>10} | "
        f"{batched.peak_pending_events:>9}",
        f"per-instant only (w=0)   | {fmt(unbatched.messages_sent):>9} | "
        f"{fmt(unbatched.delivery_events):>12} | {fmt(ratio(unbatched)):>10} | "
        f"{unbatched.peak_pending_events:>9}",
        f"app deliveries {batched.deliveries}, simulated events "
        f"{batched.events_processed}, heap compactions {batched.compactions}",
        "all order/view/virtual-synchrony checkers passed at 100 processes / "
        "10 overlapping groups -> the logical-clock bound scales as claimed",
    ]
    RESULTS.add_table("E18 large-scale multi-group churn (scenario engine)", table)

    # Shape assertions: batching must actually coalesce work, and the event
    # heap must stay far below one-entry-per-message.
    assert batched.deliveries > 0
    assert batched.delivery_events < unbatched.delivery_events
    assert ratio(batched) > 1.5
    assert batched.peak_pending_events < batched.messages_sent
