"""E4 -- Example 1: crash during multicast plus a dependent crash.

Paper claim: if Pr crashes while multicasting m so that only Ps receives
it, and Ps (having delivered m and multicast m' -> m) crashes before it can
refute the suspicion of Pr, then the survivors detect Pr and Ps *together*
and never deliver the orphan m' without m (the discard-above-lnmn safety
measure preserving MD5).  Measured: survivor delivery sets, joint
detection, and the time to re-establish a stable view.
"""

from common import RESULTS, assert_trace_correct, fmt, make_cluster

from repro.net.trace import CONFIRM, VIEW_INSTALL


def run_example1():
    cluster = make_cluster(["Pi", "Pj", "Pr", "Ps"], seed=7)
    cluster.create_group("g")
    cluster.run(3)
    cluster.network.add_filter(
        lambda src, dst, payload: not (src == "Pr" and dst in ("Pi", "Pj"))
    )
    crash_time = cluster.sim.now
    cluster["Pr"].multicast("g", "m")
    cluster.run(0.1)
    cluster.crash("Pr")

    def react(group, sender, payload, msg_id):
        if payload == "m":
            cluster["Ps"].multicast(group, "m-prime")

    cluster["Ps"].add_delivery_callback(react)
    cluster.sim.schedule(12.0, cluster.crash, "Ps")
    cluster.run(250)
    return cluster, crash_time


def test_example1_orphan_suppression(benchmark):
    cluster, crash_time = benchmark.pedantic(run_example1, rounds=1, iterations=1)
    survivors = ("Pi", "Pj")
    orphan_delivered = any(
        "m-prime" in cluster[name].delivered_payloads("g")
        and "m" not in cluster[name].delivered_payloads("g")
        for name in survivors
    )
    views_ok = all(
        cluster[name].view("g").sorted_members() == ("Pi", "Pj") for name in survivors
    )
    trace = cluster.trace()
    joint_detections = [
        event
        for event in trace.events(kind=CONFIRM, process="Pi", group="g")
        if set(event.detail("targets", ())) == {"Pr", "Ps"}
    ]
    stable_view_time = None
    for event in trace.events(kind=VIEW_INSTALL, process="Pi", group="g"):
        if set(event.detail("members", ())) == {"Pi", "Pj"}:
            stable_view_time = event.time
            break
    assert_trace_correct(cluster, view_agreement_sets={"g": list(survivors)})
    RESULTS.add_table(
        "E4 (Example 1) crash during multicast + dependent crash",
        [
            f"orphan m' delivered without m at any survivor: {orphan_delivered}",
            f"Pr and Ps detected in a single joint detection: {bool(joint_detections)}",
            f"survivor views stabilised to {{Pi, Pj}}: {views_ok}",
            f"time from the crash to the stable survivor view: "
            f"{fmt((stable_view_time - crash_time) if stable_view_time else float('nan'))} time units",
            "paper: messages of failed processes above lnmn are discarded so the "
            "orphan is erased -> reproduced",
        ],
    )
    assert not orphan_delivered
    assert views_ok
    assert stable_view_time is not None
