"""E4 -- Example 1: crash during multicast plus a dependent crash.

Paper claim: if Pr crashes while multicasting m so that only Ps receives
it, and Ps (having delivered m and multicast m' -> m) crashes before it can
refute the suspicion of Pr, then the survivors detect Pr and Ps *together*
and never deliver the orphan m' without m (the discard-above-lnmn safety
measure preserving MD5).  Measured: survivor delivery sets, joint
detection, and the time to re-establish a stable view.

This benchmark runs through ``repro.api.Session`` with ``analysis="online"``:
the guarantees are verified by the streaming checkers and the two
quantities the assertions need (joint detections, the stable-view install
time) are observed by a small custom :class:`~repro.net.trace.TraceSink`
-- no full trace is ever materialized.
"""

from common import RESULTS, assert_session_correct, fmt, run_session

from repro.net.trace import CONFIRM, TraceSink, VIEW_INSTALL

SURVIVORS = ("Pi", "Pj")


class SurvivorViewWatcher(TraceSink):
    """Streams the joint-detection and stable-view observations E4 needs."""

    def __init__(self, process: str, group: str) -> None:
        self.process = process
        self.group = group
        self.confirm_target_sets = []
        self.stable_view_time = None

    def on_event(self, event) -> None:
        if event.process != self.process or event.group != self.group:
            return
        if event.kind == CONFIRM:
            self.confirm_target_sets.append(frozenset(event.detail("targets", ())))
        elif event.kind == VIEW_INSTALL and self.stable_view_time is None:
            if set(event.detail("members", ())) == set(SURVIVORS):
                self.stable_view_time = event.time


def run_example1():
    watcher = SurvivorViewWatcher("Pi", "g")
    session = run_session(
        ["Pi", "Pj", "Pr", "Ps"],
        groups=[("g", None)],
        seed=7,
        analysis="online",
        sinks=[watcher],
        view_agreement_sets={"g": list(SURVIVORS)},
    )
    session.run(3)
    session.network.add_filter(
        lambda src, dst, payload: not (src == "Pr" and dst in SURVIVORS)
    )
    crash_time = session.sim.now
    session.multicast("Pr", "g", "m")
    session.run(0.1)
    session.crash("Pr")

    def react(group, sender, payload, msg_id):
        if payload == "m":
            session.multicast("Ps", group, "m-prime")

    session["Ps"].add_delivery_callback(react)
    session.sim.schedule(12.0, session.crash, "Ps")
    session.run(250)
    return session, watcher, crash_time


def test_example1_orphan_suppression(benchmark):
    session, watcher, crash_time = benchmark.pedantic(run_example1, rounds=1, iterations=1)
    orphan_delivered = any(
        "m-prime" in session[name].delivered_payloads("g")
        and "m" not in session[name].delivered_payloads("g")
        for name in SURVIVORS
    )
    views_ok = all(
        session[name].view("g").sorted_members() == SURVIVORS for name in SURVIVORS
    )
    joint_detections = [
        targets for targets in watcher.confirm_target_sets if targets == {"Pr", "Ps"}
    ]
    stable_view_time = watcher.stable_view_time
    result = assert_session_correct(session)
    RESULTS.add_table(
        "E4 (Example 1) crash during multicast + dependent crash",
        [
            f"orphan m' delivered without m at any survivor: {orphan_delivered}",
            f"Pr and Ps detected in a single joint detection: {bool(joint_detections)}",
            f"survivor views stabilised to {{Pi, Pj}}: {views_ok}",
            f"time from the crash to the stable survivor view: "
            f"{fmt((stable_view_time - crash_time) if stable_view_time else float('nan'))} time units",
            f"verified online: {result.trace_events} trace events streamed, "
            f"{result.trace_events_stored} stored",
            "paper: messages of failed processes above lnmn are discarded so the "
            "orphan is erased -> reproduced",
        ],
    )
    assert not orphan_delivered
    assert views_ok
    assert stable_view_time is not None
    # The whole run was verified without materializing a trace.
    assert result.analysis == "online"
    assert result.trace_events_stored == 0
