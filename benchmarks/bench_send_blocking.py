"""E9 -- §7 claim: symmetric Newtop never blocks a send; a multi-group
sender blocks only while a message it unicast to a *different* group's
sequencer awaits sequencing.

Measured: number of deferred sends and the distribution of blocking times
for (a) two symmetric groups, (b) a symmetric + an asymmetric group, and
(c) two asymmetric groups, under the same interleaved workload.
"""

from common import RESULTS, assert_trace_correct, fmt, make_cluster

from repro.analysis.metrics import blocking_times
from repro.core import OrderingMode


def run_scenario(mode_one: OrderingMode, mode_two: OrderingMode, seed: int):
    cluster = make_cluster(["P1", "P2", "P3"], seed=seed)
    cluster.create_group("g1", mode=mode_one)
    cluster.create_group("g2", mode=mode_two)
    for index in range(6):
        cluster["P2"].multicast("g1", f"one-{index}")
        cluster["P2"].multicast("g2", f"two-{index}")
        cluster.run(1.0)
    cluster.run(80)
    assert_trace_correct(cluster)
    trace = cluster.trace()
    blocked = len(trace.events(kind="blocked_send", process="P2"))
    waits = blocking_times(trace)
    mean_wait = sum(waits) / len(waits) if waits else 0.0
    delivered = len(cluster["P3"].delivered)
    return {"blocked": blocked, "mean_wait": mean_wait, "delivered": delivered}


def run_all():
    return {
        "sym+sym": run_scenario(OrderingMode.SYMMETRIC, OrderingMode.SYMMETRIC, 21),
        "sym+asym": run_scenario(OrderingMode.SYMMETRIC, OrderingMode.ASYMMETRIC, 22),
        "asym+asym": run_scenario(OrderingMode.ASYMMETRIC, OrderingMode.ASYMMETRIC, 23),
    }


def test_send_blocking(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = ["configuration | deferred sends | mean blocking time | delivered at P3"]
    for name, row in results.items():
        table.append(
            f"{name:13s} | {row['blocked']:14d} | {fmt(row['mean_wait']):>18} | {row['delivered']:15d}"
        )
    table.append(
        "paper: 'If only symmetric version is used, Newtop is totally non-blocking "
        "on send operations'; blocking appears only when another group's sequencer "
        "is involved -> reproduced"
    )
    RESULTS.add_table("E9 send blocking by group-mode combination", table)

    assert results["sym+sym"]["blocked"] == 0
    assert results["sym+asym"]["blocked"] > 0 or results["asym+asym"]["blocked"] > 0
    # All configurations still deliver the full workload.
    for row in results.values():
        assert row["delivered"] == 12
