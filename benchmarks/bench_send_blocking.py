"""E9 -- §7 claim: symmetric Newtop never blocks a send; a multi-group
sender blocks only while a message it unicast to a *different* group's
sequencer awaits sequencing.

Measured: number of deferred sends and the distribution of blocking times
for (a) two symmetric groups, (b) a symmetric + an asymmetric group, and
(c) two asymmetric groups, under the same interleaved workload.
"""

from common import RESULTS, EventProbe, assert_session_correct, fmt, run_session

from repro.analysis.metrics import blocking_times
from repro.core import OrderingMode
from repro.net.trace import BLOCKED_SEND, UNBLOCKED_SEND


def run_scenario(mode_one: OrderingMode, mode_two: OrderingMode, seed: int):
    probe = EventProbe(BLOCKED_SEND, UNBLOCKED_SEND)
    session = run_session(
        ["P1", "P2", "P3"],
        groups=[("g1", None, mode_one), ("g2", None, mode_two)],
        seed=seed,
        analysis="online",
        sinks=[probe],
    )
    for index in range(6):
        session.multicast("P2", "g1", f"one-{index}")
        session.multicast("P2", "g2", f"two-{index}")
        session.run(1.0)
    session.run(80)
    assert_session_correct(session)
    trace = probe.trace()
    blocked = len(trace.events(kind=BLOCKED_SEND, process="P2"))
    waits = blocking_times(trace)
    mean_wait = sum(waits) / len(waits) if waits else 0.0
    delivered = len(session["P3"].delivered)
    return {"blocked": blocked, "mean_wait": mean_wait, "delivered": delivered}


def run_all():
    return {
        "sym+sym": run_scenario(OrderingMode.SYMMETRIC, OrderingMode.SYMMETRIC, 21),
        "sym+asym": run_scenario(OrderingMode.SYMMETRIC, OrderingMode.ASYMMETRIC, 22),
        "asym+asym": run_scenario(OrderingMode.ASYMMETRIC, OrderingMode.ASYMMETRIC, 23),
    }


def test_send_blocking(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = ["configuration | deferred sends | mean blocking time | delivered at P3"]
    for name, row in results.items():
        table.append(
            f"{name:13s} | {row['blocked']:14d} | {fmt(row['mean_wait']):>18} | {row['delivered']:15d}"
        )
    table.append(
        "paper: 'If only symmetric version is used, Newtop is totally non-blocking "
        "on send operations'; blocking appears only when another group's sequencer "
        "is involved -> reproduced"
    )
    RESULTS.add_table("E9 send blocking by group-mode combination", table)

    assert results["sym+sym"]["blocked"] == 0
    assert results["sym+asym"]["blocked"] > 0 or results["asym+asym"]["blocked"] > 0
    # All configurations still deliver the full workload.
    for row in results.values():
        assert row["delivered"] == 12
