"""E22 -- repro.parallel at scale: the 5,000-process push and pool speedup.

The ROADMAP's scale items have been simulation-side so far (batched
delivery, streaming verification); the remaining ceiling was that every
sweep cell and scenario ran serially in one Python process, leaving all
but one core idle.  This benchmark exercises the :mod:`repro.parallel`
worker pool on both of its integration points:

* **Scale shards** -- a churn + dynamic-formation scenario set totalling
  **5,000 processes across 200 overlapping groups** (full scale: 20
  shards of 250 processes / 10 groups), dispatched over the pool with
  :func:`repro.scenarios.run_scenarios` and verified *online* -- every
  shard streams its trace through the incremental checkers, zero events
  stored.  One laptop-size Python process could never hold this run; a
  pool of independent simulations does it in minutes.
* **Grid speedup** -- an E21-style (stack x load x fault) sweep executed
  twice: serially and on the pool.  Cell seeds derive from the spec, not
  from shard order, so the two reports must be *identical* apart from
  per-cell wall clock -- asserted here, cell by cell -- while the
  parallel run's wall clock shrinks with the pool (the recorded
  ``speedup``; >=2x on a 4-core runner).  A pure-CPU calibration measures
  what the runner actually gives N processes (CPU quotas and SMT sharing
  make ``os.cpu_count()`` a fiction in containers) and the speedup is
  asserted against that yardstick.  The grid is split per fault pattern
  and recombined with :func:`common.merge_sweep_reports`, the
  merged-report path sharded executions use.

Run as a script to record the JSON artifact for CI::

    python benchmarks/bench_parallel_scale.py --scale smoke \
        --json BENCH_parallel_scale.json --parallel 2
"""

import copy
import time

from common import RESULTS, benchmark_arg_parser, merge_sweep_reports, write_bench_json

from repro.parallel import ParallelExecutor, WorkUnit, default_pool_size
from repro.experiments import SweepSpec, run_sweep
from repro.scenarios import RollingReport, churn_scenario, run_scenarios

#: The headline configuration: 20 shards x 250 processes / 10 groups =
#: 5,000 processes and 200 overlapping groups under churn + formations.
FULL_SCALE = dict(
    shards=20,
    shard_processes=250,
    shard_groups=10,
    group_size=12,
    crashes=2,
    leaves=2,
    formations=1,
    messages_per_sender=1,
    seed=7,
    grid=dict(
        stacks=("newtop-symmetric", "newtop-asymmetric", "fixed_sequencer", "lamport_ack"),
        loads=(1.0, 2.0),
        processes=16,
        groups=4,
        group_size=6,
        duration=30.0,
        drain=40.0,
    ),
)

#: Tiny configuration for CI and the tier-1 smoke path (~seconds).
SMOKE_SCALE = dict(
    shards=4,
    shard_processes=20,
    shard_groups=3,
    group_size=6,
    crashes=1,
    leaves=1,
    formations=1,
    messages_per_sender=1,
    seed=7,
    grid=dict(
        stacks=("newtop-symmetric", "lamport_ack"),
        loads=(1.0,),
        processes=8,
        groups=2,
        group_size=5,
        duration=18.0,
        drain=24.0,
    ),
)

SCALES = {"smoke": SMOKE_SCALE, "full": FULL_SCALE}


def shard_configs(scale):
    """The scenario shard set: seed-distinct churn+formation scenarios."""
    return [
        churn_scenario(
            n_processes=scale["shard_processes"],
            n_groups=scale["shard_groups"],
            group_size=scale["group_size"],
            crashes=scale["crashes"],
            leaves=scale["leaves"],
            formations=scale["formations"],
            messages_per_sender=scale["messages_per_sender"],
            seed=scale["seed"] + shard,
        )
        for shard in range(scale["shards"])
    ]


def run_scale_shards(scale=None, parallel=None, progress=None):
    """Run the shard set on the pool, verified online; returns a summary.

    Aggregation is *streaming*: a :class:`repro.scenarios.RollingReport`
    consumes each shard's result as its worker finishes (completion order),
    folding the shard's actual delivery-latency reservoir -- carried on
    :attr:`ScenarioResult.latency_reservoir` -- into one merged reservoir,
    so the cross-shard percentiles come from real sample pools rather than
    moment sketches.
    """
    scale = SMOKE_SCALE if scale is None else scale
    configs = shard_configs(scale)
    report = RollingReport(expected=len(configs))

    def observe(result):
        report.add(result)
        if progress is not None:
            progress(result)

    start = time.time()
    results = run_scenarios(
        configs, parallel=parallel, analysis="online", progress=observe
    )
    wall = time.time() - start
    for result in results:
        assert result.passed, (result.name, result.checks.violations[:3])
        assert result.trace_events_stored == 0, "online mode materialized a trace"
    assert report.completed == len(results)
    return {
        "shards": report.completed,
        "processes_total": scale["shards"] * scale["shard_processes"],
        "groups_total": scale["shards"] * scale["shard_groups"],
        "groups_formed": scale["shards"] * scale["formations"],
        "pool_size": parallel or 1,
        "wall_seconds": round(wall, 3),
        "passed": report.all_passed,
        "deliveries": report.deliveries,
        "messages_sent": report.messages_sent,
        "events_processed": report.events_processed,
        "trace_events": report.trace_events,
        "trace_events_stored": report.trace_events_stored,
        "delivery_latency": report.latency.summary(),
        "delivery_latency_exact": report.latency.is_exact,
    }


def _burn(iterations):
    total = 0
    for value in range(iterations):
        total += value * value
    return total


def cpu_scaling(pool, iterations=6_000_000):
    """Measured speedup this runner can actually give ``pool`` processes.

    Containers routinely advertise more cores than they schedule (CPU
    quotas, SMT siblings, noisy neighbours), so asserting "Nx on an
    N-process pool" against ``os.cpu_count()`` is fiction.  This runs the
    same pure-CPU burn serially and across the pool and reports the real
    ratio -- the yardstick the grid speedup is then held to.
    """
    start = time.time()
    for _ in range(pool):
        _burn(iterations)
    serial = time.time() - start
    units = [WorkUnit(f"burn-{index}", _burn, (iterations,)) for index in range(pool)]
    start = time.time()
    ParallelExecutor(pool_size=pool).run(units)
    parallel = time.time() - start
    return round(serial / parallel, 3) if parallel else 1.0


def grid_specs(scale):
    """The E21-style grid, split per fault pattern (the merge path)."""
    grid = scale["grid"]
    base = dict(
        stacks=tuple(grid["stacks"]),
        profiles=("poisson",),
        loads=tuple(grid["loads"]),
        processes=grid["processes"],
        groups=grid["groups"],
        group_size=grid["group_size"],
        duration=grid["duration"],
        drain=grid["drain"],
        seed=scale["seed"],
    )
    return [
        SweepSpec(faults=("none",), **base),
        SweepSpec(faults=("crash",), **base),
    ]


def strip_wall_clock(report_dict):
    """A report's cells without the one legitimately nondeterministic
    field, for serial-vs-parallel equality comparison."""
    cells = copy.deepcopy(report_dict["cells"])
    for cell in cells:
        cell.pop("wall_seconds", None)
    return cells


def run_grid_speedup(scale=None, parallel=None, progress=None):
    """Run the grid serially and on the pool; equality + speedup."""
    scale = SMOKE_SCALE if scale is None else scale
    specs = grid_specs(scale)
    pool = parallel or default_pool_size()
    scaling = cpu_scaling(pool)
    serial_start = time.time()
    serial = merge_sweep_reports(*[run_sweep(spec, progress=progress) for spec in specs])
    serial_wall = time.time() - serial_start
    parallel_start = time.time()
    sharded = merge_sweep_reports(
        *[run_sweep(spec, progress=progress, parallel=pool) for spec in specs]
    )
    parallel_wall = time.time() - parallel_start
    assert strip_wall_clock(serial.as_dict()) == strip_wall_clock(sharded.as_dict()), (
        "parallel sweep diverged from the serial run"
    )
    assert serial.passed and sharded.passed
    return {
        "cells": len(sharded.cells),
        "pool_size": pool,
        "cpu_scaling_calibration": scaling,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "speedup": round(serial_wall / parallel_wall, 3) if parallel_wall else None,
        "identical_reports": True,
        "report": sharded.as_dict(),
    }


def run_all(scale=None, parallel=None, progress=None):
    return {
        "scale_shards": run_scale_shards(scale, parallel, progress),
        "grid": run_grid_speedup(scale, parallel),
    }


def _assert_payload(payload, scale, pool):
    shards = payload["scale_shards"]
    grid = payload["grid"]
    assert shards["passed"] and shards["trace_events_stored"] == 0
    assert shards["processes_total"] == scale["shards"] * scale["shard_processes"]
    assert grid["identical_reports"]
    if pool >= 2 and grid["cells"] >= 8:
        # The pool must deliver a solid fraction of what this runner's
        # hardware measurably gives `pool` CPU-bound processes (the
        # calibration absorbs CPU quotas, SMT sharing and noisy
        # neighbours).  On an unconstrained 4-core runner the calibration
        # is ~3.5-4x, so this floor demands the >=2x headline there.
        floor = max(1.02, 0.6 * grid["cpu_scaling_calibration"])
        assert grid["speedup"] >= floor, (grid["speedup"], floor)


def test_parallel_scale(benchmark):
    pool = min(2, default_pool_size())
    payload = benchmark.pedantic(
        run_all, kwargs=dict(scale=SMOKE_SCALE, parallel=pool),
        rounds=1, iterations=1,
    )
    shards = payload["scale_shards"]
    grid = payload["grid"]
    table = [
        f"shard set: {shards['shards']} scenarios x "
        f"{SMOKE_SCALE['shard_processes']} processes, pool={shards['pool_size']}, "
        f"verified online ({shards['trace_events']} events streamed, 0 stored)",
        f"grid: {grid['cells']} cells serial {grid['serial_wall_seconds']}s vs "
        f"pool {grid['parallel_wall_seconds']}s -> speedup {grid['speedup']}x "
        f"(runner gives {grid['cpu_scaling_calibration']}x to {grid['pool_size']} "
        f"CPU-bound processes), reports byte-identical (minus wall clock)",
        "seed-stable sharding: the pool changes wall clock, never numbers",
    ]
    RESULTS.add_table("E22 multi-core experiment execution (repro.parallel)", table)
    assert shards["passed"]
    assert grid["identical_reports"]


def record_results(scale_name, json_path, parallel=None):
    """Run both parts at the named scale and write the JSON (CI hook)."""
    scale = SCALES[scale_name]
    pool = parallel or default_pool_size()
    start = time.time()
    done = []

    def progress(result):
        done.append(result)
        print(
            f"  [shard {len(done):3d}/{scale['shards']}] {result.name}: "
            f"passed={result.passed} deliveries={result.deliveries} "
            f"(online, {result.trace_events_stored} stored)"
        )

    payload = run_all(scale, pool, progress)
    _assert_payload(payload, scale, pool)
    config = {
        key: (dict(value) if isinstance(value, dict) else
              list(value) if isinstance(value, tuple) else value)
        for key, value in scale.items()
    }
    config["grid"] = {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in scale["grid"].items()
    }
    return write_bench_json(
        json_path,
        "parallel_scale",
        scale_name,
        {
            "analysis": "online",
            "parallel": pool,
            "scale_shards": payload["scale_shards"],
            "grid": payload["grid"],
        },
        config=config,
        seed=scale["seed"],
        wall_seconds=time.time() - start,
    )


def main():
    parser = benchmark_arg_parser(
        __doc__, "BENCH_parallel_scale.json", SCALES,
        default_parallel=default_pool_size(),
    )
    args = parser.parse_args()
    payload = record_results(args.scale, args.json, parallel=args.parallel)
    shards = payload["scale_shards"]
    grid = payload["grid"]
    print(
        f"{payload['benchmark']} [{payload['scale']}] pool={payload['parallel']}: "
        f"{shards['processes_total']} processes / {shards['groups_total']} groups "
        f"across {shards['shards']} shards in {shards['wall_seconds']}s (online, "
        f"{shards['trace_events_stored']} stored); grid speedup {grid['speedup']}x "
        f"over {grid['cells']} cells (calibration "
        f"{grid['cpu_scaling_calibration']}x) -> {args.json}"
    )


if __name__ == "__main__":
    main()
