"""E1 -- Fig. 1: online server migration via overlapping groups.

Paper claim: a replica can be migrated to a new machine by forming an
overlapping group, transferring state inside it and winding down the old
memberships, "without any noticeable disruption in service".  Measured:
requests served before/during/after the migration, state integrity at the
new replica, and the migration window length.
"""

from common import RESULTS, fmt

from repro.apps import ServerMigrationScenario


def run_migration():
    scenario = ServerMigrationScenario(requests_per_phase=6, seed=11)
    return scenario.run()


def test_fig1_server_migration(benchmark):
    report = benchmark.pedantic(run_migration, rounds=1, iterations=1)
    RESULTS.add_table(
        "E1 (Fig. 1) online server migration",
        [
            f"requests before/during/after: {report.requests_before} / "
            f"{report.requests_during} / {report.requests_after}",
            f"all requests applied: {report.all_requests_applied}",
            f"state transferred intact: {report.state_transferred_intact}",
            f"surviving group: {report.final_group_members}",
            f"migration window: {fmt(report.migration_duration)} sim time units",
            "paper: migration must not interrupt service -> "
            f"measured service_uninterrupted = {report.service_uninterrupted}",
        ],
    )
    assert report.service_uninterrupted
    assert report.final_group_members == ("P1", "P3")
    assert report.old_group_cleaned_up
