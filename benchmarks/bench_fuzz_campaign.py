"""E25 -- the fuzz-campaign smoke gate: the checker oracle finds nothing
on the healthy stack, and provably *would* find a planted bug.

Two arms, both required:

* **Healthy arm** -- a pinned-seed corpus slice of the default-tuning
  generator runs through :func:`repro.scenarios.fuzz.run_campaign`; the
  gate is zero violations and zero execution casualties (stalls are
  tracked, not failed -- the paper's guarantees are safety properties).
  Throughput lands in the JSON as ``specs_per_minute``, the number the
  ROADMAP quotes.
* **Oracle arm** -- the same machinery with a known bug re-introduced
  (``use_view_cut_marker: False``, reverting step (viii) to the naive
  lnmn discard bound) must find at least one virtual-synchrony violation
  within a small bounded budget.  A campaign that passes because the
  checkers quietly stopped looking fails here, not in a real regression.

Failures of the healthy arm write replayable artifacts next to the JSON
(``python -m repro.scenarios.fuzz replay <artifact>``).

Run as a script for the CI gate::

    python benchmarks/bench_fuzz_campaign.py --scale smoke \
        --json BENCH_fuzz_campaign.json --parallel 2
"""

import os
import time

from common import benchmark_arg_parser, write_bench_json

from repro.scenarios.fuzz import GeneratorTuning, run_campaign

#: Pinned corpus: seed 7 is the slice the regression suite also draws
#: from; the smoke count keeps the CI step under a minute.
SMOKE_SCALE = dict(corpus_seed=7, count=60, oracle_budget=8)

#: The local deep-soak shape: the corpus breadth a release check wants.
FULL_SCALE = dict(corpus_seed=7, count=400, oracle_budget=8)

SCALES = {"smoke": SMOKE_SCALE, "full": FULL_SCALE}

#: The oracle arm's tuning: aimed at the view-cut bug's trigger shape
#: (asymmetric groups, open-loop load, crash churn), with the bug toggle
#: stamped into every generated spec.
ORACLE_TUNING = GeneratorTuning(
    min_processes=6,
    max_processes=8,
    max_groups=2,
    min_group_size=4,
    max_group_size=6,
    max_events=4,
    event_weights={"crash": 3.0, "correlated_crash": 2.0, "partition": 1.0},
    asymmetric_probability=1.0,
    open_loop_probability=1.0,
    load_phase_probability=0.0,
    latency_swap_probability=0.0,
    link_fault_probability=0.0,
    protocol={"use_view_cut_marker": False},
)


def measure(scale=None, parallel=None, artifact_dir=None):
    """Run both arms; returns the payload (gates not yet enforced)."""
    scale = SMOKE_SCALE if scale is None else scale
    healthy = run_campaign(
        scale["corpus_seed"],
        scale["count"],
        parallel=parallel,
        shrink_failures=True,
        max_shrink=3,
        artifact_dir=artifact_dir,
    )
    oracle = run_campaign(
        scale["corpus_seed"],
        scale["oracle_budget"],
        tuning=ORACLE_TUNING,
        shrink_failures=True,
        max_shrink=1,
        shrink_budget=60,
    )
    oracle_shrunk = [f for f in oracle.failures if f.minimized is not None]
    return {
        "corpus_seed": scale["corpus_seed"],
        "count": scale["count"],
        "parallel": parallel or 1,
        "tallies": dict(healthy.tallies),
        "passed": healthy.passed,
        "specs_per_minute": round(healthy.specs_per_minute, 1),
        "campaign_wall_seconds": round(healthy.wall_seconds, 3),
        "failures": [failure.as_dict() for failure in healthy.failures],
        "oracle": {
            "budget": scale["oracle_budget"],
            "violations": oracle.tallies["violation"],
            "violation_kind": (
                oracle.failures[0].violation_kind if oracle.failures else None
            ),
            "shrunk_events": (
                len(oracle_shrunk[0].minimized.get("events", ()))
                if oracle_shrunk
                else None
            ),
            "shrink_runs": (
                oracle_shrunk[0].shrink_runs if oracle_shrunk else None
            ),
        },
    }


def check_gates(payload):
    """Both arms gate the build: clean healthy corpus, sharp oracle."""
    assert payload["passed"], (
        f"fuzz smoke corpus (seed {payload['corpus_seed']}, "
        f"{payload['count']} specs) found failures: {payload['tallies']} -- "
        "replay each artifact with python -m repro.scenarios.fuzz replay"
    )
    oracle = payload["oracle"]
    assert oracle["violations"] >= 1, (
        f"the oracle arm found no violation in {oracle['budget']} specs with "
        "use_view_cut_marker disabled: the checker oracle has gone blind"
    )
    assert oracle["violation_kind"] == "virtual-synchrony", oracle
    assert oracle["shrunk_events"] is not None and oracle["shrunk_events"] <= 12, (
        f"shrinker left {oracle['shrunk_events']} events in the oracle repro "
        "(expected a minimal repro of at most 12)"
    )


def test_fuzz_campaign(benchmark):
    from common import RESULTS

    payload = benchmark.pedantic(
        measure, kwargs=dict(scale=SMOKE_SCALE, parallel=2),
        rounds=1, iterations=1,
    )
    check_gates(payload)
    oracle = payload["oracle"]
    RESULTS.add_table(
        "E25 checker-oracle fuzz campaign (repro.scenarios.fuzz)",
        [
            f"healthy corpus: seed {payload['corpus_seed']} x "
            f"{payload['count']} specs -> {payload['tallies']} at "
            f"{payload['specs_per_minute']} specs/min (parallel "
            f"{payload['parallel']})",
            f"oracle arm (use_view_cut_marker off): "
            f"{oracle['violations']} {oracle['violation_kind']} violation(s) "
            f"within {oracle['budget']} specs, shrunk to "
            f"{oracle['shrunk_events']} event(s) in {oracle['shrink_runs']} "
            "runs",
        ],
    )


def record_results(scale_name, json_path, parallel=None, observe=None):
    """Measure, enforce the gates, write the JSON (CI hook)."""
    scale = SCALES[scale_name]
    artifact_dir = os.path.join(
        os.path.dirname(os.path.abspath(json_path)) or ".", "fuzz-artifacts"
    )
    start = time.time()
    payload = measure(scale, parallel=parallel, artifact_dir=artifact_dir)
    check_gates(payload)
    return write_bench_json(
        json_path,
        "fuzz_campaign",
        scale_name,
        payload,
        config=dict(scale),
        seed=scale["corpus_seed"],
        wall_seconds=time.time() - start,
    )


def main():
    parser = benchmark_arg_parser(__doc__, "BENCH_fuzz_campaign.json", SCALES)
    args = parser.parse_args()
    payload = record_results(args.scale, args.json, parallel=args.parallel)
    oracle = payload["oracle"]
    print(
        f"{payload['benchmark']} [{payload['scale']}]: "
        f"{payload['count']} specs {payload['tallies']} at "
        f"{payload['specs_per_minute']} specs/min (parallel "
        f"{payload['parallel']}); oracle arm: {oracle['violations']} "
        f"{oracle['violation_kind']} violation(s) in {oracle['budget']} specs, "
        f"shrunk to {oracle['shrunk_events']} event(s) -> {args.json}"
    )


if __name__ == "__main__":
    main()
