"""E3 -- Fig. 3: architecture layering cost.

The paper's Fig. 3 shows the abstraction hierarchy (transport -> logical
clock/membership -> atomic delivery -> total order -> view installation).
This benchmark quantifies what each layer adds to end-to-end delivery
latency by running the same workload with (a) raw transport, (b) atomic
delivery only (logical-clock gating bypassed) and (c) full total order.
"""

from common import RESULTS, assert_session_correct, fmt, run_session

from repro.core import OrderingMode
from repro.net.latency import UniformLatency
from repro.net.network import Network, NetworkConfig
from repro.net.simulator import Simulator
from repro.net.transport import Transport


def raw_transport_latency(messages: int = 10) -> float:
    """Mean one-way latency of the bare transport (the bottom layer)."""
    sim = Simulator(seed=4)
    network = Network(sim, NetworkConfig(latency_model=UniformLatency()))
    transport = Transport(network)
    sender = transport.endpoint("a")
    receiver = transport.endpoint("b")
    latencies = []
    receiver.register_default_handler(
        lambda msg: latencies.append(sim.now - msg.sent_at)
    )
    for index in range(messages):
        sim.schedule_at(float(index), sender.send, "b", index)
    sim.run()
    return sum(latencies) / len(latencies)


def newtop_latency(mode: OrderingMode, seed: int = 4) -> float:
    # Atomic-only delivery intentionally bypasses the total-order layer, so
    # verification is disabled for that configuration (as before the port).
    checks = () if mode == OrderingMode.ATOMIC_ONLY else None
    session = run_session(
        ["P1", "P2", "P3"],
        groups=[("g", None, mode)],
        seed=seed,
        analysis="online",
        checks=checks,
    )
    for index in range(10):
        session.multicast("P1", "g", index)
        session.run(1.0)
    session.run(60)
    if mode != OrderingMode.ATOMIC_ONLY:
        assert_session_correct(session)
    return session.metrics_sink.latency.mean


def run_layering():
    return {
        "transport": raw_transport_latency(),
        "atomic": newtop_latency(OrderingMode.ATOMIC_ONLY),
        "total_order": newtop_latency(OrderingMode.SYMMETRIC),
    }


def test_fig3_layering_costs(benchmark):
    results = benchmark.pedantic(run_layering, rounds=1, iterations=1)
    RESULTS.add_table(
        "E3 (Fig. 3) per-layer mean delivery latency (sim time units)",
        [
            f"transport only (cross-node)        : {fmt(results['transport'])}",
            f"+ atomic delivery (incl. self)     : {fmt(results['atomic'])}",
            f"+ total order (symmetric)          : {fmt(results['total_order'])}",
            "paper: total order costs extra waiting for the receive-vector bound; "
            "atomic delivery can bypass the logical-clock gate -> ordering layer "
            "adds latency on top of atomic delivery, as expected",
        ],
    )
    # The atomic figure includes zero-latency self-deliveries, so it is only
    # compared against the total-order figure measured the same way.
    assert results["atomic"] <= results["total_order"]
    assert results["transport"] <= results["total_order"]
