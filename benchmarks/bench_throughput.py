"""E17 -- sustained-throughput comparison: Newtop (both modes) vs the §6
baseline protocols under the same workload and network.

The paper makes no absolute performance claims, so the comparison is about
*message cost* and relative behaviour: the symmetric protocol costs n-1
network messages per multicast (plus amortised nulls), the asymmetric one
about n, ISIS adds ordering announcements, and the Lamport all-ack baseline
pays n*(n-1) acknowledgements.  Every protocol must still deliver the whole
workload, verified ONLINE against the stack's claimed ordering guarantees
(total order for the sequenced stacks, causal for Psync) -- the run is a
``repro.api`` session end to end, with no materialized trace.
"""

from common import (
    RESULTS,
    assert_session_correct,
    fmt,
    run_session,
    run_session_traffic,
)

from repro.core import OrderingMode

NAMES = [f"P{i}" for i in range(5)]
MESSAGES_PER_SENDER = 4
SENDERS = NAMES[:3]

#: (label, stack registry name, per-group mode override)
PROTOCOLS = [
    ("Newtop symmetric", "newtop", OrderingMode.SYMMETRIC, 91),
    ("Newtop asymmetric", "newtop", OrderingMode.ASYMMETRIC, 92),
    ("ISIS (vector clock)", "isis", None, 93),
    ("fixed sequencer", "fixed_sequencer", None, 94),
    ("Lamport all-ack", "lamport_ack", None, 95),
]


def run_protocol(stack, mode, seed):
    session = run_session(
        NAMES, groups=[("g", None, mode)], stack=stack, seed=seed, analysis="online"
    )
    start = session.sim.now
    sends = MESSAGES_PER_SENDER * len(SENDERS)
    # Message cost is measured over the active window plus a short settle,
    # so a long idle drain full of time-silence nulls does not get charged
    # to the application multicasts.
    run_session_traffic(session, "g", SENDERS, MESSAGES_PER_SENDER, drain=5.0)
    messages_during_active = session.network.stats.messages_sent
    session.run(115)
    duration = session.sim.now - start
    result = assert_session_correct(session)
    return {
        "deliveries": result.deliveries,
        "throughput": result.deliveries / duration,
        "network_msgs_per_multicast": messages_during_active / sends,
        # The streaming checker suite IS the order-agreement verdict: the
        # per-stack total-order / causal checkers consumed every delivery.
        "agreed": result.passed,
    }


def run_all():
    return {
        label: run_protocol(stack, mode, seed)
        for label, stack, mode, seed in PROTOCOLS
    }


def test_throughput_comparison(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    expected = MESSAGES_PER_SENDER * len(SENDERS) * len(NAMES)
    table = ["protocol            | deliveries | msgs/multicast | checks (online)"]
    for name, row in results.items():
        table.append(
            f"{name:19s} | {row['deliveries']:10d} | {fmt(row['network_msgs_per_multicast']):>14} | {row['agreed']}"
        )
    table.append(
        "paper: Newtop achieves total order at n-1 (symmetric) to ~n (asymmetric) "
        "messages per multicast plus amortised null traffic, far below the "
        "all-ack baseline -> reproduced"
    )
    RESULTS.add_table("E17 sustained-workload comparison (group of 5)", table)

    for name, row in results.items():
        assert row["deliveries"] == expected, name
        assert row["agreed"], name
    assert (
        results["Lamport all-ack"]["network_msgs_per_multicast"]
        > results["Newtop symmetric"]["network_msgs_per_multicast"]
    )
