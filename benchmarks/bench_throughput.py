"""E17 -- sustained-throughput comparison: Newtop (both modes) vs the §6
baseline protocols under the same workload and network.

The paper makes no absolute performance claims, so the comparison is about
*message cost* and relative behaviour: the symmetric protocol costs n-1
network messages per multicast (plus amortised nulls), the asymmetric one
about n, ISIS adds ordering announcements, and the Lamport all-ack baseline
pays n*(n-1) acknowledgements.  Every protocol must still deliver the whole
workload in the same total order (except Psync, which is causal-only).
"""

from common import RESULTS, assert_trace_correct, fmt, make_cluster, run_uniform_traffic

from repro.baselines import (
    BaselineCluster,
    FixedSequencerProcess,
    IsisProcess,
    LamportAckProcess,
)
from repro.core import OrderingMode

NAMES = [f"P{i}" for i in range(5)]
MESSAGES_PER_SENDER = 4
SENDERS = NAMES[:3]


def run_newtop(mode: OrderingMode, seed: int):
    cluster = make_cluster(NAMES, seed=seed)
    cluster.create_group("g", NAMES, mode=mode)
    start = cluster.sim.now
    sends = MESSAGES_PER_SENDER * len(SENDERS)
    # Message cost is measured over the active window plus a short settle,
    # so a long idle drain full of time-silence nulls does not get charged
    # to the application multicasts.
    run_uniform_traffic(cluster, "g", SENDERS, MESSAGES_PER_SENDER, drain=5.0)
    messages_during_active = cluster.network.stats.messages_sent
    cluster.run(100)
    duration = cluster.sim.now - start
    assert_trace_correct(cluster)
    deliveries = sum(len(cluster[name].delivered_payloads("g")) for name in NAMES)
    return {
        "deliveries": deliveries,
        "throughput": deliveries / duration,
        "network_msgs_per_multicast": messages_during_active / sends,
        "agreed": len({tuple(cluster[name].delivered_payloads("g")) for name in NAMES}) == 1,
    }


def run_baseline(process_class, seed: int):
    cluster = BaselineCluster(process_class, NAMES, seed=seed)
    start = cluster.sim.now
    for index in range(MESSAGES_PER_SENDER):
        for sender in SENDERS:
            cluster[sender].multicast(f"{sender}-{index}")
        cluster.run(1.0)
    cluster.run(5.0)
    messages_during_active = cluster.total_messages_sent()
    cluster.run(120)
    duration = cluster.sim.now - start
    sends = MESSAGES_PER_SENDER * len(SENDERS)
    deliveries = sum(len(process.delivered) for process in cluster)
    return {
        "deliveries": deliveries,
        "throughput": deliveries / duration,
        "network_msgs_per_multicast": messages_during_active / sends,
        "agreed": cluster.delivery_orders_agree(),
    }


def run_all():
    return {
        "Newtop symmetric": run_newtop(OrderingMode.SYMMETRIC, seed=91),
        "Newtop asymmetric": run_newtop(OrderingMode.ASYMMETRIC, seed=92),
        "ISIS (vector clock)": run_baseline(IsisProcess, seed=93),
        "fixed sequencer": run_baseline(FixedSequencerProcess, seed=94),
        "Lamport all-ack": run_baseline(LamportAckProcess, seed=95),
    }


def test_throughput_comparison(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    expected = MESSAGES_PER_SENDER * len(SENDERS) * len(NAMES)
    table = ["protocol            | deliveries | msgs/multicast | order agreed"]
    for name, row in results.items():
        table.append(
            f"{name:19s} | {row['deliveries']:10d} | {fmt(row['network_msgs_per_multicast']):>14} | {row['agreed']}"
        )
    table.append(
        "paper: Newtop achieves total order at n-1 (symmetric) to ~n (asymmetric) "
        "messages per multicast plus amortised null traffic, far below the "
        "all-ack baseline -> reproduced"
    )
    RESULTS.add_table("E17 sustained-workload comparison (group of 5)", table)

    for name, row in results.items():
        assert row["deliveries"] == expected, name
        assert row["agreed"], name
    assert (
        results["Lamport all-ack"]["network_msgs_per_multicast"]
        > results["Newtop symmetric"]["network_msgs_per_multicast"]
    )
