"""E11 -- §5.2: membership agreement latency and message cost vs group size.

Paper claim: a crash is detected by the suspectors, agreed via
suspect/confirm messages among the unsuspected members, and a new view is
installed coordinated with delivery.  Measured: time from the first
suspicion to the view installation, and the number of membership messages
exchanged, as the group size grows.
"""

from common import (
    RESULTS,
    EventProbe,
    assert_session_correct,
    fmt,
    run_session,
    run_session_traffic,
)

from repro.analysis.metrics import view_agreement_latency
from repro.net.trace import SUSPECT, VIEW_INSTALL

GROUP_SIZES = [3, 5, 8]


def run_sweep():
    rows = []
    for size in GROUP_SIZES:
        names = [f"P{i}" for i in range(size)]
        survivors = names[:-1]
        probe = EventProbe(SUSPECT, VIEW_INSTALL)
        session = run_session(
            names,
            groups=[("g", names)],
            seed=30 + size,
            analysis="online",
            sinks=[probe],
            view_agreement_sets={"g": survivors},
        )
        run_session_traffic(session, "g", names[:2], messages_per_sender=2, drain=10)
        victim = names[-1]
        session.crash(victim)
        session.run(150)
        latencies = view_agreement_latency(probe.trace(), "g", victim)
        membership_messages = sum(
            session[name].endpoint("g").gv.stats.suspect_messages_sent
            + session[name].endpoint("g").gv.stats.confirm_messages_sent
            + session[name].endpoint("g").gv.stats.refute_messages_sent
            for name in survivors
        )
        mean_latency = sum(latencies.values()) / len(latencies) if latencies else 0.0
        correct_views = all(
            session[name].view("g").members == frozenset(survivors) for name in survivors
        )
        assert_session_correct(session)
        rows.append((size, mean_latency, membership_messages, correct_views))
    return rows


def test_membership_agreement_scaling(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = ["group size | suspicion->view latency | membership msgs | views correct"]
    for size, latency, messages, correct in rows:
        table.append(
            f"{size:10d} | {fmt(latency):>23} | {messages:15d} | {correct}"
        )
    table.append(
        "paper: agreement needs a suspect message from every unsuspected member "
        "and one confirm round -> message cost grows roughly quadratically with "
        "group size while latency stays dominated by the suspicion timeout"
    )
    RESULTS.add_table("E11 membership agreement vs group size", table)

    assert all(correct for _, _, _, correct in rows)
    assert rows[-1][2] > rows[0][2]  # membership traffic grows with group size
