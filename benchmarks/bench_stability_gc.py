"""E14 -- §5.1: message stability and retention-buffer occupancy.

Paper claim: the ``m.ldn`` piggyback lets every process learn when a
message has reached the whole view, so retransmission buffers stay bounded
and can be garbage-collected without extra acknowledgement traffic.
Measured: retained-message peak and final counts, and how they respond to
the send rate, with flow control off and on.
"""

from common import RESULTS, assert_session_correct, fmt, run_session


def run_case(messages: int, gap: float, window, seed: int):
    overrides = {"flow_control_window": window} if window else None
    session = run_session(
        ["P1", "P2", "P3"],
        groups=[("g", None)],
        seed=seed,
        mode_overrides=overrides,
        analysis="online",
    )
    for index in range(messages):
        session.multicast("P1", "g", f"m{index}")
        session.run(gap)
    session.run(80)
    assert_session_correct(session)
    buffer = session["P2"].endpoint("g").stability.buffer
    return {
        "peak": buffer.peak_size,
        "final": buffer.size(),
        "gc": buffer.discarded_stable_count,
        "delivered": len(session["P2"].delivered_payloads("g")),
    }


def run_all():
    return {
        "slow sender":           run_case(messages=10, gap=3.0, window=None, seed=61),
        "fast sender":           run_case(messages=10, gap=0.2, window=None, seed=62),
        "fast sender + window 2": run_case(messages=10, gap=0.2, window=2, seed=63),
    }


def test_stability_and_gc(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = ["scenario                | peak retained | final retained | GC'd | delivered"]
    for name, row in results.items():
        table.append(
            f"{name:23s} | {row['peak']:13d} | {row['final']:14d} | {row['gc']:4d} | {row['delivered']:9d}"
        )
    table.append(
        "paper: stability information piggybacked on normal traffic lets buffers "
        "be trimmed without extra messages; bounding the number of unstable own "
        "messages (flow control) bounds every receiver's buffer -> reproduced"
    )
    RESULTS.add_table("E14 stability-driven garbage collection", table)

    assert all(row["delivered"] == 10 for row in results.values())
    assert all(row["gc"] > 0 for row in results.values())
    # A faster sender holds more unstable messages at once; the flow-control
    # window caps that growth.
    assert results["fast sender"]["peak"] >= results["slow sender"]["peak"]
    assert results["fast sender + window 2"]["peak"] <= results["fast sender"]["peak"]
