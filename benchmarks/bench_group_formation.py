"""E12 -- §5.3: dynamic group formation latency vs group size.

Paper claim: forming a new group takes a two-phase vote plus one exchange
of start-group messages; because processes may belong to several groups,
formation subsumes the 'join' facility of other protocols.  Measured: time
from initiation to every member completing the start-number agreement, and
the number of control messages, as group size grows.
"""

from common import RESULTS, assert_session_correct, fmt, run_session, run_until_delivered

GROUP_SIZES = [3, 5, 8]


def run_sweep():
    rows = []
    for size in GROUP_SIZES:
        names = [f"P{i}" for i in range(size)]
        # Pre-existing membership: everyone is already in a base group, as
        # the paper envisages (formation happens alongside existing work).
        session = run_session(
            names, groups=[("base", names)], seed=40 + size, analysis="online"
        )
        session.run(5)
        messages_before = session.network.stats.messages_sent
        start = session.sim.now
        session[names[0]].form_group("gn", names)
        done = session.run_until(
            lambda: all(
                session[name].is_member("gn")
                and not session[name].endpoint("gn").in_formation_wait
                for name in names
            ),
            timeout=200,
        )
        formation_latency = session.sim.now - start
        control_messages = session.network.stats.messages_sent - messages_before
        # The new group carries ordered traffic immediately afterwards.
        message_id = session[names[1]].multicast("gn", "post-formation")
        delivered = run_until_delivered(session, message_id, timeout=100)
        assert_session_correct(session)
        rows.append((size, done, formation_latency, control_messages, delivered))
    return rows


def test_group_formation_scaling(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = ["group size | formed | latency | messages during formation | usable after"]
    for size, done, latency, messages, delivered in rows:
        table.append(
            f"{size:10d} | {str(done):6s} | {fmt(latency):>7} | {messages:25d} | {delivered}"
        )
    table.append(
        "paper: a two-phase vote (O(n^2) diffused votes) plus start-group "
        "agreement; the formed group is immediately usable for ordered traffic "
        "-> reproduced"
    )
    RESULTS.add_table("E12 dynamic group formation vs group size", table)

    assert all(done for _, done, _, _, _ in rows)
    assert all(delivered for *_, delivered in rows)
    assert rows[-1][3] > rows[0][3]  # vote diffusion grows with group size
