"""E13 -- §2/§6: multi-group scaling and arbitrary overlap structures.

Paper claim: Newtop handles arbitrarily overlapping groups (including the
cyclic structure of Fig. 2) with nothing beyond per-group receive vectors
and the shared clock -- no common sequencer, no coordination between
sequencers (unlike the propagation-graph approach of [9]).  Measured:
delivery latency as the number of groups per process grows, and the extra
hops a propagation-graph construction pays for the same overlap structure.

Runs as a ``repro.api`` session with ``analysis="online"``: the MD/VC
checkers stream over the trace and the latency statistics come from the
rolling :class:`~repro.net.trace.MetricsSink` -- no materialized trace.
"""

from common import RESULTS, assert_session_correct, fmt, run_session

from repro.baselines import PropagationGraphNetwork

GROUPS_PER_PROCESS = [1, 2, 4, 6]


def run_newtop_overlap(group_count: int, seed: int) -> float:
    """A ring of overlapping two-member groups over four processes."""
    names = ["P1", "P2", "P3", "P4"]
    groups = [
        (f"g{index}", [names[index % 4], names[(index + 1) % 4]])
        for index in range(group_count)
    ]
    session = run_session(names, groups=groups, seed=seed, analysis="online")
    for group_id, members in groups:
        session.multicast(members[0], group_id, f"{group_id}-a")
        session.multicast(members[1], group_id, f"{group_id}-b")
        session.run(1.0)
    session.run(100)
    result = assert_session_correct(session)
    return result.metrics["latency"]["mean"]


def run_sweep():
    newtop_rows = [
        (count, run_newtop_overlap(count, seed=50 + count)) for count in GROUPS_PER_PROCESS
    ]
    # The propagation-graph alternative for the same cyclic overlap.
    graph = PropagationGraphNetwork(
        {"g0": ["P1", "P2"], "g1": ["P2", "P3"], "g2": ["P3", "P4"], "g3": ["P4", "P1"]},
        seed=3,
    )
    for group, members in graph.groups.items():
        graph.multicast(members[0], group, f"{group}-x")
    graph.run(100)
    max_depth = max(graph.depth_of(node) for node in ("P1", "P2", "P3", "P4"))
    return newtop_rows, graph.total_hops, max_depth


def test_multigroup_scaling(benchmark):
    newtop_rows, graph_hops, graph_depth = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    table = ["groups per process (ring overlap) | mean delivery latency"]
    for count, latency in newtop_rows:
        table.append(f"{count:34d} | {fmt(latency):>21}")
    table.append(
        f"propagation-graph alternative (cyclic overlap of 4 groups): "
        f"{graph_hops} forwarding hops, tree depth {graph_depth} -- Newtop sequencers "
        "need no such shared structure"
    )
    table.append(
        "paper: receive vectors + one clock cope with arbitrarily complex group "
        "structures; latency grows gracefully with overlap because D_i is the "
        "minimum over more groups -> reproduced"
    )
    RESULTS.add_table("E13 multi-group / overlapping-group scaling", table)

    latencies = [latency for _, latency in newtop_rows]
    assert all(latency > 0 for latency in latencies)
    assert graph_hops >= 4
