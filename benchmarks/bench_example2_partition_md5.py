"""E5 -- Example 2: MD5' under a permanent partition.

Paper claim: when a permanent partition makes a causal predecessor m1
irretrievable, the receiver excludes m1's sender from its view of that
group *before* delivering any causally dependent message, so the
"network failure is perceived to have happened before the multicast".
Measured: exclusion-before-delivery ordering and the latency from the lost
multicast to delivery of the dependent message.
"""

from common import RESULTS, assert_session_correct, fmt, run_session

from repro.net.trace import VIEW_INSTALL


def run_example2():
    session = run_session(
        ["Pi", "Pj", "Pk", "Pq"],
        groups=[
            ("g1", ["Pi", "Pj", "Pk"]),
            ("g2", ["Pk", "Pq"]),
            ("g3", ["Pq", "Pi", "Pj"]),
        ],
        seed=11,
        view_agreement_sets={"g1": ["Pi", "Pj"], "g2": ["Pq"], "g3": ["Pi", "Pj", "Pq"]},
    )
    session.run(5)
    # Permanent partition: Pk can no longer reach Pi or Pj (but still Pq).
    session.network.add_filter(
        lambda src, dst, payload: not (src == "Pk" and dst in ("Pi", "Pj"))
    )
    state = {"m2": False, "m4": False}

    def pk_reacts(group, sender, payload, msg_id):
        if payload == "m1" and not state["m2"]:
            state["m2"] = True
            session.multicast("Pk", "g2", "m2")

    def pq_reacts(group, sender, payload, msg_id):
        if payload == "m2" and not state["m4"]:
            state["m4"] = True
            session.multicast("Pq", "g3", "m4")

    session["Pk"].add_delivery_callback(pk_reacts)
    session["Pq"].add_delivery_callback(pq_reacts)
    m1_time = session.sim.now
    session.multicast("Pk", "g1", "m1")
    session.run(250)
    return session, m1_time


def test_example2_md5_prime_under_partition(benchmark):
    cluster, m1_time = benchmark.pedantic(run_example2, rounds=1, iterations=1)
    trace = cluster.trace()
    m4_delivery_time = min(
        (e.time for e in trace.events(kind="deliver", process="Pi", group="g3")),
        default=None,
    )
    exclusion_time = None
    for event in trace.events(kind=VIEW_INSTALL, process="Pi", group="g1"):
        if "Pk" not in event.detail("members", ()):
            exclusion_time = event.time
            break
    assert_session_correct(cluster)
    RESULTS.add_table(
        "E5 (Example 2) MD5' under a permanent partition",
        [
            f"m4 delivered at Pi: {m4_delivery_time is not None}",
            f"Pk excluded from Pi's g1 view at t={fmt(exclusion_time or float('nan'))}, "
            f"m4 delivered at t={fmt(m4_delivery_time or float('nan'))}",
            f"exclusion happened before the dependent delivery: "
            f"{exclusion_time is not None and m4_delivery_time is not None and exclusion_time <= m4_delivery_time}",
            f"latency from the lost m1 to m4's delivery at Pi: "
            f"{fmt((m4_delivery_time - m1_time) if m4_delivery_time else float('nan'))} time units "
            "(dominated by the suspicion timeout, as the paper's discussion implies)",
        ],
    )
    assert m4_delivery_time is not None and exclusion_time is not None
    assert exclusion_time <= m4_delivery_time
    assert "m1" not in cluster["Pi"].delivered_payloads("g1")
