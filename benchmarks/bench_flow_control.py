"""E15 -- §7 / [11]: flow control keeps receiver buffers bounded.

Paper claim: "a flow control mechanism ... ensures that a sender process
does not cause buffers to overflow at any of the functioning destination
processes".  Measured: peak retention-buffer occupancy at a receiver and
peak pending-delivery queue length, with and without the stability-keyed
sender window, for a bursty sender.
"""

from common import RESULTS, EventProbe, assert_session_correct, fmt, run_session

from repro.net.trace import BLOCKED_SEND


def run_case(window, seed: int):
    overrides = {"flow_control_window": window} if window else None
    probe = EventProbe(BLOCKED_SEND)
    session = run_session(
        ["P1", "P2", "P3"],
        groups=[("g", None)],
        seed=seed,
        mode_overrides=overrides,
        analysis="online",
        sinks=[probe],
    )
    # A burst of back-to-back sends with no gaps: the worst case for
    # receiver-side buffering.
    for index in range(20):
        session.multicast("P1", "g", f"burst-{index}")
    session.run(200)
    assert_session_correct(session)
    endpoint = session["P2"].endpoint("g")
    blocked = len(probe.trace().events(kind=BLOCKED_SEND, process="P1", group="g"))
    return {
        "peak_retained": endpoint.stability.buffer.peak_size,
        "delivered": len(session["P2"].delivered_payloads("g")),
        "deferred_sends": blocked,
    }


def run_both():
    return {
        "no flow control": run_case(None, seed=71),
        "window = 3": run_case(3, seed=72),
    }


def test_flow_control_bounds_buffers(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = ["configuration    | peak retained at receiver | sender deferrals | delivered"]
    for name, row in results.items():
        table.append(
            f"{name:16s} | {row['peak_retained']:25d} | {row['deferred_sends']:16d} | {row['delivered']:9d}"
        )
    table.append(
        "paper: the sender window keyed on stability prevents receiver buffer "
        "overflow while still delivering the full workload -> reproduced"
    )
    RESULTS.add_table("E15 flow control vs receiver buffering", table)

    assert results["no flow control"]["delivered"] == 20
    assert results["window = 3"]["delivered"] == 20
    assert results["window = 3"]["deferred_sends"] > 0
    assert (
        results["window = 3"]["peak_retained"]
        <= results["no flow control"]["peak_retained"]
    )
