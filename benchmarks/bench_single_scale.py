"""E23 -- one simulation at 10k-process scale: the hot-path refactor payoff.

E22's 5,000-process result is 20 independent shards; this benchmark is the
other half of the scale story -- **one single, non-sharded simulation**: a
churn + dynamic-formation scenario at **10,000 processes across 500
overlapping groups** (full scale), verified *online* while it runs (zero
stored trace events).  What makes it feasible is the hot-path refactor the
simulation runtime carries:

* **timer wheel** -- the thousands of periodic suspector probes and
  time-silence deadlines per simulated second go through a slotted timer
  wheel with O(1) cancellation instead of churning the global event heap;
* **slab-backed state** -- receive/stability vectors and suspector tables
  are flat arrays over dense member slots with a cached minimum, not
  per-member dicts rescanned on every receipt;
* **delivery batching** -- all of a process's same-instant arrivals drain
  through one transport batch, paying delivery attempts and deferred-send
  flushes once per instant instead of once per message.

All three are behaviour-preserving (equivalence tests pin seed-identical
results against the reference heap/dict/per-message paths); this benchmark
tracks the *throughput* those layers buy, as ``events_per_second`` in
``BENCH_single_scale.json``.  CI runs the smoke scale (1,000 processes /
50 groups) and fails when the measured rate drops more than 30% below the
committed baseline (``benchmarks/baselines/single_scale.json``), so a
hot-path regression is visible in the PR that introduces it.

Run as a script to record the JSON artifact for CI::

    python benchmarks/bench_single_scale.py --scale smoke \
        --json BENCH_single_scale.json
"""

import json
import os
import time

from common import RESULTS, benchmark_arg_parser, latency_block, write_bench_json

from repro.scenarios import churn_scenario, run_scenario

#: The headline configuration: one simulation, 10,000 processes in 500
#: overlapping groups, under crash/leave churn plus dynamic formations.
FULL_SCALE = dict(
    processes=10_000,
    groups=500,
    group_size=12,
    crashes=8,
    leaves=8,
    formations=4,
    messages_per_sender=1,
    seed=23,
)

#: CI configuration: same shape at 1,000 processes / 50 groups (~tens of
#: seconds), the scale the committed events/sec baseline is pinned at.
SMOKE_SCALE = dict(
    processes=1_000,
    groups=50,
    group_size=12,
    crashes=3,
    leaves=3,
    formations=2,
    messages_per_sender=1,
    seed=23,
)

#: Seconds-sized configuration for the pytest harness.
TINY_SCALE = dict(
    processes=200,
    groups=15,
    group_size=10,
    crashes=2,
    leaves=2,
    formations=1,
    messages_per_sender=1,
    seed=23,
)

SCALES = {"tiny": TINY_SCALE, "smoke": SMOKE_SCALE, "full": FULL_SCALE}

#: Committed events/sec baselines per scale; CI fails when a run lands
#: more than ``BASELINE_TOLERANCE`` below its scale's entry.
BASELINE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baselines", "single_scale.json"
)
BASELINE_TOLERANCE = 0.30


def single_scale_config(scale):
    """The one scenario config: churn + formations at the given scale."""
    return churn_scenario(
        n_processes=scale["processes"],
        n_groups=scale["groups"],
        group_size=scale["group_size"],
        crashes=scale["crashes"],
        leaves=scale["leaves"],
        formations=scale["formations"],
        messages_per_sender=scale["messages_per_sender"],
        seed=scale["seed"],
    )


def run_single_scale(scale=None, observe=None):
    """Run the single simulation online-verified; returns the summary.

    ``observe`` attaches a :mod:`repro.obs` observation ("metrics" or
    "full") and adds its snapshot to the summary as ``"obs"`` -- the run's
    numbers are identical either way (pinned by the equivalence tests).
    """
    scale = SMOKE_SCALE if scale is None else scale
    config = single_scale_config(scale)
    start = time.time()
    result = run_scenario(config, analysis="online", observe=observe)
    wall = time.time() - start
    assert result.passed, (result.name, result.checks.violations[:3])
    assert result.trace_events_stored == 0, "online mode materialized a trace"
    payload = {
        "scenario": result.name,
        "processes": scale["processes"],
        "groups": scale["groups"],
        "groups_formed": scale["formations"],
        "group_size": scale["group_size"],
        "passed": result.passed,
        "run_seconds": round(wall, 3),
        "sim_time": result.sim_time,
        "events_processed": result.events_processed,
        "events_per_second": round(result.events_processed / wall, 1) if wall else None,
        "deliveries": result.deliveries,
        "messages_sent": result.messages_sent,
        "trace_events": result.trace_events,
        "trace_events_stored": result.trace_events_stored,
        "peak_pending_events": result.peak_pending_events,
        "peak_live_pending_events": result.peak_live_pending_events,
        "compactions": result.compactions,
        "delivery_latency": latency_block(result),
    }
    if result.obs is not None:
        payload["obs"] = result.obs
    return payload


def load_baselines(path=BASELINE_PATH):
    """The committed per-scale baselines ({} when none are committed)."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_baseline(scale_name, events_per_second, tolerance=BASELINE_TOLERANCE):
    """Assert the measured rate is within ``tolerance`` of the committed
    baseline for ``scale_name``; returns the enforced floor (or ``None``
    when no baseline is committed for that scale)."""
    baseline = load_baselines().get(scale_name)
    if baseline is None:
        return None
    floor = baseline["events_per_second"] * (1.0 - tolerance)
    assert events_per_second >= floor, (
        f"single-simulation throughput regressed: {events_per_second:.0f} "
        f"events/sec is more than {tolerance:.0%} below the committed "
        f"{scale_name} baseline of {baseline['events_per_second']:.0f} "
        f"(floor {floor:.0f}) -- if the slowdown is intended, update "
        f"{BASELINE_PATH}"
    )
    return floor


def test_single_scale(benchmark):
    payload = benchmark.pedantic(
        run_single_scale, kwargs=dict(scale=TINY_SCALE), rounds=1, iterations=1
    )
    latency = payload["delivery_latency"]
    table = [
        f"one simulation: {payload['processes']} processes / "
        f"{payload['groups']} groups (+{payload['groups_formed']} formed), "
        f"verified online ({payload['trace_events']} events streamed, "
        f"{payload['trace_events_stored']} stored)",
        f"throughput: {payload['events_processed']} simulator events in "
        f"{payload['run_seconds']}s -> {payload['events_per_second']} events/sec",
        f"delivery latency: mean {latency['mean']:.2f}, p99 {latency['p99']:.2f} "
        f"over {latency['count']} samples (exact reservoir)",
        "timer wheel + slab state + delivery batching, seed-identical to the "
        "reference heap/dict/per-message paths",
    ]
    RESULTS.add_table("E23 single-simulation scale (hot-path refactor)", table)
    assert payload["passed"]
    assert payload["trace_events_stored"] == 0


def record_results(scale_name, json_path, parallel=None, observe=None):
    """Run the named scale, enforce the baseline, write the JSON (CI hook)."""
    scale = SCALES[scale_name]
    start = time.time()
    payload = run_single_scale(scale, observe=observe)
    floor = check_baseline(scale_name, payload["events_per_second"])
    payload["baseline_floor_events_per_second"] = floor
    return write_bench_json(
        json_path,
        "single_scale",
        scale_name,
        payload,
        config=dict(scale),
        seed=scale["seed"],
        wall_seconds=time.time() - start,
    )


def main():
    parser = benchmark_arg_parser(__doc__, "BENCH_single_scale.json", SCALES)
    args = parser.parse_args()
    payload = record_results(
        args.scale, args.json, parallel=args.parallel, observe=args.observe
    )
    floor = payload["baseline_floor_events_per_second"]
    print(
        f"{payload['benchmark']} [{payload['scale']}]: "
        f"{payload['processes']} processes / {payload['groups']} groups in one "
        f"simulation, {payload['events_processed']} events in "
        f"{payload['run_seconds']}s -> {payload['events_per_second']} events/sec "
        f"(baseline floor {floor if floor is not None else 'n/a'}), verified "
        f"online with {payload['trace_events_stored']} stored events -> {args.json}"
    )


if __name__ == "__main__":
    main()
