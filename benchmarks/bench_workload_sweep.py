"""E21 -- open-loop load and availability sweeps across every stack.

The paper's comparative argument (§6-§7) is about behaviour *under load*:
Newtop pays constant protocol overhead per multicast and keeps operating
through membership changes, so as offered load rises -- or faults land
mid-traffic -- its goodput curve keeps climbing where the baselines pay
quadratic acknowledgement costs or stall outright.  Single-point runs
(E17, E20) cannot show that; this benchmark sweeps.

Built on the two PR-4 subsystems: :mod:`repro.workloads` drives open-loop
traffic (Poisson and bursty arrival processes, per-group clients that
account offered vs admitted vs delivered load) and
:mod:`repro.experiments` grids the cells.  Three sweeps, all verified
online with zero stored trace events:

* **Load curves** -- every comparison stack x {poisson, bursty} x three
  or more offered-load points: offered load vs goodput and delivery
  latency percentiles.
* **Crash cells** -- the same open-loop traffic with one non-leader group
  member crash-stopping mid-window.  The all-ack baseline can never
  complete an acknowledgement round again and its recovery-phase delivery
  count flatlines (*stall detection*), while Newtop's membership service
  excludes the victim and keeps delivering.
* **Partition availability** -- a majority/minority split during the
  middle third: the primary-partition policy refuses the minority's sends
  (availability < 1) where Newtop admits on both sides, the E16 contrast
  under open-loop load.

``newtop-asymmetric`` runs in every load curve but sits out the fault
cells: open-loop traffic racing an asymmetric view change exposes a
pre-existing virtual-synchrony gap (the ``lnmn`` cut is in sender-clock
units, which does not translate to the sequencer numbering that gates
asymmetric delivery) -- recorded as a ROADMAP open item, not papered over
with weakened checks.

Run as a script to record the JSON artifact for CI::

    python benchmarks/bench_workload_sweep.py --scale smoke \
        --json BENCH_workload_sweep.json
"""

import argparse
import time

from common import RESULTS, fmt, write_bench_json

from repro.api import COMPARISON_STACKS
from repro.experiments import SweepSpec, run_sweep

#: Stacks whose guarantees hold through the fault cells (see module
#: docstring for why newtop-asymmetric is excluded there).
FAULT_STACKS = tuple(
    stack for stack in COMPARISON_STACKS if stack != "newtop-asymmetric"
)

#: Stacks in the partition-availability sweep: the fault-capable
#: comparison stacks plus the primary-partition policy they contrast with.
AVAILABILITY_STACKS = FAULT_STACKS + ("primary_partition",)

SMOKE_SCALE = dict(
    processes=8,
    groups=2,
    group_size=5,
    loads=(0.5, 1.0, 2.0),
    fault_load=1.0,
    duration=24.0,
    drain=30.0,
    seed=7,
)

FULL_SCALE = dict(
    processes=24,
    groups=4,
    group_size=8,
    loads=(0.5, 1.0, 2.0, 4.0),
    fault_load=2.0,
    duration=30.0,
    drain=40.0,
    seed=7,
)

SCALES = {"smoke": SMOKE_SCALE, "full": FULL_SCALE}


def _spec(scale, **overrides):
    base = dict(
        processes=scale["processes"],
        groups=scale["groups"],
        group_size=scale["group_size"],
        duration=scale["duration"],
        drain=scale["drain"],
        seed=scale["seed"],
    )
    base.update(overrides)
    return SweepSpec(**base)


def run_load_curves(scale=None, progress=None):
    """Offered-load vs goodput/latency curves for all six stacks."""
    scale = SMOKE_SCALE if scale is None else scale
    spec = _spec(
        scale,
        stacks=COMPARISON_STACKS,
        profiles=("poisson", "bursty"),
        loads=tuple(scale["loads"]),
        faults=("none",),
    )
    return run_sweep(spec, progress=progress)


def run_crash_cells(scale=None, progress=None):
    """Open-loop traffic with a mid-window crash, per stack."""
    scale = SMOKE_SCALE if scale is None else scale
    spec = _spec(
        scale,
        stacks=FAULT_STACKS,
        profiles=("poisson",),
        loads=(scale["fault_load"],),
        faults=("crash",),
    )
    return run_sweep(spec, progress=progress)


def run_availability_cells(scale=None, progress=None):
    """Majority/minority partition during the middle third, per stack."""
    scale = SMOKE_SCALE if scale is None else scale
    spec = _spec(
        scale,
        stacks=AVAILABILITY_STACKS,
        profiles=("poisson",),
        loads=(scale["fault_load"],),
        faults=("partition",),
    )
    return run_sweep(spec, progress=progress)


def run_all(scale=None, progress=None):
    return {
        "curves": run_load_curves(scale, progress),
        "crash": run_crash_cells(scale, progress),
        "availability": run_availability_cells(scale, progress),
    }


def _assert_reports(reports, scale):
    """The E21 acceptance shape, asserted identically by test and CI."""
    curves, crash, availability = (
        reports["curves"], reports["crash"], reports["availability"],
    )
    # Every cell verified online against the stack's own checks, with no
    # materialized trace, and consistent offered >= admitted >= delivered.
    for report in reports.values():
        assert report.passed, [c for c in report.cells if not c["passed"]]
        for cell in report.cells:
            assert cell["trace_events_stored"] == 0
            assert cell["offered"] >= cell["admitted"] >= cell["delivered_unique"]
    # Full curves: every stack x profile has one point per load.
    table = curves.curves()
    for stack in COMPARISON_STACKS:
        for profile in ("poisson", "bursty"):
            points = table[stack][profile]
            assert len(points) == len(scale["loads"]), (stack, profile)
    # The headline contrast: the all-ack baseline stalls after the crash
    # while Newtop keeps delivering through the same window.
    lamport = crash.cell("lamport_ack", "poisson", scale["fault_load"], "crash")
    newtop = crash.cell("newtop-symmetric", "poisson", scale["fault_load"], "crash")
    assert lamport["stalled_groups"] > 0, lamport
    assert newtop["stalled_groups"] == 0, newtop
    assert newtop["delivered_unique"] > lamport["delivered_unique"]
    # E16 under load: the primary-partition policy refuses the minority's
    # sends; Newtop admits on both sides of the split.
    primary = availability.cell(
        "primary_partition", "poisson", scale["fault_load"], "partition"
    )
    newtop_part = availability.cell(
        "newtop-symmetric", "poisson", scale["fault_load"], "partition"
    )
    assert primary["availability"] < 1.0, primary
    assert newtop_part["availability"] > primary["availability"]


def test_workload_sweep(benchmark):
    reports = benchmark.pedantic(
        run_all, kwargs=dict(scale=SMOKE_SCALE), rounds=1, iterations=1
    )
    _assert_reports(reports, SMOKE_SCALE)
    curves = reports["curves"].curves()
    table = [
        f"{SMOKE_SCALE['processes']} processes / {SMOKE_SCALE['groups']} overlapping "
        f"groups, open-loop poisson+bursty, loads {list(SMOKE_SCALE['loads'])}",
        "stack             | profile | load | goodput | admitted | p50 lat | p99 lat",
    ]
    for stack in COMPARISON_STACKS:
        for profile in ("poisson", "bursty"):
            for point in curves[stack][profile]:
                table.append(
                    f"{stack:17s} | {profile:7s} | {point['offered_load']:4.1f} | "
                    f"{point['goodput']:7.2f} | {point['admitted']:8d} | "
                    f"{fmt(point['latency_p50']):>7} | {fmt(point['latency_p99']):>7}"
                )
    lamport = reports["crash"].cell(
        "lamport_ack", "poisson", SMOKE_SCALE["fault_load"], "crash"
    )
    newtop = reports["crash"].cell(
        "newtop-symmetric", "poisson", SMOKE_SCALE["fault_load"], "crash"
    )
    primary = reports["availability"].cell(
        "primary_partition", "poisson", SMOKE_SCALE["fault_load"], "partition"
    )
    table.append(
        f"crash cell: lamport_ack stalls ({lamport['stalled_groups']} group(s), "
        f"{lamport['delivered_unique']} delivered) vs newtop-symmetric "
        f"({newtop['stalled_groups']} stalled, {newtop['delivered_unique']} delivered)"
    )
    table.append(
        f"partition cell: primary_partition availability "
        f"{primary['availability']:.0%} vs newtop 100% -- E16 under open-loop load"
    )
    table.append(
        "paper: Newtop's decentralized ordering keeps goodput tracking offered "
        "load through faults where all-ack stalls and primary-partition blocks "
        "the minority -> reproduced as curves, not points"
    )
    RESULTS.add_table("E21 open-loop load & availability sweep (six stacks)", table)


def record_results(scale_name, json_path):
    """Run all three sweeps and write the shared-schema JSON (CI hook)."""
    scale = SCALES[scale_name]
    start = time.time()
    done = []

    def progress(row):
        done.append(row)
        print(
            f"  [{len(done):3d}] {row['stack']:18s} {row['profile']:8s} "
            f"load={row['offered_load']:<4} {row['fault']:9s} "
            f"passed={row['passed']} goodput={row['goodput']}"
        )

    reports = run_all(scale, progress)
    _assert_reports(reports, scale)
    return write_bench_json(
        json_path,
        "workload_sweep",
        scale_name,
        {
            "analysis": "online",
            "curves": reports["curves"].as_dict(),
            "crash": reports["crash"].as_dict(),
            "availability": reports["availability"].as_dict(),
        },
        config={key: list(value) if isinstance(value, tuple) else value
                for key, value in scale.items()},
        seed=scale["seed"],
        wall_seconds=time.time() - start,
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    parser.add_argument("--json", default="BENCH_workload_sweep.json")
    args = parser.parse_args()
    payload = record_results(args.scale, args.json)
    cells = (
        len(payload["curves"]["cells"])
        + len(payload["crash"]["cells"])
        + len(payload["availability"]["cells"])
    )
    print(
        f"{payload['benchmark']} [{payload['scale']}] {cells} cells "
        f"wall={payload['wall_seconds']}s -> {args.json}"
    )


if __name__ == "__main__":
    main()
