"""E21 -- open-loop load and availability sweeps across every stack.

The paper's comparative argument (§6-§7) is about behaviour *under load*:
Newtop pays constant protocol overhead per multicast and keeps operating
through membership changes, so as offered load rises -- or faults land
mid-traffic -- its goodput curve keeps climbing where the baselines pay
quadratic acknowledgement costs or stall outright.  Single-point runs
(E17, E20) cannot show that; this benchmark sweeps.

Built on the two PR-4 subsystems: :mod:`repro.workloads` drives open-loop
traffic (Poisson and bursty arrival processes, per-group clients that
account offered vs admitted vs delivered load) and
:mod:`repro.experiments` grids the cells.  Three sweeps, all verified
online with zero stored trace events:

* **Load curves** -- every comparison stack x {poisson, bursty} x three
  or more offered-load points: offered load vs goodput and delivery
  latency percentiles.
* **Crash cells** -- the same open-loop traffic with one non-leader group
  member crash-stopping mid-window.  The all-ack baseline can never
  complete an acknowledgement round again and its recovery-phase delivery
  count flatlines (*stall detection*), while Newtop's membership service
  excludes the victim and keeps delivering.
* **Partition availability** -- a majority/minority split during the
  middle third: the primary-partition policy refuses the minority's sends
  (availability < 1) where Newtop admits on both sides, the E16 contrast
  under open-loop load.

``newtop-asymmetric`` runs in every cell, fault cells included: the
sequenced view-cut marker translates a detection into the sequencer
numbering that gates asymmetric delivery, closing the virtual-synchrony
gap that used to force its exclusion (the old ``lnmn`` cut was in
sender-clock units and marked no position in the sequencer's stream).

One extra fault-free cell runs Newtop under the heavy-tailed
``lognormal`` latency model (``SweepSpec.latency_model``) -- the paper's
"delays are unbounded and unpredictable" regime -- so the sweep also
covers a non-uniform network.

Run as a script to record the JSON artifact for CI (``--parallel N``
shards the cells across a :mod:`repro.parallel` worker pool)::

    python benchmarks/bench_workload_sweep.py --scale smoke \
        --json BENCH_workload_sweep.json --parallel 4
"""

import time

from common import (
    RESULTS,
    benchmark_arg_parser,
    fmt,
    unavailability_windows,
    write_bench_json,
)

from repro.api import COMPARISON_STACKS
from repro.experiments import SweepSpec, run_cell, run_sweep

#: Every comparison stack holds its guarantees through the fault cells
#: (newtop-asymmetric included since the view-cut marker fix).
FAULT_STACKS = COMPARISON_STACKS

#: Stacks in the partition-availability sweep: the fault-capable
#: comparison stacks plus the primary-partition policy they contrast with.
AVAILABILITY_STACKS = FAULT_STACKS + ("primary_partition",)

SMOKE_SCALE = dict(
    processes=8,
    groups=2,
    group_size=5,
    loads=(0.5, 1.0, 2.0),
    fault_load=1.0,
    duration=24.0,
    drain=30.0,
    seed=7,
)

FULL_SCALE = dict(
    processes=24,
    groups=4,
    group_size=8,
    loads=(0.5, 1.0, 2.0, 4.0),
    fault_load=2.0,
    duration=30.0,
    drain=40.0,
    seed=7,
)

SCALES = {"smoke": SMOKE_SCALE, "full": FULL_SCALE}


def _spec(scale, **overrides):
    base = dict(
        processes=scale["processes"],
        groups=scale["groups"],
        group_size=scale["group_size"],
        duration=scale["duration"],
        drain=scale["drain"],
        seed=scale["seed"],
    )
    base.update(overrides)
    return SweepSpec(**base)


def run_load_curves(scale=None, progress=None, parallel=None):
    """Offered-load vs goodput/latency curves for all six stacks."""
    scale = SMOKE_SCALE if scale is None else scale
    spec = _spec(
        scale,
        stacks=COMPARISON_STACKS,
        profiles=("poisson", "bursty"),
        loads=tuple(scale["loads"]),
        faults=("none",),
    )
    return run_sweep(spec, progress=progress, parallel=parallel)


def run_crash_cells(scale=None, progress=None, parallel=None):
    """Open-loop traffic with a mid-window crash, per stack."""
    scale = SMOKE_SCALE if scale is None else scale
    spec = _spec(
        scale,
        stacks=FAULT_STACKS,
        profiles=("poisson",),
        loads=(scale["fault_load"],),
        faults=("crash",),
    )
    return run_sweep(spec, progress=progress, parallel=parallel)


def run_availability_cells(scale=None, progress=None, parallel=None):
    """Majority/minority partition during the middle third, per stack."""
    scale = SMOKE_SCALE if scale is None else scale
    spec = _spec(
        scale,
        stacks=AVAILABILITY_STACKS,
        profiles=("poisson",),
        loads=(scale["fault_load"],),
        faults=("partition",),
    )
    return run_sweep(spec, progress=progress, parallel=parallel)


def run_latency_model_cells(scale=None, progress=None, parallel=None):
    """Newtop under the heavy-tailed lognormal latency model.

    One fault-free cell per Newtop ordering mode at the fault load: the
    ``SweepSpec.latency_model`` knob routed through
    :func:`repro.net.latency.get_latency_model` -- the network the paper
    actually postulates (unpredictable delays), as a sweep dimension.
    """
    scale = SMOKE_SCALE if scale is None else scale
    spec = _spec(
        scale,
        stacks=("newtop-symmetric", "newtop-asymmetric"),
        profiles=("poisson",),
        loads=(scale["fault_load"],),
        faults=("none",),
        latency_model="lognormal",
        # Skewed WAN-like delays, with the suspicion window widened so the
        # tail stays comfortably below it: a delay beyond the timeout
        # stalls a FIFO channel long enough to *correctly* trigger
        # suspicion, which is the fault cells' business, not this one's.
        latency_options={"median": 0.8, "sigma": 0.35},
        protocol={"suspicion_timeout": 8.0},
    )
    return run_sweep(spec, progress=progress, parallel=parallel)


def run_all(scale=None, progress=None, parallel=None):
    return {
        "curves": run_load_curves(scale, progress, parallel),
        "crash": run_crash_cells(scale, progress, parallel),
        "availability": run_availability_cells(scale, progress, parallel),
        "latency_models": run_latency_model_cells(scale, progress, parallel),
    }


def cell_outage_windows(cell):
    """Per-group unavailability windows for one sweep cell.

    Builds a ``(start, end, served, offered)`` series per group from the
    cell's per-group phase deltas and the phase boundaries, and runs the
    shared :func:`common.unavailability_windows` extractor over it -- the
    same window definition benchmark E26 applies to its KV shards.
    """
    bounds = cell["phase_bounds"]
    windows = {}
    for group, phases in cell["group_phases"].items():
        series = [
            (bounds[name][0], bounds[name][1],
             phases[name]["delivered_unique"], phases[name]["offered"])
            for name in ("pre", "fault", "recovery", "drain")
        ]
        found = unavailability_windows(series)
        if found:
            windows[group] = found
    return windows


def _assert_reports(reports, scale):
    """The E21 acceptance shape, asserted identically by test and CI."""
    curves, crash, availability = (
        reports["curves"], reports["crash"], reports["availability"],
    )
    assert not any("execution_status" in cell for report in reports.values()
                   for cell in report.cells), "a sweep cell crashed or timed out"
    # Every cell verified online against the stack's own checks, with no
    # materialized trace, and consistent offered >= admitted >= delivered.
    for report in reports.values():
        assert report.passed, [c for c in report.cells if not c["passed"]]
        for cell in report.cells:
            assert cell["trace_events_stored"] == 0
            assert cell["offered"] >= cell["admitted"] >= cell["delivered_unique"]
    # Full curves: every stack x profile has one point per load.
    table = curves.curves()
    for stack in COMPARISON_STACKS:
        for profile in ("poisson", "bursty"):
            points = table[stack][profile]
            assert len(points) == len(scale["loads"]), (stack, profile)
    # The headline contrast: the all-ack baseline stalls after the crash
    # while Newtop keeps delivering through the same window.
    lamport = crash.cell("lamport_ack", "poisson", scale["fault_load"], "crash")
    newtop = crash.cell("newtop-symmetric", "poisson", scale["fault_load"], "crash")
    assert lamport["stalled_groups"] > 0, lamport
    assert newtop["stalled_groups"] == 0, newtop
    assert newtop["delivered_unique"] > lamport["delivered_unique"]
    # The same contrast as unavailability *windows*: the stalled baseline
    # group goes dark for a measurable interval; no Newtop group does.
    assert cell_outage_windows(lamport), lamport["group_phases"]
    assert not cell_outage_windows(newtop), cell_outage_windows(newtop)
    # The view-cut marker fix: asymmetric Newtop now holds virtual
    # synchrony through the fault cells it used to be excluded from.
    asym = crash.cell("newtop-asymmetric", "poisson", scale["fault_load"], "crash")
    assert asym["passed"] and asym["stalled_groups"] == 0, asym
    # The latency-model cells ran on the heavy-tailed network and held.
    for cell in reports["latency_models"].cells:
        assert cell["passed"], cell
    assert reports["latency_models"].spec["latency_model"] == "lognormal"
    # E16 under load: the primary-partition policy refuses the minority's
    # sends; Newtop admits on both sides of the split.
    primary = availability.cell(
        "primary_partition", "poisson", scale["fault_load"], "partition"
    )
    newtop_part = availability.cell(
        "newtop-symmetric", "poisson", scale["fault_load"], "partition"
    )
    assert primary["availability"] < 1.0, primary
    assert newtop_part["availability"] > primary["availability"]


def test_workload_sweep(benchmark):
    reports = benchmark.pedantic(
        run_all, kwargs=dict(scale=SMOKE_SCALE), rounds=1, iterations=1
    )
    _assert_reports(reports, SMOKE_SCALE)
    curves = reports["curves"].curves()
    table = [
        f"{SMOKE_SCALE['processes']} processes / {SMOKE_SCALE['groups']} overlapping "
        f"groups, open-loop poisson+bursty, loads {list(SMOKE_SCALE['loads'])}",
        "stack             | profile | load | goodput | admitted | p50 lat | p99 lat",
    ]
    for stack in COMPARISON_STACKS:
        for profile in ("poisson", "bursty"):
            for point in curves[stack][profile]:
                table.append(
                    f"{stack:17s} | {profile:7s} | {point['offered_load']:4.1f} | "
                    f"{point['goodput']:7.2f} | {point['admitted']:8d} | "
                    f"{fmt(point['latency_p50']):>7} | {fmt(point['latency_p99']):>7}"
                )
    lamport = reports["crash"].cell(
        "lamport_ack", "poisson", SMOKE_SCALE["fault_load"], "crash"
    )
    newtop = reports["crash"].cell(
        "newtop-symmetric", "poisson", SMOKE_SCALE["fault_load"], "crash"
    )
    primary = reports["availability"].cell(
        "primary_partition", "poisson", SMOKE_SCALE["fault_load"], "partition"
    )
    table.append(
        f"crash cell: lamport_ack stalls ({lamport['stalled_groups']} group(s), "
        f"{lamport['delivered_unique']} delivered) vs newtop-symmetric "
        f"({newtop['stalled_groups']} stalled, {newtop['delivered_unique']} delivered)"
    )
    outages = cell_outage_windows(lamport)
    longest = max(
        (window["duration"] for found in outages.values() for window in found),
        default=0.0,
    )
    table.append(
        f"outage windows (shared extractor): lamport_ack {len(outages)} dark "
        f"group(s), longest {longest:.1f}s; newtop-symmetric none"
    )
    table.append(
        f"partition cell: primary_partition availability "
        f"{primary['availability']:.0%} vs newtop 100% -- E16 under open-loop load"
    )
    asym = reports["crash"].cell(
        "newtop-asymmetric", "poisson", SMOKE_SCALE["fault_load"], "crash"
    )
    table.append(
        f"newtop-asymmetric crash cell: PASS (view-cut marker), "
        f"{asym['delivered_unique']} delivered, {asym['stalled_groups']} stalled"
    )
    lognormal = reports["latency_models"].cell(
        "newtop-symmetric", "poisson", SMOKE_SCALE["fault_load"], "none"
    )
    table.append(
        f"lognormal latency model: goodput {lognormal['goodput']:.2f}, "
        f"p99 {fmt(lognormal['latency']['p99'])} -- unpredictable-delay regime"
    )
    table.append(
        "paper: Newtop's decentralized ordering keeps goodput tracking offered "
        "load through faults where all-ack stalls and primary-partition blocks "
        "the minority -> reproduced as curves, not points"
    )
    RESULTS.add_table("E21 open-loop load & availability sweep (six stacks)", table)


def observed_cell(scale, observe):
    """One representative fault-free Newtop cell re-run under observation.

    The sweeps themselves stay unobserved (hundreds of cells would bloat
    the artifact); one poisson cell at the fault load carries the obs
    block -- sampler time series, messages-per-delivery curve and (with
    ``observe="full"``) the profiler/span breakdowns -- for the E21 JSON.
    Re-running the cell is sound because observation never changes a
    cell's numbers (pinned by the hot-path equivalence tests).
    """
    spec = _spec(
        scale,
        stacks=("newtop-symmetric",),
        profiles=("poisson",),
        loads=(scale["fault_load"],),
        faults=("none",),
    )
    row = run_cell(
        spec, "newtop-symmetric", "poisson", scale["fault_load"], observe=observe
    )
    return {
        "stack": row["stack"],
        "profile": row["profile"],
        "offered_load": row["offered_load"],
        "obs": row.get("obs"),
    }


def record_results(scale_name, json_path, parallel=None, observe=None):
    """Run all four sweeps and write the shared-schema JSON (CI hook)."""
    scale = SCALES[scale_name]
    start = time.time()
    done = []

    def progress(row):
        done.append(row)
        print(
            f"  [{len(done):3d}] {row['stack']:18s} {row['profile']:8s} "
            f"load={row['offered_load']:<4} {row['fault']:9s} "
            f"passed={row['passed']} goodput={row.get('goodput')}"
        )

    reports = run_all(scale, progress, parallel)
    _assert_reports(reports, scale)
    payload = {
        "analysis": "online",
        "parallel": parallel or 1,
        "curves": reports["curves"].as_dict(),
        "crash": reports["crash"].as_dict(),
        "availability": reports["availability"].as_dict(),
        "latency_models": reports["latency_models"].as_dict(),
        "crash_outage_windows": {
            cell["stack"]: cell_outage_windows(cell)
            for cell in reports["crash"].cells
        },
    }
    if observe is not None:
        payload["observed_cell"] = observed_cell(scale, observe)
    return write_bench_json(
        json_path,
        "workload_sweep",
        scale_name,
        payload,
        config={key: list(value) if isinstance(value, tuple) else value
                for key, value in scale.items()},
        seed=scale["seed"],
        wall_seconds=time.time() - start,
    )


def main():
    parser = benchmark_arg_parser(__doc__, "BENCH_workload_sweep.json", SCALES)
    args = parser.parse_args()
    payload = record_results(
        args.scale, args.json, parallel=args.parallel, observe=args.observe
    )
    cells = sum(
        len(payload[key]["cells"])
        for key in ("curves", "crash", "availability", "latency_models")
    )
    print(
        f"{payload['benchmark']} [{payload['scale']}] {cells} cells "
        f"(pool={payload['parallel']}) wall={payload['wall_seconds']}s -> {args.json}"
    )


if __name__ == "__main__":
    main()
