"""E7 -- §6 claim: per-message protocol overhead, Newtop vs ISIS vector
clocks vs Psync context graphs vs causal piggybacking.

Paper claim: Newtop's protocol information per multicast is small and
*bounded* -- independent of group size and of how many groups overlap --
whereas vector clocks grow with membership, context graphs grow with
concurrency, and piggybacking causal history grows without bound.
Measured: analytic per-message overhead across group sizes plus the
actually transmitted protocol bytes of the running implementations.
"""

from common import RESULTS, run_session

from repro.analysis.overhead import (
    isis_overhead_bytes,
    newtop_overhead_bytes,
    piggyback_overhead_bytes,
    psync_overhead_bytes,
)

GROUP_SIZES = [3, 5, 10, 20, 50, 100]


def run_overhead_sweep():
    rows = []
    for size in GROUP_SIZES:
        rows.append(
            (
                size,
                newtop_overhead_bytes(size),
                isis_overhead_bytes(size),
                psync_overhead_bytes(size),
                piggyback_overhead_bytes(size, unstable_messages=size),
            )
        )
    return rows


def test_overhead_vs_baselines(benchmark):
    rows = benchmark.pedantic(run_overhead_sweep, rounds=1, iterations=1)
    # Cross-check the analytic models against running implementations at
    # n=5, through the same session front door every stack shares.
    names = [f"P{i}" for i in range(5)]
    isis_session = run_session(names, groups=[("g", None)], stack="isis", seed=2)
    psync_session = run_session(names, groups=[("g", None)], stack="psync", seed=2)
    for session in (isis_session, psync_session):
        for i in range(3):
            session.multicast("P0", "g", i)
            session.multicast("P2", "g", i + 100)
        session.run(100)
        assert session.result().passed
    measured_isis = isis_session["P0"]["g"].per_message_overhead_bytes()
    measured_psync = psync_session["P0"]["g"].per_message_overhead_bytes()

    table = [
        "group size |  Newtop  |  ISIS vector clock  |  Psync graph  |  piggybacking",
    ]
    for size, newtop, isis, psync, piggyback in rows:
        table.append(
            f"{size:10d} | {newtop:8d} | {isis:19d} | {psync:13d} | {piggyback:12d}"
        )
    table.append(
        f"running implementations at n=5: ISIS {measured_isis} B/msg, "
        f"Psync {measured_psync} B/msg, Newtop {newtop_overhead_bytes(5)} B/msg"
    )
    table.append(
        "paper: Newtop's overhead is low, bounded and smaller than ISIS vector "
        "clocks -> reproduced (constant vs linear growth)"
    )
    RESULTS.add_table("E7 per-message protocol overhead (bytes)", table)

    newtop_values = [row[1] for row in rows]
    isis_values = [row[2] for row in rows]
    assert len(set(newtop_values)) == 1  # constant in group size
    assert all(isis > newtop for _, newtop, isis, _, _ in rows)
    assert isis_values[-1] > isis_values[0]  # ISIS grows with group size
    assert measured_isis > newtop_overhead_bytes(5)
