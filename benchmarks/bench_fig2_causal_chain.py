"""E2 -- Fig. 2: a causal chain across four overlapping groups with a
partition, exercising MD5'.

Paper claim: when m1 -> m2 -> m3 -> m4 spans overlapping groups and m1 is
irretrievably lost to a partition, Newtop still delivers m4 -- but only
after excluding m1's sender from the receiver's view of m1's group, so the
causal prefix guarantee (MD5') is preserved without piggybacking causal
histories.  Measured: whether m4 is delivered, whether the exclusion
happens first, and how long the exclusion takes.
"""

from common import RESULTS, EventProbe, assert_session_correct, fmt, run_session

from repro.net.trace import DELIVER, VIEW_INSTALL


def run_causal_chain():
    probe = EventProbe(VIEW_INSTALL, DELIVER)
    session = run_session(
        ["Pi", "Pj", "Pk", "Pl", "Pq", "Ps"],
        groups=[
            ("g1", ["Pi", "Pj", "Pk"]),
            ("g2", ["Pk", "Pl"]),
            ("g3", ["Pl", "Pq"]),
            ("g4", ["Pq", "Ps", "Pi", "Pj"]),
        ],
        seed=12,
        analysis="online",
        sinks=[probe],
        view_agreement_sets={
            "g1": ["Pi", "Pj"],
            "g2": ["Pl"],
            "g3": ["Pl", "Pq"],
            "g4": ["Pi", "Pj", "Pq", "Ps"],
        },
    )
    session.run(5)

    # Partition Pk away from Pi/Pj exactly while it multicasts m1.
    session.network.add_filter(
        lambda src, dst, payload: not (src == "Pk" and dst in ("Pi", "Pj"))
    )
    chain = {"m2": False, "m3": False, "m4": False}

    def relay(process, trigger, group, marker):
        def callback(g, sender, payload, msg_id):
            if payload == trigger and not chain[marker]:
                chain[marker] = True
                session[process].multicast(group, marker)

        return callback

    session["Pk"].add_delivery_callback(relay("Pk", "m1", "g2", "m2"))
    session["Pl"].add_delivery_callback(relay("Pl", "m2", "g3", "m3"))
    session["Pq"].add_delivery_callback(relay("Pq", "m3", "g4", "m4"))
    send_time = session.sim.now
    session["Pk"].multicast("g1", "m1")
    session.run(300)
    return session, probe, send_time


def test_fig2_causal_chain_md5_prime(benchmark):
    session, probe, send_time = benchmark.pedantic(
        run_causal_chain, rounds=1, iterations=1
    )
    trace = probe.trace()
    m4_delivered = "m4" in session["Pi"].delivered_payloads("g4")
    m1_delivered = "m1" in session["Pi"].delivered_payloads("g1")
    pk_excluded = "Pk" not in session["Pi"].view("g1").members
    exclusion_time = None
    for event in trace.events(kind=VIEW_INSTALL, process="Pi", group="g1"):
        if "Pk" not in event.detail("members", ()):
            exclusion_time = event.time
            break
    m4_time = min(
        (e.time for e in trace.events(kind=DELIVER, process="Pi", group="g4")),
        default=None,
    )
    assert_session_correct(session)
    RESULTS.add_table(
        "E2 (Fig. 2) causal chain across overlapping groups under partition",
        [
            f"m1 delivered at Pi: {m1_delivered} (lost to the partition, as in the paper)",
            f"m4 delivered at Pi: {m4_delivered}",
            f"Pk excluded from Pi's g1 view before m4 delivery: "
            f"{pk_excluded and exclusion_time is not None and m4_time is not None and exclusion_time <= m4_time}",
            f"time from m1 multicast to Pk's exclusion: "
            f"{fmt((exclusion_time - send_time) if exclusion_time else float('nan'))} time units",
            "paper: option (b) of MD5' -- exclude the unreachable sender instead of "
            "piggybacking causal history -> reproduced",
        ],
    )
    assert m4_delivered and not m1_delivered
    assert pk_excluded
    assert exclusion_time is not None and m4_time is not None
    assert exclusion_time <= m4_time
