"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` works in fully offline environments whose
setuptools/pip combination cannot build PEP 660 editable wheels (no ``wheel``
package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Newtop: A Fault-Tolerant Group Communication "
        "Protocol (ICDCS 1995)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
