"""Repository-level pytest configuration.

Ensures ``src`` is importable even when the package has not been installed
(e.g. in fully offline environments where ``pip install -e .`` cannot build
an editable wheel).  When the package *is* installed this is a harmless
no-op because the installed location takes precedence only if it appears
earlier on ``sys.path``; both point at the same files in an editable
install anyway.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
