"""Same workload, two protocols: Newtop vs a fixed sequencer.

Run with::

    python examples/compare_protocols.py

Because every protocol is a pluggable stack behind :class:`repro.api.Session`,
the identical workload -- same processes, same group, same sends, same
simulated network -- runs on Newtop's symmetric protocol and on the
textbook fixed-sequencer baseline by changing one argument.  The example
compares what §6 of the paper compares: message cost, delivery latency,
and what happens to each protocol when a process crashes mid-run (Newtop's
membership service excludes the crashed member and keeps going; the static
sequencer group simply loses whatever the crash cut off).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import Session

NAMES = ["P1", "P2", "P3", "P4", "P5"]


def run_workload(stack: str):
    """Spawn, group, send, crash one member, drain -- on the given stack."""
    session = Session(
        stack=stack,
        config={"omega": 1.5, "suspicion_timeout": 6.0,
                "suspector_check_interval": 0.5},
        seed=9,
        analysis="online",
    )
    session.spawn(NAMES)
    session.group("g")
    for round_index in range(3):
        session.multicast("P2", "g", f"P2-{round_index}")
        session.multicast("P4", "g", f"P4-{round_index}")
        session.run(3)
    session.crash("P5")        # supported by every stack (capability: crash)
    for round_index in range(3, 6):
        session.multicast("P2", "g", f"P2-{round_index}")
        session.run(3)
    session.run(40)
    return session, session.result()


def main() -> None:
    print(f"{'':24s}{'Newtop (symmetric)':>20s}{'fixed sequencer':>18s}")
    sessions = {}
    for stack in ("newtop-symmetric", "fixed_sequencer"):
        sessions[stack] = run_workload(stack)

    rows = [
        ("guarantees checked", lambda r: "all MD/VC" if r.stack.startswith("newtop") else "total order"),
        ("checks passed", lambda r: str(r.passed)),
        ("app deliveries", lambda r: str(r.deliveries)),
        ("network messages", lambda r: str(r.messages_sent)),
        ("mean latency", lambda r: f"{r.metrics['latency']['mean']:.2f}"),
    ]
    results = [sessions[s][1] for s in ("newtop-symmetric", "fixed_sequencer")]
    for label, extract in rows:
        print(f"{label:24s}{extract(results[0]):>20s}{extract(results[1]):>18s}")

    newtop_session = sessions["newtop-symmetric"][0]
    print("\nAfter the crash of P5:")
    print(f"  Newtop view at P1      : {newtop_session['P1'].view('g').sorted_members()}"
          "  (P5 excluded by the membership service)")
    print("  fixed sequencer        : static membership -- P5 simply stops "
          "receiving; nobody is told")
    print("\nSame session code, same workload, same network -- only the "
          "stack argument changed.")


if __name__ == "__main__":
    main()
