"""Partitionable membership: both sides of a partition keep operating.

Run with::

    python examples/partitioned_subgroups.py

A five-member replicated store is split by a network partition into a
two-member side and a three-member side.  Unlike primary-partition
protocols -- which would halt the minority (or, with no majority, both
sides) -- Newtop lets every connected subgroup agree on a view of its own
and keep delivering, leaving the subgroups' fate to the application
(§5.2/§6 of the paper).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import Session
from repro.apps import ReplicatedStore
from repro.baselines import PrimaryPartitionMembership


def main() -> None:
    members = ["P1", "P2", "P3", "P4", "P5"]
    session = Session(
        stack="newtop",
        config={"omega": 1.5, "suspicion_timeout": 6.0,
                "suspector_check_interval": 0.5},
        seed=7,
    )
    session.spawn(members)
    session.group("kv")
    stores = {name: ReplicatedStore(session[name], "kv") for name in members}

    stores["P1"].set("shared", "written before the partition")
    session.run(20)

    print("Installing partition: {P1,P2} | {P3,P4,P5}")
    session.partition([["P1", "P2"], ["P3", "P4", "P5"]])
    session.run(120)

    print("\nViews after the membership service stabilises:")
    for name in members:
        print(f"  {name}: {session[name].view('kv').sorted_members()}")

    # Both sides keep writing -- their stores now evolve independently.
    stores["P1"].set("minority", "still serving")
    stores["P4"].set("majority", "still serving too")
    session.run(60)

    print("\nState on the minority side (P2):", stores["P2"].snapshot())
    print("State on the majority side (P5):", stores["P5"].snapshot())

    policy = PrimaryPartitionMembership(members)
    components = [["P1", "P2"], ["P3", "P4", "P5"]]
    print("\nAvailability comparison for this partition:")
    print(f"  primary-partition policy : {policy.availability_fraction(components):.0%} "
          "of processes may continue")
    print(f"  Newtop                   : "
          f"{PrimaryPartitionMembership.newtop_availability_fraction(members, components):.0%} "
          "of processes may continue")
    print("\nNewtop leaves reconciling the diverged subgroups to the application")
    print("(e.g. by forming a new group once the partition heals, §5.3).")


if __name__ == "__main__":
    main()
