"""Quickstart: three processes, one group, totally ordered multicast.

Run with::

    python examples/quickstart.py

The example drives the unified session API (:class:`repro.api.Session`):
spawn processes, install a group, multicast, run, read the verdict.  Two
members multicast concurrently and every member (including the senders)
delivers the same messages in the same order -- the core guarantee of
Newtop's symmetric protocol (§4.1 of the paper), checked here by the same
verification pipeline every benchmark uses.  Swap ``stack="newtop"`` for
``"fixed_sequencer"``, ``"isis"``, ``"lamport_ack"`` or ``"psync"`` to run
the identical workload on a §6 baseline (see
``examples/compare_protocols.py``).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Session


def main() -> None:
    session = Session(
        stack="newtop",
        config={"omega": 2.0, "suspicion_timeout": 8.0},
        seed=42,
    )
    session.spawn(["P1", "P2", "P3"])
    session.group("chat")

    # Two members multicast concurrently; nobody coordinates.
    session.multicast("P1", "chat", "P1: hello everyone")
    session.multicast("P2", "chat", "P2: hi! (sent concurrently)")
    session.multicast("P1", "chat", "P1: how is the migration going?")

    # Let the simulated network and the time-silence mechanism do their job.
    session.run(30)

    print("Delivered sequences (identical at every member):\n")
    for name in ("P1", "P2", "P3"):
        print(f"  {name}:")
        for line in session[name].delivered_payloads("chat"):
            print(f"    {line}")
        print()

    result = session.result()
    assert result.passed, "total order violated -- this should never happen"
    print("All members delivered the messages in the same total order.")
    print(f"Guarantees checked on the trace: {result.checks.name}")
    print(f"Logical clock at P1: {session['P1'].clock.value}")
    print(f"Null messages sent by the time-silence mechanism: "
          f"{len(session.trace().events(kind='null_send'))}")


if __name__ == "__main__":
    main()
