"""Quickstart: three processes, one group, totally ordered multicast.

Run with::

    python examples/quickstart.py

The example builds a three-member group, has two members multicast
concurrently, and shows that every member (including the senders) delivers
the same messages in the same order -- the core guarantee of Newtop's
symmetric protocol (§4.1 of the paper).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import NewtopCluster, NewtopConfig


def main() -> None:
    config = NewtopConfig(omega=2.0, suspicion_timeout=8.0)
    cluster = NewtopCluster(["P1", "P2", "P3"], config=config, seed=42)
    cluster.create_group("chat")

    # Two members multicast concurrently; nobody coordinates.
    cluster["P1"].multicast("chat", "P1: hello everyone")
    cluster["P2"].multicast("chat", "P2: hi! (sent concurrently)")
    cluster["P1"].multicast("chat", "P1: how is the migration going?")

    # Let the simulated network and the time-silence mechanism do their job.
    cluster.run(30)

    print("Delivered sequences (identical at every member):\n")
    for process in cluster:
        print(f"  {process.process_id}:")
        for line in process.delivered_payloads("chat"):
            print(f"    {line}")
        print()

    orders = {tuple(process.delivered_payloads("chat")) for process in cluster}
    assert len(orders) == 1, "total order violated -- this should never happen"
    print("All members delivered the messages in the same total order.")
    print(f"Logical clock at P1: {cluster['P1'].clock.value}")
    print(f"Null messages sent by the time-silence mechanism: "
          f"{len(cluster.trace().events(kind='null_send'))}")


if __name__ == "__main__":
    main()
