"""Mixed-mode operation: symmetric and asymmetric groups at one process.

Run with::

    python examples/mixed_mode_ordering.py

One process belongs to two overlapping groups and runs the symmetric
protocol in one and the asymmetric (sequencer) protocol in the other --
something no prior protocol supported (§4.3 of the paper).  The example
shows the Mixed-mode Blocking Rule in action (a multicast deferred while a
message awaits sequencing in the other group) and verifies that delivery
order stays consistent across both groups at the multi-group members.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import OrderingMode, Session
from repro.analysis.metrics import blocking_times


def main() -> None:
    session = Session(
        stack="newtop",
        config={"omega": 2.0, "suspicion_timeout": 10.0},
        seed=3,
    )
    session.spawn(["P1", "P2", "P3", "P4"])

    # P2 and P3 belong to both groups; "control" uses a sequencer (P1),
    # "telemetry" is fully symmetric.
    session.group("control", ["P1", "P2", "P3"], mode=OrderingMode.ASYMMETRIC)
    session.group("telemetry", ["P2", "P3", "P4"], mode=OrderingMode.SYMMETRIC)

    # P2 disseminates in the asymmetric group (unicast to the sequencer) and
    # immediately afterwards in the symmetric group: the second send must
    # wait until the first comes back from the sequencer.
    session.multicast("P2", "control", "control: set-point 42")
    deferred = session.multicast("P2", "telemetry", "telemetry: reading 17.3")
    print(f"telemetry send deferred by the blocking rule: {deferred is None}")

    session.multicast("P3", "telemetry", "telemetry: reading 18.1")
    session.multicast("P1", "control", "control: ack")
    session.run(80)

    print("\nDeliveries at the multi-group members (interleaved across groups):")
    for name in ("P2", "P3"):
        print(f"  {name}:")
        for record in session[name].delivered:
            print(f"    [{record.group:9s}] {record.payload}")

    waits = blocking_times(session.trace(), group="telemetry")
    if waits:
        print(f"\nBlocking-rule wait before the deferred telemetry send: "
              f"{waits[0]:.2f} simulated time units")

    orders = {
        tuple(record.msg_id for record in session[name].delivered) for name in ("P2", "P3")
    }
    result = session.result()
    print(f"\ncross-group delivery orders identical at P2 and P3: {len(orders) == 1}")
    print(f"all paper guarantees (MD1-MD5', VC1-VC3) hold on the trace: {result.passed}")


if __name__ == "__main__":
    main()
