"""Online server migration via overlapping groups (the paper's Fig. 1).

Run with::

    python examples/server_migration.py

A two-replica server group ``g1`` keeps serving client requests while one
of its replicas is migrated to a new machine: the new process forms an
overlapping group ``g2``, state is transferred inside ``g2``, requests are
cut over, and the old memberships are wound down -- all without losing a
single request.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps import ServerMigrationScenario


def main() -> None:
    scenario = ServerMigrationScenario(requests_per_phase=8, seed=11)
    report = scenario.run()

    print("Online server migration (paper Fig. 1)")
    print("=" * 50)
    print(f"requests before migration : {report.requests_before}")
    print(f"requests during migration : {report.requests_during}")
    print(f"requests after migration  : {report.requests_after}")
    print(f"all requests applied      : {report.all_requests_applied}")
    print(f"state transferred intact  : {report.state_transferred_intact}")
    print(f"old group cleaned up      : {report.old_group_cleaned_up}")
    print(f"surviving group g2        : {report.final_group_members}")
    print(f"migration duration (sim)  : {report.migration_duration:.1f} time units")
    print(f"service uninterrupted     : {report.service_uninterrupted}")
    print()
    print("Final replicated state at the migrated replica (P3):")
    for key, value in sorted(report.final_state.items()):
        print(f"  {key} = {value}")


if __name__ == "__main__":
    main()
