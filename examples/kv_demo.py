"""A sharded replicated KV store built from Newtop groups.

Run with::

    python examples/kv_demo.py

Three shards, each a three-replica Newtop group in asymmetric (fixed
sequencer) mode, behind a consistent-hash ring (:mod:`repro.apps.kv`).
Every write is totally ordered within its shard by the protocol itself --
the replicas are deterministic state machines over the delivery order --
and the :class:`~repro.apps.kv.KVOracle` audits per-key linearizability,
read-your-writes and migration integrity online, from the live trace.

The demo then exercises the two operational moves the subsystem turns
into *protocol* events, no control plane required:

* **crash failover** -- the sequencer of shard ``s1`` crash-stops; the
  membership service excludes it, sequencer duty migrates to the next
  member, and the shard keeps accepting writes;
* **live split** -- shard ``s0`` is split onto a new shard via dynamic
  group formation (§5.3), a fence command in the source's total order, a
  keyed state transfer, and a new ring version.  Clients holding the old
  ring get ``stale_ring`` + the new ring and retry.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import Session
from repro.apps.kv import KVOracle, Rebalancer, ShardedKV
from repro.core.config import OrderingMode

LAYOUT = {
    "s0": ["s0r0", "s0r1", "s0r2"],
    "s1": ["s1r0", "s1r1", "s1r2"],
    "s2": ["s2r0", "s2r1", "s2r2"],
}
SPARES = ["x0", "x1"]


def put(session, store, client, op, key, value, ring=None):
    """Submit one write through ``ring`` (default: the current one) and
    wait for the acknowledgement from the coordinator's apply."""
    ring = ring or store.ring
    acks = []
    outcome = store.submit(
        client=client, client_op=op, op="set", key=key, value=value,
        via=store.alive_members(store.ring.lookup(key))[0],
        ring=ring, callback=acks.append,
    )
    if outcome["status"] != "submitted":  # stale ring / frozen / unavailable
        return outcome
    session.run_until(lambda: bool(acks), timeout=60)
    return acks[0]


def get(session, store, client, key):
    shard = store.ring.lookup(key)
    return store.read(
        client=client, key=key, via=store.alive_members(shard)[0],
        ring=store.ring, min_position=0,
    )


def main():
    oracle = KVOracle()
    session = Session("newtop", seed=4, analysis="online", sinks=[oracle])
    session.spawn([pid for members in LAYOUT.values() for pid in members])
    session.spawn(SPARES)
    store = ShardedKV(session, mode=OrderingMode.ASYMMETRIC)
    store.bootstrap(LAYOUT)
    session.run(1.0)

    print("== bootstrap ==")
    print(f"ring v{store.ring.version}: shards {list(store.ring.shards)}")
    for index in range(12):
        key = f"user:{index}"
        ack = put(session, store, "demo", index, key, f"profile-{index}")
        print(f"  set {key:8s} -> shard {ack['shard']} position {ack['position']}")

    print("== crash failover (sequencer of s1) ==")
    session.crash("s1r0")
    session.run(10.0)  # suspicion -> membership exclusion -> new sequencer
    ack = put(session, store, "demo", 100, "after-crash", "still-writable")
    print(f"  s1 members now {store.alive_members('s1')}")
    print(f"  set after-crash -> shard {ack['shard']} position {ack['position']}")

    print("== live split of s0 onto a new shard s3 ==")
    old_ring = store.ring
    coordinator = store.alive_members("s0")[0]
    report = Rebalancer(store).split_shard("s0", "s3", [coordinator, *SPARES])
    session.run_until(lambda: report.complete or report.failed, timeout=120)
    print(f"  {report.describe()['kind']} moved {report.moved_keys} keys in "
          f"{report.duration:.1f}s; ring now v{store.ring.version}")
    moved = next(
        key for index in range(1000)
        for key in (f"user:{index}",)
        if old_ring.lookup(key) != store.ring.lookup(key)
    )
    stale = put(session, store, "demo", 200, moved, "stale-route", ring=old_ring)
    print(f"  client on ring v{old_ring.version} writing {moved!r} got "
          f"{stale['status']!r}; retrying on v{stale['ring'].version}")
    ack = put(session, store, "demo", 201, moved, "fresh-route")
    print(f"  set {moved!r} -> shard {ack['shard']} (owner under the new ring)")
    read = get(session, store, "demo", moved)
    print(f"  get {moved!r} -> {read['value']!r} from shard {read['shard']}")

    session.run(20.0)
    result = session.result()
    print("== report ==")
    for shard in sorted(store.shards):
        if store.shards[shard].retired:
            continue
        replicas = store.shards[shard]
        print(f"  {shard}: members {replicas.alive_members()} "
              f"converged={store.converged(shard)}")
    print(f"  protocol checks passed: {result.passed}  "
          f"(trace events stored: {result.trace_events_stored})")
    summary = oracle.summary()
    print(f"  KV oracle passed: {summary['passed']}  "
          f"({summary['applies_checked']} applies, "
          f"{summary['reads_checked']} reads checked online)")
    assert result.passed and summary["passed"]


if __name__ == "__main__":
    main()
