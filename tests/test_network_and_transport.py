"""Unit tests for the network fabric, latency models, partitions and the
reliable FIFO transport."""

import random

import pytest

from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    JitteredLatency,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.network import Network, NetworkConfig
from repro.net.partitions import PartitionManager
from repro.net.simulator import Simulator
from repro.net.transport import Transport


# ----------------------------------------------------------------------
# Latency models
# ----------------------------------------------------------------------
def test_constant_latency():
    model = ConstantLatency(2.5)
    rng = random.Random(0)
    assert model.sample(rng, "a", "b") == 2.5


@pytest.mark.parametrize(
    "model",
    [
        UniformLatency(0.5, 1.5),
        ExponentialLatency(mean=1.0, floor=0.1),
        LogNormalLatency(median=1.0, sigma=0.4),
        JitteredLatency(base_low=0.5, base_high=2.0, jitter=0.3),
    ],
)
def test_latency_models_non_negative(model):
    rng = random.Random(3)
    samples = [model.sample(rng, "a", "b") for _ in range(200)]
    assert all(sample >= 0 for sample in samples)
    assert model.describe()


def test_uniform_latency_bounds():
    model = UniformLatency(1.0, 2.0)
    rng = random.Random(1)
    samples = [model.sample(rng, "a", "b") for _ in range(100)]
    assert all(1.0 <= sample <= 2.0 for sample in samples)


def test_uniform_latency_invalid_bounds():
    with pytest.raises(ValueError):
        UniformLatency(2.0, 1.0)


def test_jittered_latency_stable_base_per_pair():
    model = JitteredLatency(jitter=0.0)
    rng = random.Random(0)
    first = model.sample(rng, "a", "b")
    second = model.sample(rng, "a", "b")
    assert first == second
    assert model.sample(rng, "b", "a") != first or True  # may coincide, just no error


# ----------------------------------------------------------------------
# Partition manager
# ----------------------------------------------------------------------
def test_partition_manager_default_connected():
    manager = PartitionManager(["a", "b", "c"])
    assert manager.can_communicate("a", "b")
    assert not manager.partitioned


def test_partition_splits_components():
    manager = PartitionManager(["a", "b", "c", "d"])
    manager.partition([["a", "b"], ["c", "d"]])
    assert manager.can_communicate("a", "b")
    assert not manager.can_communicate("a", "c")
    assert manager.partitioned
    assert len(manager.components()) == 2


def test_partition_leftover_nodes_form_component():
    manager = PartitionManager(["a", "b", "c", "d"])
    manager.partition([["a"]])
    assert not manager.can_communicate("a", "b")
    assert manager.can_communicate("b", "c")


def test_partition_heal():
    manager = PartitionManager(["a", "b"])
    manager.partition([["a"], ["b"]])
    manager.heal()
    assert manager.can_communicate("a", "b")
    assert manager.history


def test_isolate_single_node():
    manager = PartitionManager(["a", "b", "c"])
    manager.isolate("b")
    assert not manager.can_communicate("a", "b")
    assert manager.can_communicate("a", "c")


def test_partition_rejects_duplicate_membership():
    manager = PartitionManager(["a", "b"])
    with pytest.raises(ValueError):
        manager.partition([["a"], ["a", "b"]])


def test_self_communication_always_possible():
    manager = PartitionManager(["a", "b"])
    manager.partition([["a"], ["b"]])
    assert manager.can_communicate("a", "a")


# ----------------------------------------------------------------------
# Network
# ----------------------------------------------------------------------
def _make_network(latency=None):
    sim = Simulator(seed=1)
    config = NetworkConfig(latency_model=latency or ConstantLatency(1.0))
    return sim, Network(sim, config)


def test_network_delivers_messages():
    sim, network = _make_network()
    received = []
    network.attach("a", lambda src, payload: None)
    network.attach("b", lambda src, payload: received.append((src, payload)))
    assert network.send("a", "b", "hello", size_bytes=10)
    sim.run()
    assert received == [("a", "hello")]
    assert network.stats.messages_delivered == 1
    assert network.stats.bytes_delivered == 10


def test_network_drops_to_crashed_node():
    sim, network = _make_network()
    received = []
    network.attach("a", lambda src, payload: None)
    network.attach("b", lambda src, payload: received.append(payload))
    network.crash("b")
    assert not network.send("a", "b", "x")
    sim.run()
    assert received == []
    assert network.stats.messages_dropped_crash >= 1


def test_network_drops_from_crashed_sender():
    sim, network = _make_network()
    network.attach("a", lambda src, payload: None)
    network.attach("b", lambda src, payload: None)
    network.crash("a")
    assert not network.send("a", "b", "x")


def test_network_partition_drops_at_send():
    sim, network = _make_network()
    received = []
    network.attach("a", lambda src, payload: None)
    network.attach("b", lambda src, payload: received.append(payload))
    network.partitions.partition([["a"], ["b"]])
    assert not network.send("a", "b", "x")
    sim.run()
    assert received == []


def test_network_partition_drops_in_flight():
    sim, network = _make_network(ConstantLatency(5.0))
    received = []
    network.attach("a", lambda src, payload: None)
    network.attach("b", lambda src, payload: received.append(payload))
    assert network.send("a", "b", "x")
    # Partition before the delivery time of the in-flight message.
    sim.schedule(1.0, network.partitions.partition, [["a"], ["b"]])
    sim.run()
    assert received == []
    assert network.stats.messages_dropped_partition == 1


def test_network_filter_drops_selected_messages():
    sim, network = _make_network()
    received = []
    network.attach("a", lambda src, payload: None)
    network.attach("b", lambda src, payload: received.append(payload))
    network.add_filter(lambda src, dst, payload: payload != "drop-me")
    network.send("a", "b", "keep")
    network.send("a", "b", "drop-me")
    sim.run()
    assert received == ["keep"]
    assert network.stats.messages_dropped_filter == 1


def test_network_multicast_counts_accepted():
    sim, network = _make_network()
    for node in ("a", "b", "c", "d"):
        network.attach(node, lambda src, payload: None)
    network.crash("d")
    accepted = network.multicast("a", ["b", "c", "d"], "x")
    assert accepted == 2


def test_network_duplicate_attach_rejected():
    _, network = _make_network()
    network.attach("a", lambda src, payload: None)
    with pytest.raises(ValueError):
        network.attach("a", lambda src, payload: None)


# ----------------------------------------------------------------------
# Transport
# ----------------------------------------------------------------------
def test_transport_fifo_per_channel_with_random_latency():
    sim = Simulator(seed=9)
    network = Network(sim, NetworkConfig(latency_model=UniformLatency(0.1, 5.0)))
    transport = Transport(network)
    sender = transport.endpoint("s")
    receiver = transport.endpoint("r")
    received = []
    receiver.register_handler("data", lambda msg: received.append(msg.payload))
    for i in range(50):
        sender.send("r", i, channel="data")
    sim.run()
    assert received == list(range(50))


def test_transport_channels_are_independent_streams():
    sim = Simulator(seed=2)
    network = Network(sim, NetworkConfig(latency_model=ConstantLatency(1.0)))
    transport = Transport(network)
    sender = transport.endpoint("s")
    receiver = transport.endpoint("r")
    seen = {"a": [], "b": []}
    receiver.register_handler("a", lambda msg: seen["a"].append(msg.payload))
    receiver.register_handler("b", lambda msg: seen["b"].append(msg.payload))
    sender.send("r", 1, channel="a")
    sender.send("r", 2, channel="b")
    sim.run()
    assert seen == {"a": [1], "b": [2]}


def test_transport_crashed_endpoint_stops_sending_and_receiving():
    sim = Simulator(seed=2)
    network = Network(sim, NetworkConfig(latency_model=ConstantLatency(1.0)))
    transport = Transport(network)
    a = transport.endpoint("a")
    b = transport.endpoint("b")
    received = []
    b.register_default_handler(lambda msg: received.append(msg.payload))
    a.send("b", "before")
    sim.run()
    b.crash()
    a.send("b", "after")
    sim.run()
    assert received == ["before"]
    assert not b.send("a", "from-crashed")


def test_transport_stats_track_channels():
    sim = Simulator(seed=2)
    network = Network(sim, NetworkConfig(latency_model=ConstantLatency(1.0)))
    transport = Transport(network)
    a = transport.endpoint("a")
    b = transport.endpoint("b")
    b.register_default_handler(lambda msg: None)
    a.send("b", "x", channel="data", size_bytes=5)
    a.send("b", "y", channel="ctl", size_bytes=7)
    sim.run()
    assert a.stats.per_channel_sent == {"data": 1, "ctl": 1}
    assert b.stats.per_channel_received == {"data": 1, "ctl": 1}
    assert a.stats.bytes_sent == 12


def test_transport_endpoint_reused_for_same_node():
    sim = Simulator(seed=2)
    network = Network(sim, NetworkConfig())
    transport = Transport(network)
    first = transport.endpoint("a")
    second = transport.endpoint("a")
    assert first is second
    assert transport.get("a") is first
    assert transport.get("missing") is None
