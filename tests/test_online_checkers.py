"""Tests for the streaming verification & observability subsystem.

Covers the ISSUE-2 surface: the trace-sink architecture (memory, JSONL,
metrics, null sinks; streaming recorders that never materialize a trace),
online/offline checker equivalence on seeded scenario traces, mutation
sensitivity (both suites must catch seeded violations), the scenario
engine's ``analysis="online"`` mode, and the satellite fixes (first-send
latency samples, happened-before memoization, per-kind event indexes).
"""

import dataclasses
import io
import json

import pytest

from repro.analysis import check_all, check_events
from repro.analysis.online import OnlineCheckSuite
from repro.net.trace import (
    DELIVER,
    JsonlSink,
    MemorySink,
    MetricsSink,
    NullSink,
    SEND,
    TraceRecorder,
    VIEW_INSTALL,
)
from repro.scenarios import (
    ScenarioEngine,
    cascading_partitions_scenario,
    churn_scenario,
    from_config,
    merge_storm_scenario,
    migration_under_load_scenario,
    mixed_modes_scenario,
    run_scenario,
)

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def run_offline(config):
    """Run a scenario offline; return (engine, result, event list)."""
    engine = ScenarioEngine(from_config(config))
    result = engine.run()
    return engine, result, list(engine.cluster.trace())


def replay_online(events, agreement_sets=None):
    """Feed a (possibly mutated) event list through a fresh online suite."""
    return check_events(events, view_agreement_sets=agreement_sets)


SMALL_CHURN = dict(
    n_processes=10, n_groups=3, group_size=5, crashes=1, leaves=1, seed=5
)

#: A one-directional lossy window: the engine conservatively drops the
#: affected endpoints from the agreement sets, so online checkers must
#: scope view agreement AND virtual synchrony the same way check_all does.
DROP_WINDOW = {
    "name": "drop window",
    "processes": 6,
    "groups": [
        {"id": "g0", "members": ["P001", "P002", "P003", "P004"]},
        {"id": "g1", "members": ["P003", "P004", "P005", "P006"]},
    ],
    "workload": {"messages_per_sender": 3, "senders_per_group": 2, "gap": 3.0},
    "events": [
        {"time": 5.0, "kind": "drop", "src": ["P004"], "dst": ["P001"], "duration": 4.0}
    ],
    "drain": 40.0,
}


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


def test_memory_sink_matches_recorder_trace():
    extra = MemorySink()
    recorder = TraceRecorder(sinks=[extra])
    recorder.record(1.0, SEND, "P1", group="g", message_id="m1", sender="P1")
    recorder.record(2.0, DELIVER, "P2", group="g", message_id="m1", sender="P1")
    assert [event.seq for event in extra.trace()] == [
        event.seq for event in recorder.trace()
    ]
    assert recorder.events_recorded == 2
    assert recorder.stored_events == 2


def test_streaming_recorder_never_materializes():
    sink = NullSink()
    recorder = TraceRecorder(sinks=[sink], keep_events=False)
    for index in range(100):
        recorder.record(float(index), SEND, "P1", message_id=f"m{index}")
    assert recorder.events_recorded == 100
    assert recorder.stored_events == 0
    with pytest.raises(RuntimeError):
        recorder.trace()


def test_jsonl_sink_writes_parseable_lines():
    buffer = io.StringIO()
    recorder = TraceRecorder(sinks=[JsonlSink(buffer)], keep_events=False)
    recorder.record(1.0, SEND, "P1", group="g", message_id="m1", sender="P1")
    recorder.record(
        2.5, VIEW_INSTALL, "P2", group="g", members=("P1", "P2"), index=0
    )
    recorder.close()
    lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert len(lines) == 2
    assert lines[0]["kind"] == "send" and lines[0]["message_id"] == "m1"
    assert lines[1]["details"]["members"] == ["P1", "P2"]
    assert lines[1]["seq"] == 1


def test_metrics_sink_uses_first_send_time():
    metrics = MetricsSink()
    recorder = TraceRecorder(sinks=[metrics], keep_events=False)
    recorder.record(1.0, SEND, "P1", group="g", message_id="m1", sender="P1")
    # Re-send under the original id (asymmetric failover) must not reset
    # the latency clock.
    recorder.record(5.0, SEND, "P1", group="g", message_id="m1", sender="P1")
    recorder.record(6.0, DELIVER, "P2", group="g", message_id="m1", sender="P1")
    assert metrics.latency_count == 1
    assert metrics.latency_mean == pytest.approx(5.0)
    assert metrics.by_kind["send"] == 2
    assert metrics.deliveries_by_group == {"g": 1}


def test_event_trace_delivery_latencies_keep_first_send_time():
    recorder = TraceRecorder()
    recorder.record(1.0, SEND, "P1", group="g", message_id="m1", sender="P1")
    recorder.record(5.0, SEND, "P1", group="g", message_id="m1", sender="P1")
    recorder.record(6.0, DELIVER, "P2", group="g", message_id="m1", sender="P1")
    assert recorder.trace().delivery_latencies() == [pytest.approx(5.0)]


def test_event_trace_kind_indexes_match_full_scan():
    _, _, events = run_offline(churn_scenario(**SMALL_CHURN))
    from repro.net.trace import EventTrace

    trace = EventTrace(events)
    for kind in (SEND, DELIVER, VIEW_INSTALL):
        indexed = trace.events(kind=kind)
        scanned = [event for event in trace if event.kind == kind]
        assert indexed == scanned
        process = scanned[0].process
        assert trace.events(kind=kind, process=process) == [
            event for event in scanned if event.process == process
        ]


def test_happened_before_pairs_memoized():
    _, _, events = run_offline(churn_scenario(**SMALL_CHURN))
    from repro.net.trace import EventTrace

    trace = EventTrace(events)
    first = trace.happened_before_pairs()
    assert trace.happened_before_pairs() is first  # cached, not recomputed


# ---------------------------------------------------------------------------
# Online/offline equivalence on seeded scenario traces
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "config",
    [
        churn_scenario(**SMALL_CHURN),
        churn_scenario(
            n_processes=12, n_groups=3, group_size=6,
            crashes=1, leaves=1, formations=2, seed=5,
        ),
        merge_storm_scenario(n_processes=6, n_groups=2, group_size=4, cycles=2),
        cascading_partitions_scenario(n_processes=9, n_groups=2, group_size=5, slices=1),
        migration_under_load_scenario(n_processes=5),
        mixed_modes_scenario(n_processes=6),
        DROP_WINDOW,
    ],
    ids=[
        "churn", "churn+formations", "merge-storm", "cascade", "migration",
        "mixed", "drop-window",
    ],
)
def test_online_and_offline_checkers_agree(config):
    engine, result, events = run_offline(config)
    agreement = engine.expected_agreement_sets()
    offline = check_all(engine.cluster.trace(), view_agreement_sets=agreement)
    online = replay_online(events, agreement)
    assert offline.passed and online.passed, (
        offline.violations[:3],
        online.violations[:3],
    )
    assert result.passed


# ---------------------------------------------------------------------------
# Mutation sensitivity: seeded violations must be caught by BOTH suites
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def churn_run():
    engine, result, events = run_offline(churn_scenario(**SMALL_CHURN))
    assert result.passed
    return engine, events


def _swap_events(events, first, second):
    swapped = {
        first.seq: dataclasses.replace(first, time=second.time, seq=second.seq),
        second.seq: dataclasses.replace(second, time=first.time, seq=first.seq),
    }
    return [swapped.get(event.seq, event) for event in events]


def test_swapped_deliveries_caught_by_both(churn_run):
    engine, events = churn_run
    agreement = engine.expected_agreement_sets()
    # Two app deliveries at one process whose messages were both delivered
    # by some other process: swapping them inverts the pairwise order.
    by_process = {}
    for event in events:
        if event.kind == DELIVER and event.message_id is not None:
            by_process.setdefault(event.process, []).append(event)
    candidate = None
    for process, deliveries in by_process.items():
        for i, first in enumerate(deliveries):
            for second in deliveries[i + 1 :]:
                for other, other_deliveries in by_process.items():
                    if other == process:
                        continue
                    ids = [e.message_id for e in other_deliveries]
                    if first.message_id in ids and second.message_id in ids:
                        candidate = (first, second)
                        break
                if candidate:
                    break
            if candidate:
                break
        if candidate:
            break
    assert candidate is not None, "scenario produced no shared delivery pair"
    mutated = _swap_events(events, *candidate)

    from repro.net.trace import EventTrace

    offline = check_all(EventTrace(mutated), view_agreement_sets=agreement)
    online = replay_online(mutated, agreement)
    assert not offline.passed
    assert not online.passed
    assert not online and not offline  # __bool__ mirrors .passed


def test_dropped_view_install_caught_by_both(churn_run):
    engine, events = churn_run
    agreement = engine.expected_agreement_sets()
    # Drop the final view install of a process that shares its group's
    # agreement set with at least one peer.
    target = None
    for group, members in agreement.items():
        if len(members) < 2:
            continue
        installs = [
            event
            for event in events
            if event.kind == VIEW_INSTALL
            and event.group == group
            and event.process == members[0]
        ]
        if len(installs) >= 2:
            target = installs[-1]
            break
    assert target is not None, "scenario produced no multi-install agreement group"
    mutated = [event for event in events if event.seq != target.seq]

    from repro.net.trace import EventTrace

    offline = check_all(EventTrace(mutated), view_agreement_sets=agreement)
    online = replay_online(mutated, agreement)
    assert not offline.passed
    assert not online.passed


def test_delivery_from_excluded_sender_caught_by_both(churn_run):
    engine, events = churn_run
    agreement = engine.expected_agreement_sets()
    crashed = next(
        event.targets[0] for event in engine.spec.events if event.kind == "crash"
    )
    # A survivor that shares a group with the crashed process and installed
    # a view excluding it.
    target = None
    for event in reversed(events):
        if (
            event.kind == VIEW_INSTALL
            and crashed not in event.detail("members", ())
            and event.process != crashed
            and any(
                crashed in e.detail("members", ())
                for e in events
                if e.kind == VIEW_INSTALL
                and e.process == event.process
                and e.group == event.group
            )
        ):
            target = event
            break
    assert target is not None
    last = events[-1]
    forged = dataclasses.replace(
        last,
        time=last.time + 1.0,
        seq=last.seq + 1,
        kind=DELIVER,
        process=target.process,
        group=target.group,
        message_id="forged-message",
        sender=crashed,
        clock=None,
        details=(),
    )
    mutated = events + [forged]

    from repro.net.trace import EventTrace

    offline = check_all(EventTrace(mutated), view_agreement_sets=agreement)
    online = replay_online(mutated, agreement)
    assert not offline.passed
    assert not online.passed
    assert any("outside its view" in violation for violation in online.violations)


# ---------------------------------------------------------------------------
# Engine online mode
# ---------------------------------------------------------------------------


def test_engine_online_mode_passes_without_materializing():
    config = churn_scenario(**SMALL_CHURN)
    engine = ScenarioEngine(from_config(config), analysis="online")
    result = engine.run()
    assert result.passed, result.checks.violations[:3]
    assert result.analysis == "online"
    assert result.trace_events > 0
    assert result.trace_events_stored == 0
    assert engine.cluster.recorder.stored_events == 0
    with pytest.raises(RuntimeError):
        engine.cluster.trace()
    # The rolling metrics sink saw every delivery the processes report.
    assert result.metrics["by_kind"]["deliver"] == result.deliveries
    assert result.metrics["latency"]["count"] > 0


def test_engine_online_and_offline_verdicts_match_end_to_end():
    config = merge_storm_scenario(n_processes=6, n_groups=2, group_size=4, cycles=2)
    offline = run_scenario(config)
    online = run_scenario(config, analysis="online")
    assert offline.passed == online.passed == True  # noqa: E712
    assert offline.deliveries == online.deliveries


def test_engine_rejects_unknown_analysis_mode():
    with pytest.raises(ValueError):
        ScenarioEngine(from_config(churn_scenario(**SMALL_CHURN)), analysis="psychic")


def test_engine_extra_jsonl_sink_in_online_mode(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    config = mixed_modes_scenario(n_processes=6)
    result = run_scenario(config, analysis="online", sinks=[JsonlSink(path)])
    assert result.passed
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert len(lines) == result.trace_events
    kinds = {json.loads(line)["kind"] for line in lines}
    assert "deliver" in kinds and "view_install" in kinds


# ---------------------------------------------------------------------------
# Suite ergonomics
# ---------------------------------------------------------------------------


def test_suite_dispatches_only_relevant_kinds(churn_run):
    _, events = churn_run
    suite = OnlineCheckSuite()
    for event in events:
        suite.on_event(event)
    assert suite.events_seen == len(events)
    # Null sends dominate the trace but no checker consumes them.
    null_sends = sum(1 for event in events if event.kind == "null_send")
    assert null_sends > 0
    assert suite.total_order.events_seen == sum(
        1 for event in events if event.kind == DELIVER
    )
    # The arbiter assigned every delivered message one reference position.
    delivered_ids = {
        event.message_id for event in events if event.kind == DELIVER
    }
    positions = suite.total_order.arbiter_position
    assert set(positions) == delivered_ids
    assert sorted(positions.values()) == list(range(len(delivered_ids)))


def test_view_agreement_falls_back_when_group_unlisted(churn_run):
    """A group missing from view_agreement_sets is still checked (against
    every installer), mirroring check_all's fallback -- not skipped."""
    engine, events = churn_run
    agreement = engine.expected_agreement_sets()
    group, members = next(
        (group, members)
        for group, members in agreement.items()
        if len(members) >= 2
    )
    installs = [
        event
        for event in events
        if event.kind == VIEW_INSTALL
        and event.group == group
        and event.process == members[0]
    ]
    assert len(installs) >= 2
    mutated = [event for event in events if event.seq != installs[-1].seq]
    # Empty mapping: every group takes the all-installers fallback.
    online = replay_online(mutated, {})
    assert not online.passed
    assert any("view sequences differ" in v for v in online.violations)
