"""Tests for the analysis layer: checkers, metrics, overhead models and
workload generators."""

import pytest

from repro.analysis.checkers import (
    check_causal_prefix,
    check_same_view_delivery_sets,
    check_sender_in_view,
    check_total_order,
    check_view_sequences,
)
from repro.analysis.metrics import (
    LatencySummary,
    build_report,
    messages_per_delivered_multicast,
    summarize_latencies,
    view_agreement_latency,
)
from repro.analysis.overhead import (
    isis_overhead_bytes,
    newtop_overhead_bytes,
    piggyback_overhead_bytes,
    psync_overhead_bytes,
)
from repro.analysis.workloads import BurstyWorkload, UniformWorkload, WorkloadRunner
from harness import NewtopCluster

from repro.core import NewtopConfig
from repro.net.network import NetworkStats
from repro.net.trace import DELIVER, SEND, SUSPECT, TraceRecorder, VIEW_INSTALL


# ----------------------------------------------------------------------
# Checkers on synthetic traces (both accepting and violating ones)
# ----------------------------------------------------------------------
def _delivery_trace(orders):
    """Build a trace where each process delivers the given message ids."""
    recorder = TraceRecorder()
    for msg_id in sorted({m for order in orders.values() for m in order}):
        recorder.record(0.0, SEND, msg_id.split("@")[0] if "@" in msg_id else "p0",
                        group="g", message_id=msg_id, sender="p0", clock=1)
    for process, order in orders.items():
        for index, msg_id in enumerate(order):
            recorder.record(
                1.0 + index, DELIVER, process, group="g", message_id=msg_id,
                sender="p0", clock=index + 1, view_index=0,
            )
    return recorder.trace()


def test_total_order_checker_accepts_agreeing_orders():
    trace = _delivery_trace({"p1": ["m1", "m2", "m3"], "p2": ["m1", "m2", "m3"]})
    assert check_total_order(trace, "g").passed


def test_total_order_checker_accepts_prefixes_and_gaps():
    trace = _delivery_trace({"p1": ["m1", "m2", "m3"], "p2": ["m1", "m3"]})
    assert check_total_order(trace, "g").passed


def test_total_order_checker_rejects_inversion():
    trace = _delivery_trace({"p1": ["m1", "m2"], "p2": ["m2", "m1"]})
    result = check_total_order(trace, "g")
    assert not result.passed
    assert result.violations


def test_causal_order_violation_detected():
    recorder = TraceRecorder()
    recorder.record(0.0, VIEW_INSTALL, "p2", group="g", members=("p1", "p2"), index=0)
    recorder.record(1.0, SEND, "p1", group="g", message_id="m1", sender="p1", clock=1)
    recorder.record(2.0, DELIVER, "p1", group="g", message_id="m1", sender="p1", clock=1, view_index=0)
    recorder.record(3.0, SEND, "p1", group="g", message_id="m2", sender="p1", clock=2)
    # p2 delivers m2 without ever delivering m1 although p1 stays in view.
    recorder.record(4.0, DELIVER, "p2", group="g", message_id="m2", sender="p1", clock=2, view_index=0)
    trace = recorder.trace()
    assert not check_causal_prefix(trace).passed


def test_sender_in_view_checker():
    recorder = TraceRecorder()
    recorder.record(0.0, VIEW_INSTALL, "p1", group="g", members=("p1", "p2"), index=0)
    recorder.record(1.0, VIEW_INSTALL, "p1", group="g", members=("p1",), index=1)
    recorder.record(2.0, DELIVER, "p1", group="g", message_id="m", sender="p2", clock=1, view_index=1)
    assert not check_sender_in_view(recorder.trace()).passed


def test_view_sequence_checker_detects_divergence():
    recorder = TraceRecorder()
    recorder.record(0.0, VIEW_INSTALL, "p1", group="g", members=("p1", "p2", "p3"), index=0)
    recorder.record(0.0, VIEW_INSTALL, "p2", group="g", members=("p1", "p2", "p3"), index=0)
    recorder.record(1.0, VIEW_INSTALL, "p1", group="g", members=("p1", "p2"), index=1)
    recorder.record(1.0, VIEW_INSTALL, "p2", group="g", members=("p2", "p3"), index=1)
    assert not check_view_sequences(recorder.trace(), "g", ["p1", "p2"]).passed


def test_virtual_synchrony_checker_detects_mismatch():
    recorder = TraceRecorder()
    for process in ("p1", "p2"):
        recorder.record(0.0, VIEW_INSTALL, process, group="g", members=("p1", "p2", "p3"), index=0)
        recorder.record(5.0, VIEW_INSTALL, process, group="g", members=("p1", "p2"), index=1)
    recorder.record(1.0, DELIVER, "p1", group="g", message_id="m1", sender="p3", clock=1, view_index=0)
    # p2 never delivers m1 in view 0 although both install the same views.
    result = check_same_view_delivery_sets(recorder.trace(), "g", ["p1", "p2"])
    assert not result.passed


def test_check_result_merge():
    trace = _delivery_trace({"p1": ["m1"], "p2": ["m1"]})
    merged = check_total_order(trace, "g").merge(check_sender_in_view(trace))
    assert merged.passed
    assert bool(merged)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_latency_summary():
    summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0 and summary.maximum == 4.0
    assert summarize_latencies([]) == LatencySummary.empty()


def test_build_report_from_real_run():
    config = NewtopConfig(omega=2.0, suspicion_timeout=8.0)
    cluster = NewtopCluster(["P1", "P2", "P3"], config=config, seed=3)
    cluster.create_group("g")
    for i in range(5):
        cluster["P1"].multicast("g", i)
    cluster.run(60)
    report = build_report(cluster.trace(), cluster.network.stats, duration=60.0, group="g")
    assert report.application_sends == 5
    assert report.application_deliveries == 15
    assert report.delivery_latency.count == 15
    assert report.throughput > 0
    assert report.null_messages > 0
    flattened = report.as_dict()
    assert flattened["application_sends"] == 5.0
    ratio = messages_per_delivered_multicast(cluster.trace(), cluster.network.stats, "g")
    assert ratio > 0


def test_view_agreement_latency_metric():
    recorder = TraceRecorder()
    recorder.record(10.0, SUSPECT, "p1", group="g", target="p3", last_number=4)
    recorder.record(14.0, VIEW_INSTALL, "p1", group="g", members=("p1", "p2"), index=1)
    latency = view_agreement_latency(recorder.trace(), "g", "p3")
    assert latency == {"p1": pytest.approx(4.0)}


# ----------------------------------------------------------------------
# Overhead models
# ----------------------------------------------------------------------
def test_newtop_overhead_independent_of_group_size():
    assert newtop_overhead_bytes(3) == newtop_overhead_bytes(100)
    assert newtop_overhead_bytes(10, groups_per_process=8) == newtop_overhead_bytes(10)
    assert newtop_overhead_bytes(10, asymmetric=True) > newtop_overhead_bytes(10)


def test_isis_overhead_grows_with_group_size_and_groups():
    assert isis_overhead_bytes(50) > isis_overhead_bytes(5)
    assert isis_overhead_bytes(10, groups_per_process=4) > isis_overhead_bytes(10)
    assert isis_overhead_bytes(5) > newtop_overhead_bytes(5)


def test_psync_and_piggyback_overheads():
    assert psync_overhead_bytes(20) > psync_overhead_bytes(4)
    assert psync_overhead_bytes(4, average_predecessors=1.0) < psync_overhead_bytes(4)
    assert piggyback_overhead_bytes(5, unstable_messages=10) > piggyback_overhead_bytes(5, 1)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def test_uniform_workload_is_deterministic_and_sorted():
    workload = UniformWorkload(senders=["P1", "P2"], groups=["g"], rate=0.5, duration=20, seed=3)
    first = workload.sends()
    second = UniformWorkload(senders=["P1", "P2"], groups=["g"], rate=0.5, duration=20, seed=3).sends()
    assert [ (s.time, s.process) for s in first ] == [ (s.time, s.process) for s in second ]
    assert all(first[i].time <= first[i + 1].time for i in range(len(first) - 1))
    assert {send.process for send in first} == {"P1", "P2"}


def test_bursty_workload_produces_bursts():
    workload = BurstyWorkload(senders=["P1"], groups=["g"], burst_size=4, burst_interval=10, duration=30, seed=1)
    sends = workload.sends()
    assert len(sends) >= 8


def test_workload_runner_delivers_everything():
    config = NewtopConfig(omega=2.0, suspicion_timeout=10.0)
    cluster = NewtopCluster(["P1", "P2", "P3"], config=config, seed=5)
    cluster.create_group("g")
    workload = UniformWorkload(senders=["P1", "P2"], groups=["g"], rate=0.3, duration=30, seed=2)
    with pytest.warns(DeprecationWarning):
        runner = WorkloadRunner(cluster, workload)
    runner.run(drain_time=60)
    assert runner.scheduled_count > 0
    assert runner.delivered_everywhere("g")


def test_workload_runner_is_a_deprecation_shim():
    """The legacy module must not import the deprecated cluster shims; its
    runner warns and points at the repro.workloads replacement."""
    import repro.analysis.workloads as legacy

    assert "NewtopCluster" not in vars(legacy)
    cluster = NewtopCluster(
        ["P1", "P2"], config=NewtopConfig(omega=2.0, suspicion_timeout=10.0), seed=1
    )
    cluster.create_group("g")
    with pytest.warns(DeprecationWarning, match="OpenLoopClient"):
        WorkloadRunner(
            cluster,
            UniformWorkload(senders=["P1"], groups=["g"], rate=0.2, duration=10, seed=1),
        )
