"""Unit and integration tests for :mod:`repro.obs` (PR 7).

Covers the metrics registry, the simulated-time sampler (including its
park/resume contract with unbounded ``sim.run()``), the hot-path profiler's
label categorization, the span-breakdown sink, the ``observe=`` coercion
and session wiring, and the report renderer / CLI.  The determinism half of
the contract -- observation never changes a run -- is pinned separately in
``tests/test_hot_path_equivalence.py``.
"""

import json
import os
import sys

import pytest

from repro.api import Session
from repro.net.simulator import Simulator
from repro.net.trace import DELIVER, RECEIVE, SEND, TraceEvent
from repro.obs import (
    HotPathProfiler,
    MetricsRegistry,
    Observation,
    SimTimeSampler,
    SpanBreakdownSink,
    TraceCounterSink,
    render_document,
    render_obs,
)
from repro.obs.profiler import NESTED_SECTIONS
from repro.obs.report import find_obs_blocks


def _benchmarks_on_path():
    benchmarks_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    if benchmarks_dir not in sys.path:
        sys.path.insert(0, benchmarks_dir)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_registry_instruments_are_idempotent_by_name():
    registry = MetricsRegistry()
    counter = registry.counter("a.count")
    counter.value += 3
    assert registry.counter("a.count") is counter
    assert registry.read_counters() == {"a.count": 3}
    gauge = registry.gauge("a.depth", lambda: 7)
    assert registry.gauge("a.depth", lambda: 99) is gauge
    assert registry.read_gauges()["a.depth"] == 7


def test_push_gauge_tracks_value_and_peak():
    registry = MetricsRegistry()
    gauge = registry.push_gauge("blocked")
    gauge.adjust(+1)
    gauge.adjust(+1)
    gauge.adjust(-1)
    gauge.adjust(+1)
    assert gauge.value == 2
    assert gauge.peak == 2
    snapshot = registry.snapshot()
    assert snapshot["gauges"]["blocked"] == {"value": 2, "peak": 2}


def test_histogram_buckets_mean_and_overflow():
    registry = MetricsRegistry()
    hist = registry.histogram("batch", bounds=[1, 2, 4])
    for value in (1, 1, 2, 3, 4, 9):
        hist.record(value)
    snap = hist.snapshot()
    assert snap["count"] == 6
    assert snap["max"] == 9
    assert snap["mean"] == pytest.approx(20 / 6, abs=1e-3)
    assert snap["buckets"] == {"le_1": 2, "le_2": 1, "le_4": 2, "overflow": 1}


def test_sum_gauge_aggregates_contributors():
    registry = MetricsRegistry()
    roster = registry.sum_gauge("queues.depth")
    queues = [[1, 2], [3], []]
    for queue in queues:
        roster.add(lambda q=queue: len(q))
    assert registry.read_gauges()["queues.depth"] == 3
    queues[2].append("x")
    assert registry.read_gauges()["queues.depth"] == 4
    # Same name returns the same roster (no double registration).
    assert registry.sum_gauge("queues.depth") is roster


# ----------------------------------------------------------------------
# Simulated-time sampler
# ----------------------------------------------------------------------
def test_sampler_samples_on_interval_and_parks_when_idle():
    registry = MetricsRegistry()
    counter = registry.counter("work.done")
    sampler = SimTimeSampler(registry, interval=2.0)
    sim = Simulator(seed=0)
    sampler.attach(sim)
    for at in (1.0, 3.0, 5.0):
        sim.schedule_at(at, lambda: setattr(counter, "value", counter.value + 10))
    sim.run()  # must terminate: the sampler parks once the queue drains
    assert sampler.times == [2.0, 4.0, 6.0]
    assert sampler.counter_columns["work.done"] == [10, 20, 30]
    assert sampler._deltas("work.done") == [10, 10, 10]
    # Parked: pushing more time through resumes sampling from "now".
    sim.schedule(1.5, lambda: None)
    sampler.ensure_running()
    sim.run()
    assert sampler.times == [2.0, 4.0, 6.0, 8.0]


def test_sampler_backfills_late_instruments():
    registry = MetricsRegistry()
    sampler = SimTimeSampler(registry, interval=1.0)
    sim = Simulator(seed=0)
    sampler.attach(sim)
    sim.schedule_at(1.5, lambda: registry.counter("late").__setattr__("value", 5))
    sim.schedule_at(2.5, lambda: None)
    sim.run()
    # The late counter's column is padded with zeros for missed samples.
    assert sampler.counter_columns["late"] == [0, 5, 5][: len(sampler.times)]


def test_sampler_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        SimTimeSampler(MetricsRegistry(), interval=0.0)


def test_trace_counter_sink_and_messages_per_delivery():
    registry = MetricsRegistry()
    sink = TraceCounterSink(registry)
    sampler = SimTimeSampler(registry, interval=10.0)
    sim = Simulator(seed=0)
    sampler.attach(sim)

    def emit(kind, mid):
        sink.on_event(
            TraceEvent(time=sim.now, kind=kind, process="p1", group="g",
                       message_id=mid, sender="p1", clock=1, details=(), seq=0)
        )

    # Interval 1: 6 sends (2 app + 4 null) and 2 deliveries -> 3.0.
    sim.schedule_at(1.0, lambda: [emit(SEND, "m1"), emit(SEND, "m2")])
    sim.schedule_at(2.0, lambda: [emit("null_send", f"n{i}") for i in range(4)])
    sim.schedule_at(3.0, lambda: [emit(DELIVER, "m1"), emit(DELIVER, "m2")])
    # Interval 2: 2 null sends, no deliveries -> None.
    sim.schedule_at(12.0, lambda: [emit("null_send", "n9"), emit("null_send", "n10")])
    sim.schedule_at(13.0, lambda: None)
    sim.run()
    assert registry.read_counters()["trace.send"] == 2
    assert registry.read_counters()["trace.null_send"] == 6
    assert sampler.messages_per_delivery_series() == [3.0, None]


# ----------------------------------------------------------------------
# Hot-path profiler
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "label, category",
    [
        ("deliver ->P17", "delivery_batch"),
        ("suspector", "timer_fire:suspector"),
        ("time-silence", "timer_fire:time_silence"),
        ("scenario crash P3", "scenario_event"),
        ("obs:sample", "obs_sampler"),
        ("workload arrivals", "workload"),
        ("", "uncategorized"),
        ("retransmit: m17", "timer_fire:retransmit"),
    ],
)
def test_profiler_categorizes_labels(label, category):
    assert HotPathProfiler._categorize(label) == category


def test_profiler_totals_exclude_nested_sections():
    profiler = HotPathProfiler()
    profiler.record_event("deliver ->P1", 0.5)
    profiler.record_event("deliver ->P2", 0.3)
    profiler.record_event("suspector", 0.2)
    profiler.record("protocol_receive", 0.4)  # nested inside deliveries
    profiler.record("sink_fanout", 0.1)
    assert profiler.total_seconds == pytest.approx(1.0)
    snap = profiler.snapshot(top_n=2)
    assert snap["total_seconds"] == pytest.approx(1.0)
    assert [entry["section"] for entry in snap["top"]] == [
        "delivery_batch", "protocol_receive",
    ]
    assert snap["sections"]["delivery_batch"]["calls"] == 2
    assert snap["sections"]["delivery_batch"]["share"] == pytest.approx(0.8)
    for name in NESTED_SECTIONS:
        assert snap["sections"][name]["nested"] is True
        assert snap["sections"][name]["share"] is None


# ----------------------------------------------------------------------
# Span breakdowns
# ----------------------------------------------------------------------
def _span_event(time, kind, process, mid):
    return TraceEvent(time=time, kind=kind, process=process, group="g",
                      message_id=mid, sender="p1", clock=1, details=(), seq=0)


def test_span_sink_computes_lifecycle_stages():
    sink = SpanBreakdownSink()
    sink.on_event(_span_event(0.0, SEND, "p1", "m1"))
    sink.on_event(_span_event(1.0, RECEIVE, "p2", "m1"))
    sink.on_event(_span_event(2.0, RECEIVE, "p3", "m1"))
    sink.on_event(_span_event(3.0, DELIVER, "p2", "m1"))
    sink.on_event(_span_event(5.0, DELIVER, "p3", "m1"))
    snap = sink.snapshot()
    assert snap["tracked_messages"] == 1
    assert snap["stages"]["transit"]["count"] == 1
    assert snap["stages"]["transit"]["mean"] == pytest.approx(1.0)
    # ordering_wait: p2 waited 2.0, p3 waited 3.0.
    assert snap["stages"]["ordering_wait"]["count"] == 2
    assert snap["stages"]["ordering_wait"]["mean"] == pytest.approx(2.5)
    # latency: 3.0 and 5.0 after the send.
    assert snap["stages"]["latency"]["mean"] == pytest.approx(4.0)
    # spread: last minus first delivery.
    assert snap["stages"]["spread"]["count"] == 1
    assert snap["stages"]["spread"]["mean"] == pytest.approx(2.0)
    assert snap["stages"]["spread"]["p50"] == pytest.approx(2.0)


def test_span_sink_caps_tracked_messages():
    sink = SpanBreakdownSink(max_tracked=2)
    for index in range(4):
        sink.on_event(_span_event(float(index), SEND, "p1", f"m{index}"))
    assert sink.tracked_messages == 2
    assert sink.dropped_messages == 2
    # Untracked messages are ignored downstream, not crashed on.
    sink.on_event(_span_event(9.0, DELIVER, "p2", "m3"))
    snap = sink.snapshot()
    assert snap["stages"]["latency"] is None


def test_span_sink_close_is_idempotent():
    sink = SpanBreakdownSink()
    sink.on_event(_span_event(0.0, SEND, "p1", "m1"))
    sink.on_event(_span_event(1.0, DELIVER, "p2", "m1"))
    sink.close()
    sink.close()
    assert sink.snapshot()["stages"]["spread"]["count"] == 1


# ----------------------------------------------------------------------
# Observation coercion and session wiring
# ----------------------------------------------------------------------
def test_observation_coercion_modes():
    assert Observation.coerce(None) is None
    assert Observation.coerce(False) is None
    basic = Observation.coerce(True)
    assert basic.sampler is not None and basic.profiler is None and basic.spans is None
    assert basic.journeys is None
    full = Observation.coerce("full")
    assert full.profiler is not None and full.spans is not None
    assert full.journeys is not None
    journeys = Observation.coerce("journeys")
    assert journeys.journeys is not None
    assert journeys.profiler is None and journeys.spans is None
    custom = Observation.coerce({"sampler": False, "profiler": True})
    assert custom.sampler is None and custom.profiler is not None
    prebuilt = Observation(spans=True)
    assert Observation.coerce(prebuilt) is prebuilt
    with pytest.raises(ValueError):
        Observation.coerce("loud")
    with pytest.raises(ValueError):
        Observation.coerce(3.14)


def _observed_session(observe):
    session = Session("newtop", seed=5, analysis="online", observe=observe)
    session.spawn(["P1", "P2", "P3"])
    session.group("g")
    for index in range(4):
        session.multicast("P1", "g", f"m-{index}")
        session.run(1.0)
    session.run(25.0)
    return session.result()


def test_session_observe_metrics_block():
    result = _observed_session(True)
    assert result.passed
    obs = result.obs
    assert set(obs) == {"metrics", "samples"}
    counters = obs["metrics"]["counters"]
    assert counters["trace.deliver"] == result.deliveries
    assert counters["sim.events_fired"] > 0
    assert counters["transport.sent.data"] > 0
    assert "sim.heap_live" in obs["metrics"]["gauges"]
    samples = obs["samples"]
    assert samples["times"], "sampler took no samples"
    assert len(samples["counters"]["trace.deliver"]) == len(samples["times"])
    assert any(v is not None for v in samples["messages_per_delivery"])


def test_session_observe_full_block():
    result = _observed_session("full")
    obs = result.obs
    assert set(obs) == {"metrics", "samples", "profile", "spans", "journeys"}
    assert obs["profile"]["total_seconds"] > 0
    top_sections = [entry["section"] for entry in obs["profile"]["top"]]
    assert "delivery_batch" in top_sections
    spans = obs["spans"]
    assert spans["tracked_messages"] == 4
    assert spans["stages"]["latency"]["count"] == result.deliveries
    # Transport batch sizes were histogrammed.
    assert obs["metrics"]["histograms"]["transport.delivery_batch_size"]["count"] > 0
    # Cause counters exactly partition the transport send total.
    counters = obs["metrics"]["counters"]
    by_cause = obs["journeys"]["sends_by_cause"]
    assert sum(by_cause.values()) == counters["transport.sends"]


def test_unobserved_session_has_no_obs_and_no_instruments():
    session = Session("newtop", seed=5)
    assert session.observation is None
    assert session.sim.metrics is None and session.sim.profiler is None
    assert session.sim.journeys is None
    session.spawn(["P1", "P2"])
    session.group("g")
    session.run(5.0)
    assert session.result().obs is None


# ----------------------------------------------------------------------
# Report rendering and CLI
# ----------------------------------------------------------------------
def test_render_obs_mentions_every_section():
    result = _observed_session("full")
    text = render_obs(result.obs, title="obs")
    assert "metrics" in text
    assert "messages per delivery over time" in text
    assert "top hotspots" in text
    assert "delivery_batch" in text
    assert "ordering_wait" in text


def test_render_document_walks_nested_obs_blocks():
    result = _observed_session(True)
    document = {
        "benchmark": "unit",
        "scale": "tiny",
        "schema_version": 2,
        "cells": [{"stack": "newtop", "obs": result.obs}],
    }
    assert [path for path, _ in find_obs_blocks(document)] == ["cells[0].obs"]
    text = render_document(document)
    assert "== unit ==" in text
    assert "obs @ cells[0].obs" in text
    bare = render_document({"benchmark": "empty"})
    assert "no obs blocks" in bare


def test_report_cli_renders_file(tmp_path, capsys):
    from repro.obs.__main__ import main

    result = _observed_session(True)
    path = tmp_path / "BENCH_unit.json"
    path.write_text(json.dumps({"benchmark": "unit", "obs": result.obs}))
    assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "== unit ==" in out and "obs @ obs" in out


# ----------------------------------------------------------------------
# Benchmark harness integration (latency percentiles + JSON stamps)
# ----------------------------------------------------------------------
def test_metrics_sink_snapshot_carries_percentiles():
    result = _observed_session(True)
    latency = result.metrics["latency"]
    assert latency["count"] == result.deliveries
    assert latency["min"] <= latency["p50"] <= latency["p95"] <= latency["p99"]
    assert latency["p99"] <= latency["max"]


def test_latency_block_prefers_metrics_snapshot():
    _benchmarks_on_path()
    from common import latency_block

    result = _observed_session(True)
    assert latency_block(result) is result.metrics["latency"]

    class _Bare:
        metrics = None
        latency_reservoir = None

    assert latency_block(_Bare()) is None


def test_write_bench_json_stamps_provenance(tmp_path):
    _benchmarks_on_path()
    from common import BENCH_SCHEMA_VERSION, write_bench_json

    path = tmp_path / "BENCH_stamp.json"
    document = write_bench_json(
        str(path), "unit", "tiny", {"rows": []}, seed=7, wall_seconds=0.25
    )
    on_disk = json.loads(path.read_text())
    assert on_disk == document
    assert document["schema_version"] == BENCH_SCHEMA_VERSION == 2
    assert document["python_version"].count(".") == 2
    assert isinstance(document["git_sha"], str) and document["git_sha"]
    with pytest.raises(ValueError):
        write_bench_json(str(path), "unit", "tiny", {"git_sha": "collision"})
