"""Tier-1 tests for :mod:`repro.parallel` and its integration points.

Three layers are pinned here:

* the executor itself -- pooled results equal inline results, a worker
  crash fails only its unit, timeouts interrupt runaway units, progress
  events stream;
* **seed-stable sharding** -- the ISSUE's determinism contract: a sweep
  grid and a scenario batch run serially and on a pool must produce
  identical per-cell metrics and checker verdicts (wall clock is the one
  legitimately nondeterministic field);
* the mergeable latency reservoirs that make sharded accounting exact.
"""

import copy
import os
import time

import pytest

from repro.experiments import SweepSpec, run_sweep
from repro.parallel import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ParallelExecutor,
    WorkUnit,
    run_units,
)
from repro.scenarios import ScenarioExecutionError, churn_scenario, run_scenarios
from repro.workloads import LatencyReservoir


# ----------------------------------------------------------------------
# Unit functions must be module-level so workers can import them.
# ----------------------------------------------------------------------
def _square(value):
    return value * value


def _fail(value):
    raise RuntimeError(f"unit failed on {value}")


def _die(value):
    os._exit(13)


def _sleep(seconds):
    time.sleep(seconds)
    return seconds


def _log_and_return(value):
    from repro.parallel import worker_log

    worker_log(f"working on {value}")
    return value


# ----------------------------------------------------------------------
# Executor behaviour
# ----------------------------------------------------------------------
def test_pooled_results_match_inline_in_unit_order():
    units = [WorkUnit(f"u{index}", _square, (index,)) for index in range(12)]
    inline = run_units(units, parallel=1)
    pooled = run_units(units, parallel=3)
    assert [result.value for result in inline] == [index * index for index in range(12)]
    assert [result.value for result in pooled] == [result.value for result in inline]
    assert all(result.status == STATUS_OK for result in pooled)


def test_worker_crash_fails_only_its_unit():
    units = [
        WorkUnit("ok-1", _square, (3,)),
        WorkUnit("boom", _die, (0,)),
        WorkUnit("ok-2", _square, (4,)),
        WorkUnit("ok-3", _square, (5,)),
    ]
    results = ParallelExecutor(pool_size=2).run(units)
    by_id = {result.unit_id: result for result in results}
    assert by_id["boom"].status == STATUS_CRASHED
    assert "exited with code 13" in by_id["boom"].error
    assert [by_id[uid].value for uid in ("ok-1", "ok-2", "ok-3")] == [9, 16, 25]


def test_unit_error_is_reported_with_traceback():
    results = ParallelExecutor(pool_size=2).run(
        [WorkUnit("bad", _fail, (7,)), WorkUnit("good", _square, (7,))]
    )
    bad, good = results
    assert bad.status == STATUS_ERROR and "unit failed on 7" in bad.error
    assert good.status == STATUS_OK and good.value == 49


def test_timeout_interrupts_runaway_unit():
    start = time.time()
    results = ParallelExecutor(pool_size=2, timeout=0.5).run(
        [WorkUnit("stuck", _sleep, (30,)), WorkUnit("fine", _square, (2,))]
    )
    assert time.time() - start < 10
    assert results[0].status == STATUS_TIMEOUT
    assert results[1].status == STATUS_OK and results[1].value == 4


def test_progress_and_log_events_stream():
    events = []
    run_units(
        [WorkUnit("a", _log_and_return, (1,)), WorkUnit("b", _log_and_return, (2,))],
        parallel=2,
        on_event=lambda kind, unit_id, worker, payload: events.append((kind, unit_id, payload)),
    )
    kinds = [event[0] for event in events]
    assert kinds.count("start") == 2 and kinds.count("done") == 2
    logs = [payload for kind, _uid, payload in events if kind == "log"]
    assert sorted(logs) == ["working on 1", "working on 2"]


def test_duplicate_unit_ids_rejected():
    with pytest.raises(ValueError):
        ParallelExecutor(pool_size=2).run(
            [WorkUnit("dup", _square, (1,)), WorkUnit("dup", _square, (2,))]
        )


# ----------------------------------------------------------------------
# Seed-stable sharding: the determinism contract
# ----------------------------------------------------------------------
def _strip_wall(cells):
    cells = copy.deepcopy(cells)
    for cell in cells:
        cell.pop("wall_seconds", None)
    return cells


def test_sweep_grid_parallel_equals_serial():
    """The ISSUE acceptance pin: run_sweep(spec, parallel=N) yields a
    report identical to the serial run, cell for cell."""
    spec = SweepSpec(
        stacks=("newtop-symmetric", "newtop-asymmetric", "lamport_ack"),
        profiles=("poisson",),
        loads=(0.5, 1.0),
        faults=("none", "crash"),
        processes=8,
        groups=2,
        group_size=5,
        duration=12.0,
        drain=20.0,
        seed=7,
    )
    serial = run_sweep(spec)
    pooled = run_sweep(spec, parallel=2)
    assert serial.spec == pooled.spec
    assert _strip_wall(serial.cells) == _strip_wall(pooled.cells)
    assert serial.passed and pooled.passed


def _scenario_fingerprint(result):
    return (
        result.name,
        result.stack,
        result.passed,
        tuple(result.checks.violations),
        result.agreement_sets,
        result.deliveries,
        result.messages_sent,
        result.delivery_events,
        result.sim_time,
        result.events_processed,
        result.trace_events,
        result.workload,
    )


def test_scenario_batch_parallel_equals_serial():
    configs = [
        churn_scenario(
            n_processes=12, n_groups=3, group_size=5, crashes=1, leaves=1,
            formations=1, messages_per_sender=2, seed=seed,
        )
        for seed in (3, 5, 8)
    ]
    serial = run_scenarios(configs, analysis="online")
    pooled = run_scenarios(configs, parallel=2, analysis="online")
    assert [_scenario_fingerprint(r) for r in serial] == [
        _scenario_fingerprint(r) for r in pooled
    ]
    assert all(result.passed for result in pooled)


def test_scenario_batch_surfaces_worker_casualties():
    good = churn_scenario(n_processes=8, n_groups=2, group_size=4,
                          crashes=0, leaves=0, messages_per_sender=1, seed=2)
    bad = dict(good)
    bad["groups"] = [{"id": "broken", "members": ["nobody"]}]
    with pytest.raises(ScenarioExecutionError):
        run_scenarios([good, bad], parallel=2, analysis="online")


def test_failed_sweep_cell_keeps_its_grid_position():
    """A crashed/timed-out cell must not kill the sweep: its row keeps
    the coordinates with passed=False (exercised via a timeout so small
    the cell cannot finish)."""
    spec = SweepSpec(
        stacks=("newtop-symmetric",), profiles=("poisson",), loads=(1.0,),
        faults=("none",), processes=8, groups=2, group_size=5,
        duration=12.0, drain=20.0, seed=7,
    )
    report = run_sweep(spec, parallel=2, timeout=1e-9)
    (cell,) = report.cells
    assert cell["passed"] is False
    assert cell["execution_status"] == STATUS_TIMEOUT
    assert report.cell("newtop-symmetric", "poisson", 1.0, "none") is cell
    assert not report.passed
    # The JSON-recording path must survive metric-less failure rows.
    document = report.as_dict()
    assert document["curves"] == {}


# ----------------------------------------------------------------------
# Mergeable latency reservoirs
# ----------------------------------------------------------------------
def test_reservoir_exact_moments_and_undercapacity_merge():
    left, right = LatencyReservoir(capacity=64), LatencyReservoir(capacity=64)
    for value in range(10):
        left.add(float(value))
    for value in range(10, 30):
        right.add(float(value))
    merged = LatencyReservoir.merged([left, right], capacity=64)
    assert merged.count == 30
    assert merged.mean == pytest.approx(sum(range(30)) / 30)
    assert merged.min == 0.0 and merged.max == 29.0
    # Under capacity the merged pool is the exact union.
    assert sorted(merged.samples) == [float(v) for v in range(30)]
    summary = merged.summary()
    assert summary["count"] == 30 and summary["p50"] == pytest.approx(14.0, abs=1.0)


def test_reservoir_compaction_is_deterministic_and_quantile_faithful():
    def build(seed):
        reservoir = LatencyReservoir(capacity=128, seed=seed)
        for value in range(1000):
            reservoir.add(float(value))
        return reservoir

    assert build(9).samples == build(9).samples  # same stream, same reservoir
    merged = LatencyReservoir.merged([build(9), build(10)], capacity=128)
    assert merged.count == 2000
    assert len(merged.samples) == 128
    assert merged.min == 0.0 and merged.max == 999.0
    # Systematic rank selection keeps the quantiles close to truth (the
    # tolerance is ~3 sigma for 256 uniform draws compacted to 128).
    assert merged.summary()["p50"] == pytest.approx(500.0, rel=0.2)


def test_reservoir_from_moments_bounds_percentiles():
    sketch = LatencyReservoir.from_moments(100, 2.0, 1.0, 8.0)
    summary = sketch.summary()
    assert summary["count"] == 100
    assert 1.0 <= summary["p50"] <= 8.0
    assert summary["p99"] <= 8.0
    empty = LatencyReservoir.from_moments(0, 0.0, 0.0, 0.0)
    assert empty.summary()["count"] == 0


def test_reservoir_merge_weights_sources_by_count():
    """A low-count reservoir must not dominate a high-count sketch: the
    merged pool is apportioned by observation count, not pool length."""
    sketch = LatencyReservoir.from_moments(100_000, 2.0, 1.9, 2.1)
    outliers = LatencyReservoir(capacity=256, seed=1)
    for _ in range(100):
        outliers.add(50.0)
    merged = LatencyReservoir.merged([sketch, outliers], capacity=1000)
    summary = merged.summary()
    assert summary["count"] == 100_100
    # 99.9% of the observations sit near 2.0, so the median must too --
    # even though the outlier source supplied 33x more raw samples.
    assert summary["p50"] == pytest.approx(2.0, abs=0.2)
    assert summary["max"] == 50.0
