"""Integration tests for dynamic group formation (§5.3) and the public
process API (error handling, crash semantics, cluster helpers)."""

import pytest

from harness import NewtopCluster

from repro.analysis import check_all
from repro.core import (
    AlreadyMemberError,
    NewtopConfig,
    NewtopProcess,
    NotAMemberError,
    OrderingMode,
    ProcessCrashedError,
)
from repro.core.group_formation import FormationStatus
from repro.net.trace import GROUP_FORMED

FAST = dict(omega=1.5, suspicion_timeout=6.0, suspector_check_interval=0.5)


def _cluster(names, seed=1, **overrides):
    config = NewtopConfig(**FAST).replace(**overrides)
    return NewtopCluster(names, config=config, seed=seed)


# ----------------------------------------------------------------------
# Group formation
# ----------------------------------------------------------------------
def test_group_formation_reaches_all_members():
    cluster = _cluster(["P1", "P2", "P3"], seed=2)
    handle = cluster["P1"].form_group("gn", ["P1", "P2", "P3"])
    assert cluster.run_until(lambda: handle.formed, timeout=60)
    assert cluster.run_until(
        lambda: all(cluster[p].is_member("gn") for p in ("P1", "P2", "P3")), timeout=60
    )
    assert cluster.run_until(
        lambda: all(
            not cluster[p].endpoint("gn").in_formation_wait for p in ("P1", "P2", "P3")
        ),
        timeout=60,
    )
    assert cluster.trace().events(kind=GROUP_FORMED)


def test_formed_group_carries_ordered_traffic():
    cluster = _cluster(["P1", "P2", "P3"], seed=3)
    handle = cluster["P2"].form_group("gn", ["P1", "P2", "P3"])
    cluster.run_until(lambda: handle.formed, timeout=60)
    cluster.run(20)
    for i in range(3):
        cluster["P1"].multicast("gn", f"x{i}")
        cluster["P3"].multicast("gn", f"y{i}")
    cluster.run(80)
    orders = [tuple(cluster[p].delivered_payloads("gn")) for p in ("P1", "P2", "P3")]
    assert len(set(orders)) == 1
    assert len(orders[0]) == 6
    assert check_all(cluster.trace()).passed


def test_formation_alongside_existing_group_keeps_cross_group_order():
    # The migration pattern: members of g1 form g2 while g1 keeps carrying
    # traffic; messages of both groups stay totally ordered at the common
    # members.
    cluster = _cluster(["P1", "P2", "P3"], seed=4)
    cluster.create_group("g1", ["P1", "P2"])
    cluster["P1"].multicast("g1", "pre-formation")
    cluster.run(10)
    handle = cluster["P3"].form_group("g2", ["P1", "P2", "P3"])
    cluster.run_until(lambda: handle.formed, timeout=60)
    cluster.run(20)
    cluster["P1"].multicast("g1", "during")
    cluster["P3"].multicast("g2", "new-group")
    cluster.run(80)
    assert "pre-formation" in cluster["P2"].delivered_payloads("g1")
    assert "new-group" in cluster["P1"].delivered_payloads("g2")
    assert check_all(cluster.trace()).passed


def test_formation_vetoed_by_policy():
    config = NewtopConfig(**FAST)
    cluster = NewtopCluster(["P1", "P2"], config=config, seed=5)
    # Recreate P2 with a vote policy that declines every invitation.
    cluster.processes["P2"] = NewtopProcess(
        "P2-veto",
        cluster.sim,
        cluster.transport,
        recorder=cluster.recorder,
        config=config,
        formation_vote_policy=lambda group, members: False,
    )
    handle = cluster["P1"].form_group("gn", ["P1", "P2-veto"])
    cluster.run(config.formation_timeout + 20)
    assert not handle.formed
    assert not cluster["P1"].is_member("gn")


def test_formation_timeout_without_responses():
    config = NewtopConfig(**FAST, formation_timeout=10.0)
    cluster = NewtopCluster(["P1"], config=config, seed=6)
    # P9 does not exist, so no vote ever arrives and the attempt fails.
    handle = cluster["P1"].form_group("gn", ["P1", "P9"])
    cluster.run(40)
    assert handle.status in (FormationStatus.VOTING, FormationStatus.FAILED)
    assert not cluster["P1"].is_member("gn")


def test_formation_start_number_raises_clock():
    cluster = _cluster(["P1", "P2"], seed=7)
    cluster.create_group("busy", ["P1", "P2"])
    for i in range(10):
        cluster["P1"].multicast("busy", i)
    cluster.run(40)
    clock_before = cluster["P2"].clock.value
    handle = cluster["P1"].form_group("gn", ["P1", "P2"])
    cluster.run_until(lambda: handle.formed, timeout=60)
    cluster.run(30)
    floor = cluster["P2"].endpoint("gn").engine.d_floor
    assert floor >= 1
    assert cluster["P2"].clock.value >= clock_before


# ----------------------------------------------------------------------
# Public API error handling
# ----------------------------------------------------------------------
def test_multicast_requires_membership():
    cluster = _cluster(["P1", "P2"])
    cluster.create_group("g", ["P1", "P2"])
    with pytest.raises(NotAMemberError):
        cluster["P1"].multicast("nope", "x")


def test_create_group_twice_rejected():
    cluster = _cluster(["P1", "P2"])
    cluster.create_group("g")
    with pytest.raises(AlreadyMemberError):
        cluster["P1"].create_group("g", ["P1", "P2"])


def test_create_group_requires_self_membership():
    cluster = _cluster(["P1", "P2"])
    with pytest.raises(NotAMemberError):
        cluster["P1"].create_group("other", ["P2"])


def test_crashed_process_rejects_operations():
    cluster = _cluster(["P1", "P2"])
    cluster.create_group("g")
    cluster.crash("P1")
    with pytest.raises(ProcessCrashedError):
        cluster["P1"].multicast("g", "x")
    # Crash is idempotent.
    cluster["P1"].crash()
    assert cluster["P1"].crashed


def test_groups_property_and_views():
    cluster = _cluster(["P1", "P2", "P3"])
    cluster.create_group("g1", ["P1", "P2"])
    cluster.create_group("g2", ["P1", "P2", "P3"])
    assert cluster["P1"].groups == ["g1", "g2"]
    assert cluster["P3"].groups == ["g2"]
    assert cluster["P1"].view("g1").sorted_members() == ("P1", "P2")
    assert cluster["P3"].is_member("g2")
    assert not cluster["P3"].is_member("g1")


def test_delivery_callbacks_receive_all_fields():
    cluster = _cluster(["P1", "P2"])
    cluster.create_group("g")
    seen = []
    cluster["P2"].add_delivery_callback(
        lambda group, sender, payload, msg_id: seen.append((group, sender, payload, msg_id))
    )
    message_id = cluster["P1"].multicast("g", {"k": 1})
    cluster.run_until_delivered(message_id, timeout=60)
    assert seen and seen[0][0] == "g" and seen[0][1] == "P1"
    assert seen[0][2] == {"k": 1} and seen[0][3] == message_id


def test_cluster_helpers():
    cluster = _cluster(["P1", "P2", "P3"])
    cluster.create_group("g")
    assert cluster.process_ids == ["P1", "P2", "P3"]
    assert len(list(iter(cluster))) == 3
    assert len(cluster.members_of("g")) == 3
    cluster.crash("P3")
    assert len(cluster.members_of("g")) == 2
    cluster.run(1.0)
    assert cluster.sim.now >= 1.0


def test_flow_control_window_defers_but_delivers_everything():
    cluster = _cluster(["P1", "P2", "P3"], seed=9, flow_control_window=2)
    cluster.create_group("g")
    for i in range(8):
        cluster["P1"].multicast("g", f"m{i}")
    cluster.run(200)
    for process in cluster:
        assert process.delivered_payloads("g") == [f"m{i}" for i in range(8)]
    assert check_all(cluster.trace()).passed
