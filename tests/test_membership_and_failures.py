"""Integration tests for the fault-tolerant, dynamic side of Newtop (§5):
failure suspicion, refutation, membership agreement, view installation,
partitions, departures, and the paper's Examples 1-3."""

import pytest

from repro.analysis import check_all
from repro.analysis.checkers import (
    check_same_view_delivery_sets,
    check_total_order,
    check_view_sequences,
)
from harness import NewtopCluster

from repro.core import NewtopConfig, OrderingMode
from repro.net.failures import FailureSchedule
from repro.net.trace import CONFIRM, REFUTE, SUSPECT, VIEW_INSTALL

FAST = dict(omega=1.5, suspicion_timeout=6.0, suspector_check_interval=0.5)


def _cluster(names, seed=1, **overrides):
    config = NewtopConfig(**FAST).replace(**overrides)
    return NewtopCluster(names, config=config, seed=seed)


# ----------------------------------------------------------------------
# Crash detection and agreement
# ----------------------------------------------------------------------
def test_crashed_member_is_agreed_out_of_the_view():
    cluster = _cluster(["P1", "P2", "P3", "P4"], seed=2)
    cluster.create_group("g")
    cluster.run(5)
    cluster.crash("P4")
    cluster.run(120)
    survivors = ["P1", "P2", "P3"]
    for name in survivors:
        view = cluster[name].view("g")
        assert view.sorted_members() == ("P1", "P2", "P3")
        assert view.index == 1
    trace = cluster.trace()
    assert trace.events(kind=SUSPECT)
    assert trace.events(kind=CONFIRM)
    assert check_view_sequences(trace, "g", survivors).passed


def test_delivery_continues_after_member_crash():
    cluster = _cluster(["P1", "P2", "P3"], seed=3)
    cluster.create_group("g")
    cluster["P1"].multicast("g", "before")
    cluster.run(20)
    cluster.crash("P3")
    cluster.run(100)
    after_id = cluster["P1"].multicast("g", "after")
    assert cluster.run_until_delivered(after_id, processes=["P1", "P2"], timeout=120)
    for name in ("P1", "P2"):
        assert cluster[name].delivered_payloads("g") == ["before", "after"]
    result = check_all(cluster.trace(), view_agreement_sets={"g": ["P1", "P2"]})
    assert result.passed, result.violations


def test_md1_no_delivery_from_excluded_sender():
    cluster = _cluster(["P1", "P2", "P3"], seed=4)
    cluster.create_group("g")
    cluster.run(5)
    cluster.crash("P3")
    cluster.run(100)
    # Anything P3 managed to send was delivered while it was in the view;
    # nothing is delivered from it afterwards (MD1, checked over the trace).
    result = check_all(cluster.trace(), view_agreement_sets={"g": ["P1", "P2"]})
    assert result.passed, result.violations


def test_wrong_suspicion_is_refuted_and_member_kept():
    # A transient one-directional outage makes P1 suspect P3; P2 still hears
    # P3 and must refute, after which P3 stays in everybody's view.
    cluster = _cluster(["P1", "P2", "P3"], seed=5, suspicion_timeout=5.0)
    cluster.create_group("g")
    cluster.run(3)
    schedule = FailureSchedule().drop_between(3.0, ["P3"], ["P1"], duration=8.0)
    cluster.install_failures(schedule)
    cluster.run(60)
    trace = cluster.trace()
    assert trace.events(kind=REFUTE), "expected the false suspicion to be refuted"
    for name in ("P1", "P2", "P3"):
        assert cluster[name].view("g").sorted_members() == ("P1", "P2", "P3")
    # Traffic still flows afterwards.
    message_id = cluster["P3"].multicast("g", "still-here")
    assert cluster.run_until_delivered(message_id, timeout=80)
    assert check_all(cluster.trace()).passed


def test_voluntary_departure_is_handled_like_silence():
    cluster = _cluster(["P1", "P2", "P3"], seed=6)
    cluster.create_group("g")
    cluster["P3"].multicast("g", "leaving-soon")
    cluster.run(20)
    cluster["P3"].leave_group("g")
    cluster.run(100)
    for name in ("P1", "P2"):
        assert cluster[name].view("g").sorted_members() == ("P1", "P2")
    assert not cluster["P3"].is_member("g")
    # The departed process keeps no view of the group and cannot multicast.
    from repro.core.errors import DepartedGroupError

    with pytest.raises(DepartedGroupError):
        cluster["P3"].multicast("g", "zombie")


# ----------------------------------------------------------------------
# Example 1: crash during multicast + dependent crash
# ----------------------------------------------------------------------
def test_example1_orphan_message_is_not_delivered_without_its_cause():
    # Pr crashes while multicasting m so that only Ps receives it; Ps
    # delivers m, multicasts m' (causally after m) and crashes before it can
    # refute the suspicion of Pr.  The survivors must either deliver both or
    # neither -- they must never deliver the orphan m' alone (MD5).
    cluster = _cluster(["Pi", "Pj", "Pr", "Ps"], seed=7)
    cluster.create_group("g")
    cluster.run(3)

    # Pr multicasts m such that only Ps receives it.
    cluster.network.add_filter(
        lambda src, dst, payload: not (src == "Pr" and dst in ("Pi", "Pj"))
    )
    cluster["Pr"].multicast("g", "m")
    cluster.run(0.1)
    cluster.crash("Pr")

    # Ps reacts to m by multicasting m' and then crashes shortly after.
    def react(group, sender, payload, msg_id):
        if payload == "m":
            cluster["Ps"].multicast("g", "m-prime")

    cluster["Ps"].add_delivery_callback(react)
    cluster.sim.schedule(12.0, cluster.crash, "Ps")
    cluster.run(200)

    for name in ("Pi", "Pj"):
        payloads = cluster[name].delivered_payloads("g")
        assert "m-prime" not in payloads or "m" in payloads
        view = cluster[name].view("g")
        assert view.sorted_members() == ("Pi", "Pj")
    result = check_all(cluster.trace(), view_agreement_sets={"g": ["Pi", "Pj"]})
    assert result.passed, result.violations


# ----------------------------------------------------------------------
# Example 3 / partitions: concurrent subgroups stabilise
# ----------------------------------------------------------------------
def test_partition_produces_disjoint_stable_subgroup_views():
    cluster = _cluster(["P1", "P2", "P3", "P4", "P5"], seed=8)
    cluster.create_group("g")
    cluster.run(5)
    cluster.partition([["P1", "P2"], ["P3", "P4", "P5"]])
    cluster.run(150)
    minority_view = cluster["P1"].view("g").members
    majority_view = cluster["P3"].view("g").members
    assert minority_view == frozenset({"P1", "P2"})
    assert majority_view == frozenset({"P3", "P4", "P5"})
    assert not (minority_view & majority_view)
    # Views agree within each side (VC1 restricted to the connected side).
    trace = cluster.trace()
    assert check_view_sequences(trace, "g", ["P1", "P2"]).passed
    assert check_view_sequences(trace, "g", ["P3", "P4", "P5"]).passed


def test_both_partition_sides_keep_operating():
    # Unlike primary-partition protocols, the minority side keeps delivering.
    cluster = _cluster(["P1", "P2", "P3", "P4", "P5"], seed=9)
    cluster.create_group("g")
    cluster.run(5)
    cluster.partition([["P1", "P2"], ["P3", "P4", "P5"]])
    cluster.run(150)
    minority_id = cluster["P1"].multicast("g", "minority-side")
    majority_id = cluster["P4"].multicast("g", "majority-side")
    assert cluster.run_until_delivered(minority_id, processes=["P1", "P2"], timeout=100)
    assert cluster.run_until_delivered(
        majority_id, processes=["P3", "P4", "P5"], timeout=100
    )
    assert "minority-side" in cluster["P2"].delivered_payloads("g")
    assert "majority-side" in cluster["P5"].delivered_payloads("g")


def test_signature_views_disjoint_after_partition():
    cluster = _cluster(["P1", "P2", "P3", "P4"], seed=10, use_signature_views=True)
    cluster.create_group("g")
    cluster.run(5)
    cluster.partition([["P1", "P2"], ["P3", "P4"]])
    cluster.run(150)
    side_one = cluster["P1"].endpoint("g").signature_view
    side_two = cluster["P3"].endpoint("g").signature_view
    assert side_one is not None and side_two is not None
    assert not side_one.intersects(side_two)


def test_example2_causal_chain_across_partition_md5_prime():
    # Fig. 2 / Example 2 shape: m1 (from Pk in g1) is lost to a partition;
    # a causally dependent m4 reaches Pi via other groups.  Pi must exclude
    # Pk from its g1 view before (or without ever) delivering anything that
    # causally depends on the lost m1.
    config = NewtopConfig(**FAST)
    cluster = NewtopCluster(["Pi", "Pj", "Pk", "Pq"], config=config, seed=11)
    cluster.create_group("g1", ["Pi", "Pj", "Pk"])
    cluster.create_group("g2", ["Pk", "Pq"])
    cluster.create_group("g3", ["Pq", "Pi", "Pj"])
    cluster.run(5)

    # The partition separates Pk from Pi and Pj exactly while m1 is being
    # multicast, so Pi and Pj never receive m1 but Pq (in g2) hears from Pk.
    cluster.network.add_filter(
        lambda src, dst, payload: not (src == "Pk" and dst in ("Pi", "Pj"))
    )
    cluster["Pk"].multicast("g1", "m1")

    chain_state = {"m2_sent": False, "m4_sent": False}

    def relay(group, sender, payload, msg_id):
        if payload == "m1" and not chain_state["m2_sent"]:
            chain_state["m2_sent"] = True
            cluster["Pk"].multicast("g2", "m2")

    def relay_q(group, sender, payload, msg_id):
        if payload == "m2" and not chain_state["m4_sent"]:
            chain_state["m4_sent"] = True
            cluster["Pq"].multicast("g3", "m4")

    cluster["Pk"].add_delivery_callback(relay)
    cluster["Pq"].add_delivery_callback(relay_q)
    cluster.run(250)

    # m4 must eventually be delivered to Pi (it is in g3 with Pq)...
    assert "m4" in cluster["Pi"].delivered_payloads("g3")
    # ...and by then Pk must have been excluded from Pi's view of g1,
    # because m1 could never be retrieved (MD5' option (b)).
    trace = cluster.trace()
    m4_delivery = [
        event
        for event in trace.events(kind="deliver", process="Pi", group="g3")
        if event.detail("view_index") is not None and event.message_id
    ]
    assert "m1" not in cluster["Pi"].delivered_payloads("g1")
    assert "Pk" not in cluster["Pi"].view("g1").members
    views = trace.events(kind=VIEW_INSTALL, process="Pi", group="g1")
    exclusion_time = None
    for event in views:
        if "Pk" not in event.detail("members", ()):
            exclusion_time = event.time
            break
    m4_time = next(
        event.time
        for event in trace.events(kind="deliver", process="Pi", group="g3")
    )
    assert exclusion_time is not None and exclusion_time <= m4_time
    result = check_all(
        cluster.trace(),
        view_agreement_sets={"g1": ["Pi", "Pj"], "g2": ["Pq"], "g3": ["Pi", "Pj", "Pq"]},
    )
    assert result.passed, result.violations


# ----------------------------------------------------------------------
# Virtual synchrony (MD3) around view changes
# ----------------------------------------------------------------------
def test_virtual_synchrony_same_messages_in_same_view():
    cluster = _cluster(["P1", "P2", "P3", "P4"], seed=12)
    cluster.create_group("g")
    for i in range(3):
        cluster["P1"].multicast("g", f"pre{i}")
    cluster.run(20)
    cluster.crash("P4")
    for i in range(3):
        cluster["P2"].multicast("g", f"mid{i}")
    cluster.run(120)
    for i in range(3):
        cluster["P3"].multicast("g", f"post{i}")
    cluster.run(80)
    trace = cluster.trace()
    survivors = ["P1", "P2", "P3"]
    assert check_same_view_delivery_sets(trace, "g", survivors).passed
    assert check_view_sequences(trace, "g", survivors).passed
    assert check_total_order(trace, "g").passed


def test_block_sends_during_view_change_option():
    # With the ISIS-style closure enabled, sends issued while a view change
    # is pending are deferred rather than transmitted.
    cluster = _cluster(["P1", "P2", "P3"], seed=13, block_sends_during_view_change=True)
    cluster.create_group("g")
    cluster.run(5)
    cluster.crash("P3")
    cluster.run(120)
    message_id = cluster["P1"].multicast("g", "after-change")
    assert cluster.run_until_delivered(message_id, processes=["P1", "P2"], timeout=100)
    assert "after-change" in cluster["P2"].delivered_payloads("g")


def test_two_member_group_partition_each_continues_alone():
    cluster = _cluster(["P1", "P2"], seed=14)
    cluster.create_group("g")
    cluster.run(5)
    cluster.partition([["P1"], ["P2"]])
    cluster.run(120)
    assert cluster["P1"].view("g").members == frozenset({"P1"})
    assert cluster["P2"].view("g").members == frozenset({"P2"})
