"""Integration tests for the symmetric total-order protocol (§4.1)."""

import pytest

from repro.analysis import check_all
from repro.analysis.checkers import check_total_order
from harness import NewtopCluster

from repro.core import NewtopConfig, OrderingMode
from repro.net.latency import ExponentialLatency, UniformLatency
from repro.net.trace import NULL_SEND


def _cluster(names, seed=1, **config_overrides):
    config = NewtopConfig(omega=2.0, suspicion_timeout=8.0).replace(**config_overrides)
    return NewtopCluster(names, config=config, seed=seed)


def test_single_multicast_reaches_every_member_in_order():
    cluster = _cluster(["P1", "P2", "P3"])
    cluster.create_group("g1")
    message_id = cluster["P1"].multicast("g1", "hello")
    assert cluster.run_until_delivered(message_id, timeout=60)
    for process in cluster:
        assert process.delivered_payloads("g1") == ["hello"]


def test_concurrent_senders_agree_on_total_order():
    cluster = _cluster(["P1", "P2", "P3", "P4"], seed=5)
    cluster.create_group("g1")
    for i in range(5):
        cluster["P1"].multicast("g1", f"a{i}")
        cluster["P2"].multicast("g1", f"b{i}")
        cluster["P3"].multicast("g1", f"c{i}")
        cluster.run(0.5)
    cluster.run(60)
    orders = [tuple(process.delivered_payloads("g1")) for process in cluster]
    assert len(set(orders)) == 1
    assert len(orders[0]) == 15
    assert check_total_order(cluster.trace(), "g1").passed


def test_total_order_under_heavy_latency_variance():
    config = NewtopConfig(omega=2.0, suspicion_timeout=30.0)
    cluster = NewtopCluster(
        ["P1", "P2", "P3", "P4", "P5"],
        config=config,
        latency_model=ExponentialLatency(mean=2.0, floor=0.1),
        seed=13,
    )
    cluster.create_group("g1")
    for i in range(4):
        for name in ("P1", "P3", "P5"):
            cluster[name].multicast("g1", f"{name}-{i}")
        cluster.run(1.0)
    cluster.run(150)
    orders = [tuple(process.delivered_payloads("g1")) for process in cluster]
    assert len(set(orders)) == 1
    assert len(orders[0]) == 12
    result = check_all(cluster.trace())
    assert result.passed, result.violations


def test_sender_delivers_its_own_messages_through_the_protocol():
    cluster = _cluster(["P1", "P2"])
    cluster.create_group("g1")
    cluster["P1"].multicast("g1", "mine")
    # Not yet deliverable: P1 has not heard anything numbered >= 1 from P2.
    assert cluster["P1"].delivered_payloads("g1") == []
    cluster.run(30)
    assert cluster["P1"].delivered_payloads("g1") == ["mine"]


def test_time_silence_keeps_delivery_live_with_silent_members():
    # P3 never sends anything; its null messages must still let P1's
    # multicast become deliverable.
    cluster = _cluster(["P1", "P2", "P3"])
    cluster.create_group("g1")
    message_id = cluster["P1"].multicast("g1", "x")
    delivered = cluster.run_until_delivered(message_id, timeout=60)
    assert delivered
    nulls = cluster.trace().events(kind=NULL_SEND)
    assert nulls, "the time-silence mechanism should have produced null messages"


def test_causal_order_across_request_reply():
    cluster = _cluster(["P1", "P2", "P3"])
    cluster.create_group("g1")
    request_id = cluster["P1"].multicast("g1", "request")

    replied = []

    def reply_on_delivery(group, sender, payload, msg_id):
        if payload == "request" and not replied:
            replied.append(cluster["P2"].multicast(group, "reply"))

    cluster["P2"].add_delivery_callback(reply_on_delivery)
    cluster.run(80)
    for process in cluster:
        payloads = process.delivered_payloads("g1")
        assert payloads.index("request") < payloads.index("reply")
    assert check_all(cluster.trace()).passed


def test_larger_group_total_order():
    names = [f"P{i}" for i in range(1, 9)]
    cluster = _cluster(names, seed=21)
    cluster.create_group("big")
    for i, name in enumerate(names):
        cluster[name].multicast("big", f"m{i}")
    cluster.run(80)
    orders = [tuple(process.delivered_payloads("big")) for process in cluster]
    assert len(set(orders)) == 1
    assert len(orders[0]) == len(names)


def test_delivery_latency_bounded_by_time_silence_period():
    # With quiet co-members, a multicast becomes deliverable roughly one
    # omega plus one network delay after it is sent, not arbitrarily later.
    cluster = _cluster(["P1", "P2", "P3"], omega=1.0, suspicion_timeout=5.0)
    cluster.create_group("g1")
    cluster.run(5)
    cluster["P1"].multicast("g1", "probe")
    cluster.run(40)
    latencies = cluster.trace().delivery_latencies("g1")
    assert latencies and max(latencies) < 10.0


def test_message_history_and_view_index_recorded():
    cluster = _cluster(["P1", "P2"])
    cluster.create_group("g1")
    cluster["P1"].multicast("g1", "x")
    cluster.run(30)
    record = cluster["P2"].delivered[0]
    assert record.group == "g1"
    assert record.sender == "P1"
    assert record.view_index == 0
    assert record.clock >= 1
