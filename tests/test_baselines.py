"""Tests for the §6 comparison baselines."""

import pytest

from harness import BaselineCluster

from repro.baselines import (
    FixedSequencerProcess,
    IsisProcess,
    LamportAckProcess,
    PrimaryPartitionMembership,
    PropagationGraphNetwork,
    PsyncProcess,
)
from repro.net.latency import UniformLatency


TOTAL_ORDER_BASELINES = [IsisProcess, LamportAckProcess, FixedSequencerProcess]


@pytest.mark.parametrize("process_class", TOTAL_ORDER_BASELINES)
def test_baseline_total_order_and_completeness(process_class):
    cluster = BaselineCluster(process_class, ["A", "B", "C", "D"], seed=7)
    expected = 0
    for i in range(4):
        cluster["A"].multicast(f"a{i}")
        cluster["C"].multicast(f"c{i}")
        expected += 2
        cluster.run(1.0)
    assert cluster.run_until_all_delivered(expected, timeout=300)
    assert cluster.delivery_orders_agree()
    for process in cluster:
        assert len(process.delivered) == expected


@pytest.mark.parametrize("process_class", TOTAL_ORDER_BASELINES + [PsyncProcess])
def test_baseline_under_random_latency(process_class):
    cluster = BaselineCluster(
        process_class, ["A", "B", "C"], seed=9, latency_model=UniformLatency(0.2, 3.0)
    )
    for i in range(3):
        cluster["B"].multicast(i)
    assert cluster.run_until_all_delivered(3, timeout=300)
    for process in cluster:
        assert set(process.delivered_payloads()) == {0, 1, 2}


def test_psync_preserves_causal_order():
    cluster = BaselineCluster(PsyncProcess, ["A", "B", "C"], seed=3)
    first = cluster["A"].multicast("cause")
    cluster.run(30)
    second = cluster["B"].multicast("effect")  # sent after B delivered "cause"
    cluster.run(60)
    for process in cluster:
        order = process.delivered_ids()
        assert order.index(first) < order.index(second)


def test_isis_overhead_grows_with_group_size():
    small = BaselineCluster(IsisProcess, ["A", "B", "C"], seed=1)
    large = BaselineCluster(IsisProcess, [f"P{i}" for i in range(10)], seed=1)
    assert (
        large["P0"].per_message_overhead_bytes() > small["A"].per_message_overhead_bytes()
    )


def test_lamport_ack_message_complexity():
    cluster = BaselineCluster(LamportAckProcess, ["A", "B", "C", "D"], seed=2)
    cluster["A"].multicast("x")
    cluster.run_until_all_delivered(1, timeout=200)
    cluster.run(50)  # let the remaining acknowledgements drain
    # One multicast costs (n-1) data messages plus every receiver acking to
    # everyone else: (n-1) + (n-1)^2 = n*(n-1) = 12 messages for n = 4,
    # i.e. far more than the n-1 a symmetric Newtop multicast needs.
    size = len(cluster.processes)
    assert cluster.total_messages_sent() >= size * (size - 1)
    assert cluster["B"].ack_messages_sent > 0


def test_fixed_sequencer_non_sequencer_submission_path():
    cluster = BaselineCluster(FixedSequencerProcess, ["A", "B", "C"], seed=4)
    assert cluster["A"].is_sequencer
    cluster["C"].multicast("via-sequencer")
    assert cluster.run_until_all_delivered(1, timeout=200)
    assert cluster["B"].delivered_payloads() == ["via-sequencer"]


def test_baseline_protocol_bytes_accounted():
    cluster = BaselineCluster(IsisProcess, ["A", "B", "C"], seed=5)
    cluster["A"].multicast("x")
    cluster.run(60)
    assert cluster.total_protocol_bytes() > 0


# ----------------------------------------------------------------------
# Propagation graph (Garcia-Molina & Spauster style)
# ----------------------------------------------------------------------
def test_propagation_graph_delivers_to_group_members_only():
    network = PropagationGraphNetwork({"g1": ["A", "B", "C"], "g2": ["C", "D"]}, seed=3)
    message_id = network.multicast("A", "g1", "hello")
    network.run(60)
    assert message_id in network.delivered_ids("B")
    assert message_id in network.delivered_ids("C")
    assert message_id not in network.delivered_ids("D")


def test_propagation_graph_orders_overlapping_groups_through_shared_path():
    network = PropagationGraphNetwork({"g1": ["A", "B", "C"], "g2": ["B", "C", "D"]}, seed=5)
    first = network.multicast("A", "g1", "m1")
    second = network.multicast("D", "g2", "m2")
    network.run(80)
    order_b = [m for m in network.delivered_ids("B") if m in (first, second)]
    order_c = [m for m in network.delivered_ids("C") if m in (first, second)]
    assert order_b == order_c
    assert network.total_hops > 0


def test_propagation_graph_depth_reflects_tree_structure():
    network = PropagationGraphNetwork(
        {"g1": ["A", "B"], "g2": ["B", "C"], "g3": ["C", "D"]}, seed=1
    )
    depths = [network.depth_of(node) for node in ("A", "B", "C", "D")]
    assert max(depths) >= 1


# ----------------------------------------------------------------------
# Primary-partition policy
# ----------------------------------------------------------------------
def test_primary_partition_majority_rules():
    policy = PrimaryPartitionMembership(["P1", "P2", "P3", "P4", "P5"])
    outcomes = policy.evaluate([["P1", "P2"], ["P3", "P4", "P5"]])
    by_members = {outcome.members: outcome.may_continue for outcome in outcomes}
    assert by_members[frozenset({"P3", "P4", "P5"})] is True
    assert by_members[frozenset({"P1", "P2"})] is False
    assert policy.availability_fraction([["P1", "P2"], ["P3", "P4", "P5"]]) == 0.6


def test_primary_partition_no_majority_means_total_outage():
    policy = PrimaryPartitionMembership(["P1", "P2", "P3", "P4"])
    assert policy.availability_fraction([["P1", "P2"], ["P3", "P4"]]) == 0.0
    # Newtop keeps every connected process available in the same scenario.
    assert (
        PrimaryPartitionMembership.newtop_availability_fraction(
            ["P1", "P2", "P3", "P4"], [["P1", "P2"], ["P3", "P4"]]
        )
        == 1.0
    )


def test_primary_partition_weights():
    policy = PrimaryPartitionMembership(["P1", "P2", "P3"], weights={"P1": 3.0})
    assert policy.is_primary(["P1"])
    assert not policy.is_primary(["P2", "P3"])


def test_primary_partition_requires_members():
    with pytest.raises(ValueError):
        PrimaryPartitionMembership([])
