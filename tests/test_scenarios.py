"""Tests for the declarative scenario engine and the runtime it leans on.

Covers the ISSUE-1 surface: scenario-spec parsing, churn and
partition-merge scenarios verified end to end through the trace checkers,
the simulator's bounded-heap invariant under timer churn, and the
benchmark smoke mode that keeps the scenario path exercised by tier-1.
"""

import os
import sys
from collections import deque

import pytest

from repro.net.simulator import Simulator
from repro.scenarios import (
    ScenarioConfigError,
    ScenarioEngine,
    cascading_partitions_scenario,
    churn_scenario,
    from_config,
    merge_storm_scenario,
    migration_under_load_scenario,
    mixed_modes_scenario,
    run_scenario,
)

# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


def test_from_config_parses_a_minimal_scenario():
    spec = from_config(
        {
            "name": "mini",
            "processes": 4,
            "groups": [{"id": "g0", "members": ["P001", "P002", "P003"]}],
            "workload": {"messages_per_sender": 2, "gap": 2.0, "start": 1.0},
            "events": [
                {"time": 5.0, "kind": "crash", "targets": ["P003"]},
                {"time": 3.0, "kind": "heal"},
            ],
            "drain": 10.0,
        }
    )
    assert spec.processes == ("P001", "P002", "P003", "P004")
    assert spec.groups[0].members == ("P001", "P002", "P003")
    # Events come out sorted by time; the horizon covers the last action
    # plus the drain.
    assert [event.kind for event in spec.events] == ["heal", "crash"]
    assert spec.horizon() == pytest.approx(15.0)


def test_from_config_infers_processes_from_groups():
    spec = from_config(
        {"groups": [{"id": "g0", "members": ["B", "A"]}, {"id": "g1", "members": ["A", "C"]}]}
    )
    assert spec.processes == ("A", "B", "C")


@pytest.mark.parametrize(
    "config",
    [
        {"groups": []},  # no groups
        {"groups": [{"id": "g", "members": ["P001"]}], "processes": 2},  # 1-member group
        {"groups": [{"id": "g", "members": ["P001", "NOPE"]}], "processes": 2},
        {"groups": [{"id": "g", "members": ["P001", "P002"], "mode": "bogus"}], "processes": 2},
        {
            "groups": [{"id": "g", "members": ["P001", "P002"]}],
            "processes": 2,
            "events": [{"time": 1.0, "kind": "teleport"}],
        },
        {
            "groups": [{"id": "g", "members": ["P001", "P002"]}],
            "processes": 3,
            "events": [{"time": 1.0, "kind": "leave", "targets": ["P003"], "group": "g"}],
        },
        {  # form_group reusing a static group id
            "groups": [{"id": "g", "members": ["P001", "P002"]}],
            "processes": 3,
            "events": [
                {"time": 1.0, "kind": "form_group", "group": "g", "targets": ["P001", "P003"]}
            ],
        },
        {  # form_group with fewer than two members
            "groups": [{"id": "g", "members": ["P001", "P002"]}],
            "processes": 3,
            "events": [
                {"time": 1.0, "kind": "form_group", "group": "g2", "targets": ["P003"]}
            ],
        },
        {  # form_group naming an unknown process
            "groups": [{"id": "g", "members": ["P001", "P002"]}],
            "processes": 3,
            "events": [
                {"time": 1.0, "kind": "form_group", "group": "g2", "targets": ["P001", "NOPE"]}
            ],
        },
    ],
)
def test_from_config_rejects_malformed_specs(config):
    with pytest.raises(ScenarioConfigError):
        from_config(config)


def test_from_config_accepts_form_group_and_leave_from_formed_group():
    spec = from_config(
        {
            "groups": [{"id": "g", "members": ["P001", "P002"]}],
            "processes": 4,
            "events": [
                {"time": 2.0, "kind": "form_group", "group": "fg", "targets": ["P003", "P004"]},
                {"time": 9.0, "kind": "leave", "targets": ["P004"], "group": "fg"},
            ],
        }
    )
    kinds = [event.kind for event in spec.events]
    assert kinds == ["form_group", "leave"]
    # The horizon covers the workload the engine drives through the formed
    # group after the formation grace period.
    assert spec.horizon() > 2.0 + spec.drain


# ---------------------------------------------------------------------------
# Scenario runs: churn and partition/merge, checked via analysis.checkers
# ---------------------------------------------------------------------------


def test_churn_scenario_passes_checkers_and_installs_views():
    config = churn_scenario(
        n_processes=10, n_groups=3, group_size=5, crashes=1, leaves=1, seed=5
    )
    engine = ScenarioEngine(from_config(config))
    result = engine.run()
    assert result.passed, result.checks.violations[:3]
    assert result.deliveries > 0
    # The crashed process must have been excluded from the views of the
    # survivors that shared a group with it.
    crashed = next(
        event.targets[0] for event in engine.spec.events if event.kind == "crash"
    )
    for group, members in result.agreement_sets.items():
        assert crashed not in members
        for member in members:
            view = engine.cluster.processes[member].view(group)
            assert crashed not in view.members


def test_dynamic_group_formation_under_churn():
    """`form_group` events create live groups mid-run that pass all checks."""
    config = churn_scenario(
        n_processes=12, n_groups=3, group_size=6, crashes=1, leaves=1,
        formations=2, seed=5,
    )
    formed_ids = [
        event["group"] for event in config["events"] if event["kind"] == "form_group"
    ]
    assert len(formed_ids) == 2
    engine = ScenarioEngine(from_config(config))
    result = engine.run()
    assert result.passed, result.checks.violations[:3]
    for group_id in formed_ids:
        members = result.agreement_sets[group_id]
        assert len(members) >= 2
        for member in members:
            process = engine.cluster.processes[member]
            assert process.is_member(group_id)
            # The formed group carried application traffic.
            assert any(
                record.group == group_id for record in process.delivered
            ), f"{member} delivered nothing in formed group {group_id}"


def test_partition_merge_scenario_passes_checkers():
    result = run_scenario(merge_storm_scenario(n_processes=6, n_groups=2, group_size=4, cycles=2))
    assert result.passed, result.checks.violations[:3]
    # The storm's minority is excluded from the stable core's agreement sets.
    assert all("P005" not in members for members in result.agreement_sets.values())
    assert result.deliveries > 0


def test_cascading_partitions_and_migration_scenarios():
    for config in (
        cascading_partitions_scenario(n_processes=9, n_groups=2, group_size=5, slices=1),
        migration_under_load_scenario(n_processes=5),
        mixed_modes_scenario(n_processes=6),
    ):
        result = run_scenario(config)
        assert result.passed, (config["name"], result.checks.violations[:3])


def test_scenario_samples_show_bounded_heap():
    """A 10k-message churn run must not grow the event heap monotonically."""
    config = churn_scenario(
        n_processes=12,
        n_groups=3,
        group_size=6,
        crashes=1,
        leaves=1,
        seed=3,
    )
    # Most of the >10k messages here are time-silence nulls: a long run
    # with few application senders keeps every silent endpoint's null
    # timer churning, which is exactly the load that used to grow the
    # event heap without bound.
    config["workload"] = {"messages_per_sender": 40, "senders_per_group": 2, "gap": 1.0}
    config["drain"] = 180.0
    engine = ScenarioEngine(from_config(config))
    result = engine.run()
    assert result.passed, result.checks.violations[:3]
    assert result.messages_sent >= 10_000
    # Heap occupancy tracks in-flight traffic and live timers, nowhere
    # near one entry per message ever sent.
    assert result.peak_pending_events < result.messages_sent / 4
    # No monotone growth: the tail of the run is no worse than its middle.
    samples = [sample.pending_events for sample in result.samples]
    middle, tail = samples[len(samples) // 3 : 2 * len(samples) // 3], samples[-3:]
    assert max(tail) <= 2 * max(middle)


# ---------------------------------------------------------------------------
# Simulator invariants the engine depends on
# ---------------------------------------------------------------------------


def test_pending_events_bounded_under_timer_churn():
    """Schedule/cancel churn must trigger compaction, not grow the heap."""
    sim = Simulator(seed=1)
    live: deque = deque()
    peak = 0
    for index in range(10_000):
        handle = sim.schedule(100.0 + index * 0.01, lambda: None, label="churn")
        live.append(handle)
        if len(live) > 16:
            live.popleft().cancel()
        peak = max(peak, sim.pending_events)
    assert peak <= 256, f"heap grew to {peak} entries for 16 live timers"
    assert sim.compactions > 0
    assert sim.live_pending_events == 16


def test_scenario_run_triggers_no_heap_growth_from_cancellations():
    """End-to-end: cancelled timers never dominate a scenario's heap."""
    config = mixed_modes_scenario(n_processes=6)
    engine = ScenarioEngine(from_config(config))
    result = engine.run()
    sim = engine.cluster.sim
    assert result.passed
    assert sim.pending_events - sim.live_pending_events <= max(64, sim.pending_events)


# ---------------------------------------------------------------------------
# Benchmark smoke mode (CI wiring: tier-1 exercises the bench path)
# ---------------------------------------------------------------------------


def test_benchmark_smoke_mode():
    benchmarks_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    if benchmarks_dir not in sys.path:
        sys.path.insert(0, benchmarks_dir)
    import bench_scenario_churn

    result = bench_scenario_churn.run_churn(bench_scenario_churn.SMOKE_SCALE)
    assert result.passed
    assert result.deliveries > 0


def test_benchmark_smoke_mode_online_json(tmp_path):
    """The CI hook: smoke-scale E19 online run recorded to JSON."""
    benchmarks_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    if benchmarks_dir not in sys.path:
        sys.path.insert(0, benchmarks_dir)
    import json

    import bench_scenario_churn

    json_path = str(tmp_path / "BENCH_scenario_churn.json")
    payload = bench_scenario_churn.record_results("smoke", json_path)
    assert payload["passed"]
    assert payload["analysis"] == "online"
    assert payload["trace_events_stored"] == 0
    with open(json_path, encoding="utf-8") as handle:
        assert json.load(handle) == payload
