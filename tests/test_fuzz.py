"""The checker-oracle fuzzer (``repro.scenarios.fuzz``).

Three layers are pinned here:

* **Generation** -- every corpus entry is byte-reproducible from
  ``(corpus_seed, index)`` alone, always passes the strict spec
  validation, and round-trips through the versioned JSON schema.
* **Campaign + replay** -- reports are JSON-shaped, every failure row
  carries a standalone-replayable config, and artifacts replay
  deterministically through the CLI entry points.
* **The mutation harness** -- the end-to-end proof the fuzzer can find a
  real protocol bug: re-introduce a known one (disable the asymmetric
  view-cut marker, step (viii)'s discard-bound fix) and the campaign must
  find a virtual-synchrony violation within a small bounded budget,
  shrink it to a tiny repro, and the healthy stack must stay clean on the
  exact same corpus.
"""

import copy
import json

import pytest

from repro.scenarios import ScenarioExecutionError, churn_scenario, run_scenario, run_scenarios
from repro.scenarios.fuzz import (
    GeneratorTuning,
    generate_config,
    generate_spec,
    replay_artifact,
    run_campaign,
    run_fuzz_unit,
)
from repro.scenarios.fuzz.__main__ import main as fuzz_cli
from repro.scenarios.spec import (
    SCENARIO_SCHEMA_VERSION,
    InvalidScenarioSpec,
    from_config,
    to_config,
)

#: The corpus slice the generation tests sweep; wide enough to cover every
#: optional section (events of each kind, load phases, latency swaps, link
#: faults) across the draws.
CORPUS = [(7, index) for index in range(20)] + [(2026, index) for index in range(10)]


# ---------------------------------------------------------------------------
# Generation: determinism + validity
# ---------------------------------------------------------------------------
def test_generated_configs_are_byte_reproducible():
    for seed, index in CORPUS:
        first = json.dumps(generate_config(seed, index), sort_keys=True)
        again = json.dumps(generate_config(seed, index), sort_keys=True)
        assert first == again, f"corpus entry ({seed}, {index}) not reproducible"


def test_generated_configs_always_validate():
    names = set()
    for seed, index in CORPUS:
        spec = generate_spec(seed, index)  # raises InvalidScenarioSpec on a bad draw
        names.add(spec.name)
        assert len(spec.processes) >= 2
        assert spec.groups
    assert len(names) == len(CORPUS)  # every entry is distinctly named


def test_generated_corpus_covers_the_optional_sections():
    """The default tuning must actually exercise the full vocabulary over a
    modest corpus -- a generator that silently stopped drawing link faults
    or load phases would hollow the campaign out without failing anything."""
    kinds = set()
    sections = set()
    for index in range(60):
        config = generate_config(7, index)
        for event in config.get("events", ()):
            kinds.add(event["kind"])
        for section in ("load_phases", "latency", "link_faults"):
            if section in config:
                sections.add(section)
    assert {"crash", "partition", "form_group", "leave", "isolate"} <= kinds
    assert sections == {"load_phases", "latency", "link_faults"}


def test_tuning_round_trips_and_drives_generation():
    tuning = GeneratorTuning(
        max_events=2,
        max_processes=6,
        asymmetric_probability=1.0,
        protocol={"use_view_cut_marker": False},
    )
    rebuilt = GeneratorTuning.from_config(tuning.to_config())
    assert rebuilt == tuning
    config = generate_config(7, 0, rebuilt)
    assert len(config["processes"]) <= 6
    assert len(config["events"]) <= 2
    assert config["protocol"] == {"use_view_cut_marker": False}
    assert all(group["mode"] == "asymmetric" for group in config["groups"])


# ---------------------------------------------------------------------------
# Spec schema: versioned JSON round-trip + eager validation
# ---------------------------------------------------------------------------
def test_spec_round_trips_through_versioned_json():
    for seed, index in CORPUS:
        spec = generate_spec(seed, index)
        config = to_config(spec)
        assert config["schema"] == SCENARIO_SCHEMA_VERSION
        wire = json.loads(json.dumps(config, sort_keys=True))  # the artifact path
        assert from_config(wire) == spec


def test_from_config_rejects_unknown_schema_version():
    config = generate_config(7, 0)
    config["schema"] = SCENARIO_SCHEMA_VERSION + 1
    with pytest.raises(InvalidScenarioSpec, match="unsupported scenario schema"):
        from_config(config)


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda c: c.__setitem__("link_faults", {"drop": 1.5}),
         "drop rate must be within"),
        (lambda c: c.__setitem__("link_faults", {"bogus": 1}),
         "unknown link_faults keys"),
        (lambda c: c.__setitem__("latency", {"median": 0.5}),
         "latency must be a mapping with a 'model'"),
        (lambda c: c.__setitem__("groups", [{"id": "g", "members": ["nobody", "x"]}]),
         "unknown processes"),
    ],
    ids=["fault-rate", "fault-keys", "latency-shape", "group-members"],
)
def test_from_config_validates_eagerly(mutate, message):
    config = generate_config(7, 0)
    mutate(config)
    with pytest.raises(InvalidScenarioSpec, match=message):
        from_config(config)


# ---------------------------------------------------------------------------
# Campaign: healthy corpus, report shape, standalone replay of failures
# ---------------------------------------------------------------------------
def test_healthy_corpus_campaign_is_clean():
    """The CI smoke gate's contract: the unmutated stack passes its own
    checkers on every generated scenario (stalls tracked, not failures)."""
    report = run_campaign(7, 25, shrink_failures=False)
    assert report.passed, [f.as_dict() for f in report.failures]
    assert report.tallies["violation"] == 0
    assert report.tallies["crashed"] == 0
    assert report.tallies["timeout"] == 0
    assert sum(report.tallies.values()) == 25
    assert len(report.rows) == 25
    assert report.specs_per_minute > 0
    # The streaming counters and the final tallies are the same numbers.
    assert report.metrics["counters"]["fuzz.pass"] == report.tallies["pass"]
    json.dumps(report.as_dict())  # the report is JSON-shaped throughout


def test_run_fuzz_unit_row_is_self_describing():
    row = run_fuzz_unit(7, 3)
    assert row["index"] == 3
    assert row["name"] == "fuzz-7-3"
    assert row["status"] in ("pass", "violation", "stall")
    assert row["deliveries"] >= 0 and row["sim_time"] > 0
    # The row's identity fields match a regeneration of the same entry.
    spec = generate_spec(7, 3)
    assert row["seed"] == spec.seed
    assert row["events"] == len(spec.events)


def test_scenario_batch_failures_carry_replay_info():
    """Satellite of the fuzz loop: any parallel batch casualty -- not just
    campaign ones -- surfaces the exact ``(seed, config)`` to replay."""
    good = churn_scenario(n_processes=8, n_groups=2, group_size=4,
                          crashes=0, leaves=0, messages_per_sender=1, seed=2)
    bad = dict(good)
    bad["groups"] = [{"id": "broken", "members": ["nobody", "nothing"]}]
    with pytest.raises(ScenarioExecutionError) as excinfo:
        run_scenarios([good, bad], parallel=2, analysis="online")
    (failure,) = excinfo.value.failures
    assert failure.index == 1
    assert failure.config == bad
    assert failure.seed == bad["seed"]


# ---------------------------------------------------------------------------
# The mutation harness: the fuzzer must catch a re-introduced protocol bug
# ---------------------------------------------------------------------------
#: Tuning aimed at the view-cut bug's trigger shape: asymmetric groups under
#: open-loop load with crash churn.  ``protocol`` re-introduces the bug by
#: switching step (viii) back to the naive lnmn discard bound.
MUTANT_TUNING = GeneratorTuning(
    min_processes=6,
    max_processes=8,
    max_groups=2,
    min_group_size=4,
    max_group_size=6,
    max_events=4,
    event_weights={"crash": 3.0, "correlated_crash": 2.0, "partition": 1.0},
    asymmetric_probability=1.0,
    open_loop_probability=1.0,
    load_phase_probability=0.0,
    latency_swap_probability=0.0,
    link_fault_probability=0.0,
    protocol={"use_view_cut_marker": False},
)

#: Small bounded budget: the mutant trips well inside it (index 3 of seed 7).
MUTANT_BUDGET = 8


def test_fuzzer_finds_and_shrinks_a_reintroduced_protocol_bug(tmp_path):
    report = run_campaign(
        7,
        MUTANT_BUDGET,
        tuning=MUTANT_TUNING,
        shrink_failures=True,
        max_shrink=1,
        shrink_budget=60,
        artifact_dir=str(tmp_path),
    )
    assert not report.passed
    assert report.tallies["violation"] >= 1

    shrunk = [f for f in report.failures if f.minimized is not None]
    assert shrunk, "no violation was shrunk"
    failure = shrunk[0]
    assert failure.violation_kind == "virtual-synchrony"
    assert any("virtual synchrony" in v for v in failure.violations)

    # The minimized repro is tiny and still carries the bug toggle.
    assert len(failure.minimized.get("events", ())) <= 12
    assert failure.minimized["protocol"] == {"use_view_cut_marker": False}
    assert failure.shrink_runs <= 60

    # The artifact replays standalone, reproduces the same violation kind,
    # and does so deterministically.
    assert failure.artifact is not None
    first = replay_artifact(failure.artifact)
    again = replay_artifact(failure.artifact)
    assert first["reproduced"] is True
    assert first == again

    # The full (unshrunk) failure config replays the violation too.
    replay = run_scenario(copy.deepcopy(failure.config))
    assert any("virtual synchrony" in v for v in replay.checks.violations)


def test_same_corpus_is_clean_without_the_mutation():
    """The control arm: the exact corpus slice that catches the mutant
    passes on the fixed stack, so the harness measures the bug, not the
    generator."""
    healthy = GeneratorTuning.from_config(
        dict(MUTANT_TUNING.to_config(), protocol={})
    )
    report = run_campaign(7, MUTANT_BUDGET, tuning=healthy, shrink_failures=False)
    assert report.passed, [f.as_dict() for f in report.failures]


# ---------------------------------------------------------------------------
# CLI: gen emits a valid spec, replay verdicts drive the exit code
# ---------------------------------------------------------------------------
def test_cli_gen_prints_the_canonical_config(capsys):
    assert fuzz_cli(["gen", "--seed", "7", "--index", "3"]) == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed == generate_config(7, 3)
    from_config(printed)


def test_cli_replay_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.json"
    clean.write_text(json.dumps(generate_config(7, 0)))
    assert fuzz_cli(["replay", str(clean)]) == 0
    verdict = json.loads(capsys.readouterr().out)
    assert verdict["passed"] is True
    assert verdict["reproduced"] is None  # bare config: nothing recorded

    mutant = generate_config(7, 3, MUTANT_TUNING)
    broken = tmp_path / "broken.json"
    broken.write_text(json.dumps(mutant))
    assert fuzz_cli(["replay", str(broken)]) == 1
    verdict = json.loads(capsys.readouterr().out)
    assert verdict["violation_kind"] == "virtual-synchrony"
