"""Unit tests for views, the delivery queue, stability tracking, flow
control, time-silence and the failure suspector."""

import pytest

from repro.core.config import NewtopConfig
from repro.core.delivery import DeliveryQueue, delivery_sort_key
from repro.core.errors import (
    ConfigurationError,
    DeliveryOrderViolation,
    FlowControlError,
    InvalidViewError,
)
from repro.core.flow_control import FlowController
from repro.core.messages import DataMessage, Suspicion
from repro.core.stability import RetentionBuffer, StabilityTracker
from repro.core.suspector import FailureSuspector
from repro.core.time_silence import TimeSilence
from repro.core.views import MembershipView, SignatureView
from repro.net.simulator import Simulator


# ----------------------------------------------------------------------
# Views
# ----------------------------------------------------------------------
def test_initial_view_and_exclusion():
    view = MembershipView.initial("g", ["P2", "P1", "P3"])
    assert view.index == 0
    assert view.sorted_members() == ("P1", "P2", "P3")
    next_view = view.exclude(["P2"])
    assert next_view.index == 1
    assert next_view.sorted_members() == ("P1", "P3")


def test_view_exclusion_must_remove_somebody():
    view = MembershipView.initial("g", ["P1", "P2"])
    with pytest.raises(InvalidViewError):
        view.exclude(["P9"])


def test_view_cannot_become_empty():
    view = MembershipView.initial("g", ["P1"])
    with pytest.raises(InvalidViewError):
        view.exclude(["P1"])


def test_view_sequencer_is_deterministic():
    first = MembershipView.initial("g", ["P3", "P1", "P2"])
    second = MembershipView.initial("g", ["P2", "P3", "P1"])
    assert first.sequencer() == second.sequencer() == "P1"
    assert first.exclude(["P1"]).sequencer() == "P2"


def test_empty_view_rejected():
    with pytest.raises(InvalidViewError):
        MembershipView(group="g", index=0, members=frozenset())


def test_signature_views_of_diverging_subgroups_never_intersect():
    # The paper's Example 3 numbers: after partitioning, {Pi,Pj} exclude
    # three processes while {Pk,Pl} exclude one, so the signature views are
    # disjoint even though the plain views intersect.
    initial = SignatureView.initial("g", ["Pi", "Pj", "Pk", "Pl", "Pm"])
    side_one = initial.exclude(["Pm", "Pk", "Pl"])
    side_two = initial.exclude(["Pm"])
    assert side_one.exclusions == 3
    assert side_two.exclusions == 1
    assert not side_one.intersects(side_two)
    # Plain views do intersect ({Pi,Pj} is a subset of {Pi,Pj,Pk,Pl}).
    assert side_one.view.members <= side_two.view.members
    # After the second side also excludes Pi and Pj, still disjoint.
    stabilised = side_two.exclude(["Pi", "Pj"])
    assert not side_one.intersects(stabilised)


def test_signature_view_describe_mentions_exclusions():
    view = SignatureView.initial("g", ["A", "B"]).exclude(["B"])
    assert "1" in view.describe()


# ----------------------------------------------------------------------
# Delivery queue (safe1'/safe2)
# ----------------------------------------------------------------------
def _message(sender, group, clock, payload=None):
    return DataMessage.application(sender, group, clock, 0, payload or f"{sender}:{clock}")


def test_delivery_queue_orders_by_clock_then_sender():
    queue = DeliveryQueue()
    late = _message("P2", "g", 5)
    early = _message("P1", "g", 3)
    tie = _message("P1", "g", 5)
    for message in (late, early, tie):
        queue.enqueue(message)
    delivered = [d.message for d in queue.pop_deliverable(bound=10)]
    assert [m.clock for m in delivered] == [3, 5, 5]
    assert delivered[1].sender == "P1"  # tie broken by sender id
    assert queue.delivered_count == 3


def test_delivery_queue_respects_bound():
    queue = DeliveryQueue()
    queue.enqueue(_message("P1", "g", 3))
    queue.enqueue(_message("P1", "g", 8))
    first = queue.pop_deliverable(bound=5)
    assert [d.message.clock for d in first] == [3]
    assert queue.pending_count() == 1
    assert queue.has_pending_at_or_below(8)
    assert not queue.has_pending_at_or_below(5)


def test_delivery_queue_rejects_duplicates():
    queue = DeliveryQueue()
    message = _message("P1", "g", 1)
    assert queue.enqueue(message)
    assert not queue.enqueue(message)
    queue.pop_deliverable(bound=5)
    assert not queue.enqueue(message)
    assert queue.duplicate_count == 2
    assert queue.was_delivered(message.msg_id)


def test_delivery_queue_detects_order_violation():
    queue = DeliveryQueue()
    queue.enqueue(_message("P1", "g", 10))
    queue.pop_deliverable(bound=10)
    queue.enqueue(_message("P1", "g", 4))
    with pytest.raises(DeliveryOrderViolation):
        queue.pop_deliverable(bound=10)


def test_delivery_queue_discard_from_sender():
    queue = DeliveryQueue()
    queue.enqueue(_message("P1", "g", 3))
    queue.enqueue(_message("P1", "g", 9))
    queue.enqueue(_message("P2", "g", 9))
    removed = queue.discard_from_sender("g", "P1", above_clock=5)
    assert [m.clock for m in removed] == [9]
    assert queue.pending_count() == 2


def test_delivery_sort_key_is_total():
    a = _message("P1", "g1", 2)
    b = _message("P1", "g2", 2)
    assert delivery_sort_key(a) != delivery_sort_key(b)


# ----------------------------------------------------------------------
# Stability / retention
# ----------------------------------------------------------------------
def test_retention_buffer_discards_stable_messages():
    buffer = RetentionBuffer("g")
    for clock in range(1, 6):
        buffer.retain(_message("P1", "g", clock))
    assert buffer.size() == 5
    discarded = buffer.discard_stable(3)
    assert discarded == 3
    assert buffer.size() == 2
    assert buffer.messages_from("P1", above=0)[0].clock == 4


def test_retention_buffer_queries():
    buffer = RetentionBuffer("g")
    buffer.retain(_message("P1", "g", 2))
    buffer.retain(_message("P1", "g", 4))
    assert buffer.has("P1", 2)
    assert buffer.latest_clock_from("P1") == 4
    assert [m.clock for m in buffer.messages_from("P1", above=2)] == [4]
    assert buffer.messages_from("P9") == []


def test_retention_buffer_discard_sender_above():
    buffer = RetentionBuffer("g")
    for clock in (1, 5, 9):
        buffer.retain(_message("P1", "g", clock))
    assert buffer.discard_sender_above("P1", 5) == 1
    assert buffer.latest_clock_from("P1") == 5


def test_stability_tracker_gc_follows_ldn():
    tracker = StabilityTracker("g", ["P1", "P2"])
    tracker.on_message(DataMessage.application("P1", "g", 1, 0, "a"))
    tracker.on_message(DataMessage.application("P2", "g", 2, 0, "b"))
    assert tracker.stability_bound() == 0
    # Both members report ldn >= 2 -> messages numbered <= 2 are stable.
    tracker.on_message(DataMessage.application("P1", "g", 3, 2, "c"))
    tracker.on_message(DataMessage.application("P2", "g", 4, 2, "d"))
    assert tracker.stability_bound() == 2
    assert tracker.is_stable(2)
    assert not tracker.is_stable(3)
    assert tracker.buffer.size() == 2  # clocks 3 and 4 remain


def test_stability_tracker_member_removed():
    tracker = StabilityTracker("g", ["P1", "P2"])
    tracker.on_message(DataMessage.application("P2", "g", 5, 0, "x"))
    tracker.handle_member_removed("P2", discard_above=3)
    assert tracker.buffer.messages_from("P2") == []
    assert tracker.stability_bound() == 0 or True  # P1 entry still constrains


def test_stability_tracker_global_ldn():
    tracker = StabilityTracker("g", ["P1", "P2", "P3"])
    tracker.on_message(DataMessage.application("P1", "g", 1, 0, "a"))
    tracker.record_global_ldn(1)
    assert tracker.stability_bound() == 1
    assert tracker.buffer.size() == 0


# ----------------------------------------------------------------------
# Flow control
# ----------------------------------------------------------------------
def test_flow_control_disabled_always_allows():
    flow = FlowController(None)
    assert not flow.enabled
    assert flow.can_send()
    flow.note_sent(1)
    assert flow.outstanding_count == 0


def test_flow_control_window_blocks_and_releases():
    flow = FlowController(2)
    flow.note_sent(1)
    flow.note_sent(2)
    assert not flow.can_send()
    flow.queue("payload-3")
    assert flow.queued_count == 1
    released = flow.note_stability(2)
    assert released == 1
    assert flow.next_released() == "payload-3"
    assert flow.can_send()


def test_flow_control_release_without_queue_raises():
    flow = FlowController(1)
    with pytest.raises(FlowControlError):
        flow.next_released()


def test_flow_control_invalid_window():
    with pytest.raises(ValueError):
        FlowController(0)


# ----------------------------------------------------------------------
# Time-silence
# ----------------------------------------------------------------------
def test_time_silence_sends_null_after_omega_of_silence():
    sim = Simulator()
    nulls = []
    silence = TimeSilence(sim, omega=2.0, send_null=lambda: nulls.append(sim.now))
    silence.start()
    sim.run(until=7.0)
    assert len(nulls) >= 3
    assert nulls[0] == pytest.approx(2.0)


def test_time_silence_suppressed_by_activity():
    sim = Simulator()
    nulls = []
    silence = TimeSilence(sim, omega=2.0, send_null=lambda: nulls.append(sim.now))
    silence.start()
    # Simulate application sends every time unit: the timer never fires.
    for t in range(1, 10):
        sim.schedule_at(float(t), silence.notify_sent)
    sim.run(until=9.0)
    assert nulls == []


def test_time_silence_stop_cancels_timer():
    sim = Simulator()
    nulls = []
    silence = TimeSilence(sim, omega=1.0, send_null=lambda: nulls.append(sim.now))
    silence.start()
    silence.stop()
    sim.run(until=10.0)
    assert nulls == []
    assert not silence.active


def test_time_silence_requires_positive_omega():
    with pytest.raises(ValueError):
        TimeSilence(Simulator(), omega=0.0, send_null=lambda: None)


# ----------------------------------------------------------------------
# Failure suspector
# ----------------------------------------------------------------------
def test_suspector_raises_suspicion_after_timeout():
    sim = Simulator()
    notifications = []
    suspector = FailureSuspector(
        sim, "P1", ["P1", "P2", "P3"], suspicion_timeout=5.0, check_interval=1.0,
        notify=notifications.append,
    )
    suspector.start()
    sim.schedule_at(2.0, suspector.heard_from, "P2", 7)
    sim.run(until=20.0)
    targets = {suspicion.target for suspicion in notifications}
    assert targets == {"P2", "P3"}
    by_target = {suspicion.target: suspicion for suspicion in notifications}
    assert by_target["P2"].last_number == 7
    assert by_target["P3"].last_number == 0


def test_suspector_not_triggered_by_live_member():
    sim = Simulator()
    notifications = []
    suspector = FailureSuspector(
        sim, "P1", ["P1", "P2"], suspicion_timeout=5.0, check_interval=1.0,
        notify=notifications.append,
    )
    suspector.start()
    for t in range(1, 30, 2):
        sim.schedule_at(float(t), suspector.heard_from, "P2", t)
    sim.run(until=30.0)
    assert notifications == []


def test_suspector_clear_allows_resuspect():
    sim = Simulator()
    notifications = []
    suspector = FailureSuspector(
        sim, "P1", ["P1", "P2"], suspicion_timeout=3.0, check_interval=1.0,
        notify=notifications.append,
    )
    suspector.start()
    sim.run(until=5.0)
    assert len(notifications) == 1
    suspector.clear_suspicion("P2")
    sim.run(until=15.0)
    assert len(notifications) == 2


def test_suspector_force_and_remove():
    sim = Simulator()
    notifications = []
    suspector = FailureSuspector(
        sim, "P1", ["P1", "P2", "P3"], suspicion_timeout=50.0, check_interval=1.0,
        notify=notifications.append,
    )
    suspector.start()
    suspector.force_suspect("P2")
    assert [s.target for s in notifications] == ["P2"]
    suspector.remove_member("P3")
    assert suspector.monitored_members() == {"P2"}
    # Forcing an unknown or own member is a no-op.
    suspector.force_suspect("P1")
    suspector.force_suspect("P9")
    assert len(notifications) == 1


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ConfigurationError):
        NewtopConfig(omega=-1).validate()
    with pytest.raises(ConfigurationError):
        NewtopConfig(omega=5.0, suspicion_timeout=4.0).validate()
    with pytest.raises(ConfigurationError):
        NewtopConfig(flow_control_window=0).validate()
    config = NewtopConfig().validate()
    derived = config.replace(omega=1.0, suspicion_timeout=4.0)
    assert derived.omega == 1.0
    assert config.omega != 1.0
