"""Unit tests for fault injection and event tracing."""

import pytest

from repro.net.failures import FailureSchedule, FaultInjector
from repro.net.latency import ConstantLatency
from repro.net.network import Network, NetworkConfig
from repro.net.simulator import Simulator
from repro.net.trace import (
    JsonlSink,
    DELIVER,
    EventTrace,
    RECEIVE,
    SEND,
    TraceRecorder,
    VIEW_INSTALL,
)


def _network():
    sim = Simulator(seed=0)
    network = Network(sim, NetworkConfig(latency_model=ConstantLatency(1.0)))
    for node in ("a", "b", "c"):
        network.attach(node, lambda src, payload: None)
    return sim, network


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
def test_scheduled_crash():
    sim, network = _network()
    injector = FaultInjector(sim, network)
    injector.install(FailureSchedule().crash(5.0, "b"))
    sim.run(until=4.0)
    assert not network.is_crashed("b")
    sim.run(until=6.0)
    assert network.is_crashed("b")


def test_scheduled_partition_and_heal():
    sim, network = _network()
    injector = FaultInjector(sim, network)
    schedule = FailureSchedule().partition(2.0, [["a"], ["b", "c"]]).heal(8.0)
    injector.install(schedule)
    sim.run(until=3.0)
    assert not network.partitions.can_communicate("a", "b")
    sim.run(until=9.0)
    assert network.partitions.can_communicate("a", "b")


def test_crash_during_multicast_limits_receivers():
    sim, network = _network()
    received = {"b": [], "c": []}
    network.detach("b")
    network.detach("c")
    network.attach("b", lambda src, payload: received["b"].append(payload))
    network.attach("c", lambda src, payload: received["c"].append(payload))
    injector = FaultInjector(sim, network)
    injector.install(
        FailureSchedule().crash_during_multicast(5.0, "a", allowed_receivers=["b"])
    )

    def send_multicast():
        network.multicast("a", ["b", "c"], "m1")

    sim.schedule_at(5.0, send_multicast)
    sim.run()
    assert received["b"] == ["m1"]
    assert received["c"] == []
    assert network.is_crashed("a")


def test_drop_between_window():
    sim, network = _network()
    received = []
    network.detach("b")
    network.attach("b", lambda src, payload: received.append(payload))
    injector = FaultInjector(sim, network)
    injector.install(
        FailureSchedule().drop_between(2.0, ["a"], ["b"], duration=5.0)
    )
    sim.schedule_at(3.0, network.send, "a", "b", "dropped")
    sim.schedule_at(10.0, network.send, "a", "b", "kept")
    sim.run()
    assert received == ["kept"]


def test_isolate_action():
    sim, network = _network()
    injector = FaultInjector(sim, network)
    injector.install(FailureSchedule().isolate(1.0, "c"))
    sim.run(until=2.0)
    assert not network.partitions.can_communicate("a", "c")
    assert network.partitions.can_communicate("a", "b")


def test_schedule_merge():
    first = FailureSchedule().crash(1.0, "a")
    second = FailureSchedule().heal(2.0)
    merged = first.merge(second)
    assert len(merged.actions) == 2


# ----------------------------------------------------------------------
# Trace recorder / event trace
# ----------------------------------------------------------------------
def test_recorder_rejects_unknown_kind():
    recorder = TraceRecorder()
    with pytest.raises(ValueError):
        recorder.record(0.0, "bogus", "p1")


def test_trace_filters_and_sequences():
    recorder = TraceRecorder()
    recorder.record(1.0, SEND, "p1", group="g", message_id="m1", sender="p1", clock=1)
    recorder.record(2.0, RECEIVE, "p2", group="g", message_id="m1", sender="p1", clock=1)
    recorder.record(3.0, DELIVER, "p2", group="g", message_id="m1", sender="p1", clock=1)
    recorder.record(2.5, DELIVER, "p1", group="g", message_id="m1", sender="p1", clock=1)
    trace = recorder.trace()
    assert trace.processes() == ["p1", "p2"]
    assert trace.groups() == ["g"]
    assert trace.delivered_ids("p2", "g") == ["m1"]
    assert len(trace.events(kind=DELIVER)) == 2
    latencies = trace.delivery_latencies("g")
    assert sorted(latencies) == [1.5, 2.0]


def test_trace_view_sequence():
    recorder = TraceRecorder()
    recorder.record(0.0, VIEW_INSTALL, "p1", group="g", members=("p1", "p2", "p3"), index=0)
    recorder.record(5.0, VIEW_INSTALL, "p1", group="g", members=("p1", "p2"), index=1)
    trace = recorder.trace()
    assert trace.view_sequence("p1", "g") == [
        frozenset({"p1", "p2", "p3"}),
        frozenset({"p1", "p2"}),
    ]


def test_trace_happened_before_transitive():
    recorder = TraceRecorder()
    # p1 sends m1; p2 delivers m1 then sends m2; p3 delivers m2 then sends m3.
    recorder.record(1.0, SEND, "p1", group="g", message_id="m1", sender="p1")
    recorder.record(2.0, DELIVER, "p2", group="g", message_id="m1", sender="p1")
    recorder.record(3.0, SEND, "p2", group="g", message_id="m2", sender="p2")
    recorder.record(4.0, DELIVER, "p3", group="g", message_id="m2", sender="p2")
    recorder.record(5.0, SEND, "p3", group="g", message_id="m3", sender="p3")
    trace = recorder.trace()
    pairs = set(trace.happened_before_pairs())
    assert ("m1", "m2") in pairs
    assert ("m2", "m3") in pairs
    assert ("m1", "m3") in pairs  # transitivity
    assert ("m2", "m1") not in pairs


def test_trace_event_detail_lookup():
    recorder = TraceRecorder()
    event = recorder.record(0.0, VIEW_INSTALL, "p1", group="g", members=("a",), index=3)
    assert event.detail("index") == 3
    assert event.detail("missing", "fallback") == "fallback"


# ----------------------------------------------------------------------
# Sink fan-out isolation (on_sink_error="detach" / "raise")
# ----------------------------------------------------------------------
class _BoomSink:
    """Raises on its Nth event; counts what it saw before that."""

    def __init__(self, explode_at=0):
        self.explode_at = explode_at
        self.seen = 0

    def on_event(self, event):
        if self.seen == self.explode_at:
            raise RuntimeError("sink exploded")
        self.seen += 1

    def close(self):
        pass


class _CountingSink:
    def __init__(self):
        self.seen = 0

    def on_event(self, event):
        self.seen += 1

    def close(self):
        pass


def test_detach_policy_isolates_raising_sink_and_records_error():
    boom = _BoomSink(explode_at=1)
    after = _CountingSink()
    recorder = TraceRecorder(sinks=[boom, after])
    recorder.record(1.0, SEND, "p1", group="g", message_id="m1", sender="p1")
    recorder.record(2.0, SEND, "p1", group="g", message_id="m2", sender="p1")
    # The sink behind the raising one still saw the event that killed it.
    assert after.seen == 2
    assert recorder.detached_sinks == [boom]
    assert len(recorder.sink_errors) == 1
    error = recorder.sink_errors[0]
    assert error["sink"] == "_BoomSink"
    assert "RuntimeError" in error["error"]
    assert error["at_seq"] == 1
    assert error["at_time"] == 2.0
    # Later events no longer reach the detached sink, but flow on.
    recorder.record(3.0, SEND, "p1", group="g", message_id="m3", sender="p1")
    assert boom.seen == 1
    assert after.seen == 3
    assert len(recorder.sink_errors) == 1


def test_raise_policy_propagates_sink_exceptions():
    boom = _BoomSink(explode_at=0)
    recorder = TraceRecorder(sinks=[boom], on_sink_error="raise")
    with pytest.raises(RuntimeError, match="sink exploded"):
        recorder.record(1.0, SEND, "p1", group="g", message_id="m1", sender="p1")
    # Strict mode never detaches: the bug should stay loud.
    assert recorder.detached_sinks == []
    assert recorder.sink_errors == []


def test_recorder_rejects_unknown_sink_error_policy():
    with pytest.raises(ValueError):
        TraceRecorder(on_sink_error="ignore")


def test_session_fails_when_a_sink_was_detached():
    from repro.api import Session

    session = Session("newtop", seed=1, sinks=[_BoomSink(explode_at=2)])
    session.spawn(["P1", "P2", "P3"])
    session.group("g")
    session.multicast("P1", "g", "payload")
    session.run(20)
    result = session.result()
    # The protocol checks hold, but the detached observer fails the run.
    assert result.checks is not None and result.checks.passed
    assert result.sink_errors and result.sink_errors[0]["sink"] == "_BoomSink"
    assert not result.passed


# ----------------------------------------------------------------------
# JsonlSink round-trips
# ----------------------------------------------------------------------
def test_jsonl_sink_round_trips_rich_details(tmp_path):
    import json

    path = str(tmp_path / "trace.jsonl")
    sink = JsonlSink(path)
    recorder = TraceRecorder(sinks=[sink], on_sink_error="raise")
    recorder.record(
        0.0, VIEW_INSTALL, "p1", group="g",
        members=frozenset({"p2", "p1"}), index=0,
    )
    recorder.record(
        1.5, SEND, "p1", group="g", message_id="m1", sender="p1", clock=4,
        targets={"p3", "p2"}, route=("p1", "p2"),
    )
    recorder.close()
    with open(path, "r", encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle]
    assert sink.events_written == 2
    assert [line["seq"] for line in lines] == [0, 1]
    # Sets and frozensets serialize as sorted lists; tuples as lists.
    assert lines[0]["details"]["members"] == ["p1", "p2"]
    assert lines[1]["details"]["targets"] == ["p2", "p3"]
    assert lines[1]["details"]["route"] == ["p1", "p2"]
    assert lines[1]["clock"] == 4


def test_jsonl_sink_leaves_borrowed_files_open():
    import io
    import json

    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    recorder = TraceRecorder(sinks=[sink], on_sink_error="raise")
    recorder.record(0.5, SEND, "p1", group="g", message_id="m1", sender="p1")
    recorder.close()
    # Borrowed handle: flushed, not closed -- the caller still owns it.
    assert not buffer.closed
    payload = json.loads(buffer.getvalue().strip())
    assert payload["kind"] == SEND and payload["message_id"] == "m1"
    buffer.write("still writable\n")
