"""Unit tests for fault injection and event tracing."""

import pytest

from repro.net.failures import FailureSchedule, FaultInjector
from repro.net.latency import ConstantLatency
from repro.net.network import Network, NetworkConfig
from repro.net.simulator import Simulator
from repro.net.trace import (
    DELIVER,
    EventTrace,
    RECEIVE,
    SEND,
    TraceRecorder,
    VIEW_INSTALL,
)


def _network():
    sim = Simulator(seed=0)
    network = Network(sim, NetworkConfig(latency_model=ConstantLatency(1.0)))
    for node in ("a", "b", "c"):
        network.attach(node, lambda src, payload: None)
    return sim, network


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
def test_scheduled_crash():
    sim, network = _network()
    injector = FaultInjector(sim, network)
    injector.install(FailureSchedule().crash(5.0, "b"))
    sim.run(until=4.0)
    assert not network.is_crashed("b")
    sim.run(until=6.0)
    assert network.is_crashed("b")


def test_scheduled_partition_and_heal():
    sim, network = _network()
    injector = FaultInjector(sim, network)
    schedule = FailureSchedule().partition(2.0, [["a"], ["b", "c"]]).heal(8.0)
    injector.install(schedule)
    sim.run(until=3.0)
    assert not network.partitions.can_communicate("a", "b")
    sim.run(until=9.0)
    assert network.partitions.can_communicate("a", "b")


def test_crash_during_multicast_limits_receivers():
    sim, network = _network()
    received = {"b": [], "c": []}
    network.detach("b")
    network.detach("c")
    network.attach("b", lambda src, payload: received["b"].append(payload))
    network.attach("c", lambda src, payload: received["c"].append(payload))
    injector = FaultInjector(sim, network)
    injector.install(
        FailureSchedule().crash_during_multicast(5.0, "a", allowed_receivers=["b"])
    )

    def send_multicast():
        network.multicast("a", ["b", "c"], "m1")

    sim.schedule_at(5.0, send_multicast)
    sim.run()
    assert received["b"] == ["m1"]
    assert received["c"] == []
    assert network.is_crashed("a")


def test_drop_between_window():
    sim, network = _network()
    received = []
    network.detach("b")
    network.attach("b", lambda src, payload: received.append(payload))
    injector = FaultInjector(sim, network)
    injector.install(
        FailureSchedule().drop_between(2.0, ["a"], ["b"], duration=5.0)
    )
    sim.schedule_at(3.0, network.send, "a", "b", "dropped")
    sim.schedule_at(10.0, network.send, "a", "b", "kept")
    sim.run()
    assert received == ["kept"]


def test_isolate_action():
    sim, network = _network()
    injector = FaultInjector(sim, network)
    injector.install(FailureSchedule().isolate(1.0, "c"))
    sim.run(until=2.0)
    assert not network.partitions.can_communicate("a", "c")
    assert network.partitions.can_communicate("a", "b")


def test_schedule_merge():
    first = FailureSchedule().crash(1.0, "a")
    second = FailureSchedule().heal(2.0)
    merged = first.merge(second)
    assert len(merged.actions) == 2


# ----------------------------------------------------------------------
# Trace recorder / event trace
# ----------------------------------------------------------------------
def test_recorder_rejects_unknown_kind():
    recorder = TraceRecorder()
    with pytest.raises(ValueError):
        recorder.record(0.0, "bogus", "p1")


def test_trace_filters_and_sequences():
    recorder = TraceRecorder()
    recorder.record(1.0, SEND, "p1", group="g", message_id="m1", sender="p1", clock=1)
    recorder.record(2.0, RECEIVE, "p2", group="g", message_id="m1", sender="p1", clock=1)
    recorder.record(3.0, DELIVER, "p2", group="g", message_id="m1", sender="p1", clock=1)
    recorder.record(2.5, DELIVER, "p1", group="g", message_id="m1", sender="p1", clock=1)
    trace = recorder.trace()
    assert trace.processes() == ["p1", "p2"]
    assert trace.groups() == ["g"]
    assert trace.delivered_ids("p2", "g") == ["m1"]
    assert len(trace.events(kind=DELIVER)) == 2
    latencies = trace.delivery_latencies("g")
    assert sorted(latencies) == [1.5, 2.0]


def test_trace_view_sequence():
    recorder = TraceRecorder()
    recorder.record(0.0, VIEW_INSTALL, "p1", group="g", members=("p1", "p2", "p3"), index=0)
    recorder.record(5.0, VIEW_INSTALL, "p1", group="g", members=("p1", "p2"), index=1)
    trace = recorder.trace()
    assert trace.view_sequence("p1", "g") == [
        frozenset({"p1", "p2", "p3"}),
        frozenset({"p1", "p2"}),
    ]


def test_trace_happened_before_transitive():
    recorder = TraceRecorder()
    # p1 sends m1; p2 delivers m1 then sends m2; p3 delivers m2 then sends m3.
    recorder.record(1.0, SEND, "p1", group="g", message_id="m1", sender="p1")
    recorder.record(2.0, DELIVER, "p2", group="g", message_id="m1", sender="p1")
    recorder.record(3.0, SEND, "p2", group="g", message_id="m2", sender="p2")
    recorder.record(4.0, DELIVER, "p3", group="g", message_id="m2", sender="p2")
    recorder.record(5.0, SEND, "p3", group="g", message_id="m3", sender="p3")
    trace = recorder.trace()
    pairs = set(trace.happened_before_pairs())
    assert ("m1", "m2") in pairs
    assert ("m2", "m3") in pairs
    assert ("m1", "m3") in pairs  # transitivity
    assert ("m2", "m1") not in pairs


def test_trace_event_detail_lookup():
    recorder = TraceRecorder()
    event = recorder.record(0.0, VIEW_INSTALL, "p1", group="g", members=("a",), index=3)
    assert event.detail("index") == 3
    assert event.detail("missing", "fallback") == "fallback"
