"""Unit tests for the Lamport clock, message types and member vectors."""

import math

import pytest

from repro.core.clock import LamportClock
from repro.core.messages import (
    ConfirmMessage,
    DataMessage,
    FormGroupInvite,
    FormGroupVote,
    RefuteMessage,
    SequencerRequest,
    SuspectMessage,
    Suspicion,
    estimate_payload_bytes,
)
from repro.core.vectors import INFINITY, ReceiveVector, StabilityVector


# ----------------------------------------------------------------------
# Lamport clock (CA1 / CA2)
# ----------------------------------------------------------------------
def test_ca1_tick_increments():
    clock = LamportClock()
    assert clock.tick() == 1
    assert clock.tick() == 2
    assert clock.value == 2
    assert clock.ticks == 2


def test_ca2_observe_takes_maximum():
    clock = LamportClock()
    clock.tick()  # 1
    assert clock.observe(10) == 10
    assert clock.observe(5) == 10
    assert clock.value == 10
    assert clock.observations == 2


def test_pr1_send_order_implies_increasing_numbers():
    clock = LamportClock()
    numbers = [clock.tick() for _ in range(5)]
    assert numbers == sorted(numbers)
    assert len(set(numbers)) == 5


def test_pr2_delivery_before_send_implies_larger_number():
    sender = LamportClock()
    receiver = LamportClock()
    m_number = sender.tick()
    receiver.observe(m_number)
    m2_number = receiver.tick()
    assert m2_number > m_number


def test_advance_to_floor():
    clock = LamportClock()
    clock.advance_to(7)
    assert clock.value == 7
    clock.advance_to(3)
    assert clock.value == 7


def test_clock_rejects_negative_values():
    with pytest.raises(ValueError):
        LamportClock(-1)
    clock = LamportClock()
    with pytest.raises(ValueError):
        clock.observe(-2)


def test_clock_comparisons():
    a = LamportClock(3)
    b = LamportClock(5)
    assert a < b
    assert a == 3
    assert a < 5


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
def test_application_message_fields():
    message = DataMessage.application("P1", "g1", clock=4, ldn=2, payload={"x": 1})
    assert message.is_application and not message.is_null
    assert message.sender == "P1" and message.group == "g1"
    assert message.clock == 4 and message.ldn == 2
    assert message.wire_size_bytes() > message.protocol_overhead_bytes()


def test_null_message_is_not_application():
    message = DataMessage.null("P1", "g1", clock=1, ldn=0)
    assert message.is_null and not message.is_application
    assert message.payload is None


def test_start_group_message_carries_its_clock_as_start_number():
    message = DataMessage.start_group("P1", "gn", clock=9, ldn=0)
    assert message.is_start_group
    assert message.start_number == 9


def test_sequenced_message_reuses_request_id():
    request = SequencerRequest.make("P2", "g1", origin_clock=3, payload="x")
    message = DataMessage.sequenced(
        origin="P2",
        group="g1",
        clock=7,
        ldn=1,
        payload="x",
        kind="data",
        sequencer="P1",
        origin_request=request.request_id,
    )
    assert message.msg_id == request.request_id
    assert message.sequenced_by == "P1"
    assert message.sender == "P2"


def test_message_ids_unique():
    ids = {DataMessage.application("P", "g", i, 0, None).msg_id for i in range(100)}
    assert len(ids) == 100


def test_newtop_overhead_is_constant_in_payload_and_small():
    small = DataMessage.application("P1", "g1", 1, 0, "a")
    large = DataMessage.application("P1", "g1", 1, 0, "a" * 1000)
    assert small.protocol_overhead_bytes() == large.protocol_overhead_bytes()
    assert small.protocol_overhead_bytes() < 64


def test_membership_message_sizes():
    suspicion = Suspicion(target="P3", last_number=12)
    suspect = SuspectMessage(origin="P1", group="g1", suspicion=suspicion)
    refute = RefuteMessage(
        origin="P2",
        group="g1",
        suspicion=suspicion,
        recovered=(DataMessage.application("P3", "g1", 13, 0, "late"),),
    )
    confirm = ConfirmMessage(origin="P1", group="g1", detection=frozenset({suspicion}))
    assert suspect.wire_size_bytes() > 0
    assert refute.wire_size_bytes() > suspect.wire_size_bytes()
    assert confirm.wire_size_bytes() >= suspect.wire_size_bytes()


def test_formation_message_sizes_scale_with_membership():
    small = FormGroupInvite("P1", "g", ("P1", "P2"), "symmetric")
    large = FormGroupInvite("P1", "g", tuple(f"P{i}" for i in range(20)), "symmetric")
    assert large.wire_size_bytes() > small.wire_size_bytes()
    vote = FormGroupVote("P2", "g", True, ("P1", "P2"))
    assert vote.wire_size_bytes() > 0


def test_estimate_payload_bytes_various_types():
    assert estimate_payload_bytes(None) == 0
    assert estimate_payload_bytes(b"abcd") == 4
    assert estimate_payload_bytes("abc") == 3
    assert estimate_payload_bytes(7) == 8
    assert estimate_payload_bytes([1, 2, 3]) == 24
    assert estimate_payload_bytes({"k": "vv"}) == 3
    assert estimate_payload_bytes(object()) > 0


# ----------------------------------------------------------------------
# Receive / stability vectors
# ----------------------------------------------------------------------
def test_receive_vector_minimum_is_deliverable_bound():
    vector = ReceiveVector(["P1", "P2", "P3"])
    assert vector.deliverable_bound == 0
    vector.record_receipt("P1", 5)
    vector.record_receipt("P2", 3)
    assert vector.deliverable_bound == 0  # P3 still at 0
    vector.record_receipt("P3", 4)
    assert vector.deliverable_bound == 3


def test_receive_vector_updates_are_monotone():
    vector = ReceiveVector(["P1", "P2"])
    assert vector.record_receipt("P1", 5)
    assert not vector.record_receipt("P1", 2)
    assert vector["P1"] == 5


def test_vector_unknown_member_rejected():
    vector = ReceiveVector(["P1"])
    with pytest.raises(KeyError):
        vector.update("P9", 1)


def test_vector_mark_infinite_unblocks_minimum():
    vector = ReceiveVector(["P1", "P2"])
    vector.record_receipt("P1", 10)
    assert vector.deliverable_bound == 0
    vector.mark_infinite("P2")
    assert vector.deliverable_bound == 10


def test_vector_remove_member():
    vector = ReceiveVector(["P1", "P2"])
    vector.remove("P2")
    assert "P2" not in vector
    assert vector.members() == ["P1"]


def test_empty_vector_rejected():
    with pytest.raises(ValueError):
        ReceiveVector([])


def test_stability_vector_bound():
    vector = StabilityVector(["P1", "P2", "P3"])
    vector.record_ldn("P1", 4)
    vector.record_ldn("P2", 6)
    assert vector.stability_bound == 0
    vector.record_ldn("P3", 5)
    assert vector.stability_bound == 4


def test_all_infinite_vector_is_unconstrained():
    vector = ReceiveVector(["P1", "P2"])
    vector.mark_infinite("P1")
    vector.mark_infinite("P2")
    assert vector.deliverable_bound == INFINITY


def test_stability_bound_clamps_when_all_entries_infinite():
    """Mass failure (§5.2 step viii with every other member removed) must
    not let an infinite bound leak into ldn serialisation: the stability
    bound clamps to the last finite value instead."""
    vector = StabilityVector(["P1", "P2", "P3"])
    vector.record_ldn("P1", 4)
    vector.record_ldn("P2", 6)
    vector.record_ldn("P3", 5)
    assert vector.stability_bound == 4
    vector.mark_infinite("P1")
    assert vector.stability_bound == 5  # finite entries still constrain
    vector.mark_infinite("P2")
    vector.mark_infinite("P3")
    assert vector.stability_bound == 5  # clamped to the last finite bound
    assert vector.stability_bound != INFINITY
    # The receive vector's deliverable bound keeps the infinite semantics
    # (D must be free to pass lnmn) -- only the stability side clamps.
    assert vector.minimum() == INFINITY


def test_all_failed_group_never_serialises_infinite_ldn():
    """End-to-end §5.2 edge case: every other member of a group crashes at
    once; the survivor's subsequent messages must carry finite integer
    ldn values and its retention buffer must not grow unboundedly."""
    import math

    from harness import NewtopCluster

    from repro.core import NewtopConfig

    cluster = NewtopCluster(
        ["P1", "P2", "P3"],
        config=NewtopConfig(omega=1.5, suspicion_timeout=6.0, suspector_check_interval=0.5),
        seed=3,
    )
    cluster.create_group("g", ["P1", "P2", "P3"])
    cluster["P1"].multicast("g", "hello")
    cluster.run(5)
    cluster.crash("P2")
    cluster.crash("P3")
    # Run long enough for suspicion, agreement and the view collapse to a
    # singleton, followed by plenty of time-silence nulls.
    cluster.run(80)
    survivor = cluster["P1"]
    endpoint = survivor.endpoint("g")
    assert endpoint.view.sorted_members() == ("P1",)
    bound = endpoint.stability.stability_bound()
    assert not math.isinf(bound)
    ldn = endpoint.engine.ldn()
    assert isinstance(ldn, int)
    assert not math.isinf(ldn)
    # Nulls kept flowing after the collapse and carried finite ldn values
    # the whole time (they were retained/discarded through integer
    # comparisons without error).
    assert endpoint.time_silence.nulls_sent > 0
