"""Probabilistic link faults (``repro.net.faults``).

Two contracts matter to the fuzzer that drives these models:

* **Inertness at zero** -- attaching a model with all-zero rates is
  byte-identical to attaching no model at all (the model draws from its
  own RNG, never the simulator's), so fault-free fuzz corpora stay
  comparable with the rest of the suite.
* **Determinism under faults** -- every drop/reorder/duplicate decision
  derives from ``(simulation seed, fault seed)`` alone, so a fuzz repro
  with faults replays exactly.

Plus the config-layer pieces: eager validation, JSON round-trip, and the
per-directed-link overrides.
"""

import pytest

from repro.net.faults import (
    LinkFaultConfigError,
    LinkFaultModel,
    LinkFaultRates,
    get_link_faults,
)
from repro.scenarios import churn_scenario, run_scenario


# ---------------------------------------------------------------------------
# Config validation + JSON round-trip
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "config, message",
    [
        ({"drop": -0.1}, "drop rate must be within"),
        ({"reorder": 1.5}, "reorder rate must be within"),
        ({"duplicate": True}, "duplicate rate must be a number"),
        ({"bogus": 1}, "unknown link_faults keys"),
        ({"links": {"src": ["A"]}}, "links must be a list"),
        ({"links": [{"src": ["A"]}]}, r"links\[0\].dst must be a non-empty list"),
        ({"links": [{"src": [], "dst": ["B"]}]}, r"links\[0\].src must be a non-empty"),
        ({"links": [{"src": ["A"], "dst": ["B"], "drop": 2.0}]}, "drop rate"),
        ({"reorder_delay": [3.0]}, r"reorder_delay must be a \[low, high\] pair"),
        ({"reorder_delay": [2.0, 1.0]}, "invalid reorder_delay bounds"),
        ("not a mapping", "link_faults must be a mapping"),
    ],
    ids=["drop-low", "reorder-high", "duplicate-bool", "top-keys", "links-shape",
         "link-dst", "link-src", "link-rate", "delay-shape", "delay-order",
         "not-mapping"],
)
def test_from_config_rejects_malformed_configs(config, message):
    with pytest.raises(LinkFaultConfigError, match=message):
        LinkFaultModel.from_config(config)


def test_config_round_trip_preserves_rates_and_links():
    config = {
        "seed": 42,
        "drop": 0.02,
        "reorder": 0.1,
        "duplicate": 0.05,
        "reorder_delay": [0.4, 2.0],
        "links": [{"src": ["P00", "P01"], "dst": ["P02"], "drop": 0.5}],
    }
    model = LinkFaultModel.from_config(config)
    rebuilt = LinkFaultModel.from_config(model.to_config())
    assert rebuilt.to_config() == model.to_config()
    assert rebuilt.seed == 42
    assert rebuilt.global_rates == LinkFaultRates(0.02, 0.1, 0.05)
    assert rebuilt.reorder_delay == (0.4, 2.0)
    # Entry rates override the globals only where the entry names them.
    assert rebuilt.rates_for("P00", "P02") == LinkFaultRates(0.5, 0.1, 0.05)
    assert rebuilt.rates_for("P01", "P02") == LinkFaultRates(0.5, 0.1, 0.05)
    assert rebuilt.rates_for("P02", "P00") == rebuilt.global_rates


def test_link_entries_expand_src_x_dst_and_skip_self_links():
    model = LinkFaultModel.from_config(
        {"links": [{"src": ["A", "B"], "dst": ["B", "C"], "reorder": 0.3}]}
    )
    assert set(model.links) == {("A", "B"), ("A", "C"), ("B", "C")}
    assert not model.global_rates.active
    assert model.active


def test_disruptive_processes_are_the_lossy_link_endpoints():
    fabric = LinkFaultModel(drop=0.01, seed=1)
    assert fabric.disruptive_processes(["A", "B", "C"]) == {"A", "B", "C"}
    one_link = LinkFaultModel.from_config(
        {"links": [{"src": ["A"], "dst": ["B"], "drop": 0.5},
                   {"src": ["B"], "dst": ["C"], "duplicate": 0.5}]}
    )
    # Duplicates are absorbed by the transport: only the lossy link counts.
    assert one_link.disruptive_processes(["A", "B", "C", "D"]) == {"A", "B"}


def test_get_link_faults_resolves_none_model_and_dict():
    assert get_link_faults(None) is None
    model = LinkFaultModel(duplicate=0.1, seed=3)
    assert get_link_faults(model) is model
    assert get_link_faults({"seed": 3, "duplicate": 0.1}).to_config() == model.to_config()


def test_decision_stream_is_seeded_from_the_model_alone():
    first = LinkFaultModel(reorder=0.5, seed=9).make_rng()
    again = LinkFaultModel(reorder=0.5, seed=9).make_rng()
    other = LinkFaultModel(reorder=0.5, seed=10).make_rng()
    draws = [first.random() for _ in range(16)]
    assert draws == [again.random() for _ in range(16)]
    assert draws != [other.random() for _ in range(16)]


# ---------------------------------------------------------------------------
# Scenario-level equivalence and determinism
# ---------------------------------------------------------------------------
def _churn_config(**extra):
    config = churn_scenario(
        n_processes=12, n_groups=2, group_size=5, crashes=1, leaves=1,
        messages_per_sender=2, seed=5,
    )
    config.update(extra)
    return config


def _fingerprint(result):
    return {
        "events_processed": result.events_processed,
        "deliveries": result.deliveries,
        "messages_sent": result.messages_sent,
        "delivery_events": result.delivery_events,
        "sim_time": result.sim_time,
        "trace_events": result.trace_events,
        "agreement_sets": result.agreement_sets,
        "passed": result.passed,
        "violations": list(result.checks.violations),
        "metrics": result.metrics,
    }


def _protocol_fingerprint(result):
    """The protocol-visible slice: drops the network-layer event counts
    (``delivery_events`` includes transport frames the endpoint suppressed)
    and the metrics (which count those frames too)."""
    fingerprint = _fingerprint(result)
    for key in ("events_processed", "delivery_events", "metrics"):
        fingerprint.pop(key)
    return fingerprint


def test_zero_rate_model_is_byte_identical_to_no_model():
    plain = run_scenario(_churn_config(), analysis="online")
    attached = run_scenario(_churn_config(link_faults={"seed": 11}), analysis="online")
    assert plain.passed
    assert _fingerprint(plain) == _fingerprint(attached)


@pytest.mark.parametrize(
    "faults",
    [
        {"seed": 3, "duplicate": 0.4},
        {"seed": 9, "reorder": 0.2, "duplicate": 0.1},
        {"seed": 4, "links": [{"src": ["P000"], "dst": ["P001"], "reorder": 0.5}]},
    ],
    ids=["duplicate", "reorder+duplicate", "per-link"],
)
def test_seeded_faults_replay_byte_identically(faults):
    first = run_scenario(_churn_config(link_faults=faults), analysis="online")
    again = run_scenario(_churn_config(link_faults=faults), analysis="online")
    assert first.passed, list(first.checks.violations)
    assert _fingerprint(first) == _fingerprint(again)


def test_fault_seed_changes_the_decision_stream():
    one = run_scenario(
        _churn_config(link_faults={"seed": 9, "reorder": 0.2, "duplicate": 0.1}),
        analysis="online",
    )
    other = run_scenario(
        _churn_config(link_faults={"seed": 10, "reorder": 0.2, "duplicate": 0.1}),
        analysis="online",
    )
    assert one.passed and other.passed
    assert _fingerprint(one) != _fingerprint(other)


def test_duplicates_never_reach_the_protocol():
    """A duplicated frame is extra network traffic the transport's sequence
    numbers must swallow: the protocol-visible run -- deliveries, trace,
    agreement sets, verdicts -- is identical to the fault-free baseline."""
    plain = run_scenario(_churn_config(), analysis="online")
    noisy = run_scenario(
        _churn_config(link_faults={"seed": 3, "duplicate": 0.4}), analysis="online"
    )
    assert _protocol_fingerprint(plain) == _protocol_fingerprint(noisy)
    # ... while the duplicates themselves demonstrably happened.
    assert noisy.delivery_events > plain.delivery_events
