"""Property-based tests (hypothesis) for the core data structures and for
protocol invariants over randomly generated workloads."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.checkers import check_all, check_total_order
from harness import NewtopCluster

from repro.core import NewtopConfig, OrderingMode
from repro.core.clock import LamportClock
from repro.core.delivery import DeliveryQueue
from repro.core.messages import DataMessage
from repro.core.vectors import ReceiveVector, StabilityVector
from repro.core.views import MembershipView, SignatureView


# ----------------------------------------------------------------------
# Lamport clock
# ----------------------------------------------------------------------
@given(st.lists(st.one_of(st.none(), st.integers(min_value=0, max_value=1000)), max_size=200))
def test_clock_is_monotone_under_any_interleaving(operations):
    clock = LamportClock()
    previous = clock.value
    for operation in operations:
        if operation is None:
            clock.tick()
        else:
            clock.observe(operation)
        assert clock.value >= previous
        previous = clock.value


@given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=50))
def test_ticks_always_produce_strictly_increasing_numbers(observations):
    clock = LamportClock()
    numbers = []
    for observation in observations:
        clock.observe(observation)
        numbers.append(clock.tick())
    assert numbers == sorted(numbers)
    assert len(set(numbers)) == len(numbers)


# ----------------------------------------------------------------------
# Receive / stability vectors
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.sampled_from(["P1", "P2", "P3", "P4"]), st.integers(1, 100)),
        max_size=200,
    )
)
def test_receive_vector_minimum_never_exceeds_any_entry_and_never_decreases(updates):
    vector = ReceiveVector(["P1", "P2", "P3", "P4"])
    previous_minimum = vector.deliverable_bound
    for member, value in updates:
        vector.record_receipt(member, value)
        assert vector.deliverable_bound >= previous_minimum
        assert all(vector[m] >= vector.deliverable_bound for m in vector)
        previous_minimum = vector.deliverable_bound


@given(
    st.lists(
        st.tuples(st.sampled_from(["P1", "P2", "P3"]), st.integers(1, 100)), max_size=100
    )
)
def test_stability_bound_is_a_lower_bound_on_entries(updates):
    vector = StabilityVector(["P1", "P2", "P3"])
    for member, value in updates:
        vector.record_ldn(member, value)
    assert all(vector[m] >= vector.stability_bound for m in vector)


# ----------------------------------------------------------------------
# Delivery queue: safe2 holds for arbitrary enqueue orders and bounds
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.sampled_from(["A", "B", "C"]), st.integers(1, 30)),
        min_size=1,
        max_size=60,
    ),
    st.lists(st.integers(0, 35), min_size=1, max_size=10),
)
def test_delivery_queue_pops_in_nondecreasing_clock_order(messages, bounds):
    queue = DeliveryQueue()
    for sender, clock in messages:
        queue.enqueue(DataMessage.application(sender, "g", clock, 0, None))
    delivered_clocks = []
    for bound in sorted(bounds):
        for delivery in queue.pop_deliverable(bound):
            delivered_clocks.append(delivery.message.clock)
            assert delivery.message.clock <= bound
    assert delivered_clocks == sorted(delivered_clocks)


# ----------------------------------------------------------------------
# Views
# ----------------------------------------------------------------------
@given(
    st.sets(st.sampled_from([f"P{i}" for i in range(8)]), min_size=2, max_size=8).flatmap(
        lambda members: st.tuples(
            st.just(members),
            st.lists(st.sampled_from(sorted(members)), max_size=6, unique=True),
        )
    )
)
def test_views_only_shrink_and_signatures_track_exclusions(data):
    members, removals = data
    view = MembershipView.initial("g", members)
    signature_view = SignatureView.initial("g", members)
    removed_so_far = 0
    for process in removals:
        if process not in view.members or len(view.members) == 1:
            continue
        new_view = view.exclude([process])
        signature_view = signature_view.exclude([process])
        removed_so_far += 1
        assert new_view.members < view.members
        assert new_view.index == view.index + 1
        assert signature_view.exclusions == removed_so_far
        view = new_view


# ----------------------------------------------------------------------
# Whole-protocol property: random workloads keep every guarantee
# ----------------------------------------------------------------------
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(0, 10_000),
    sends=st.lists(
        st.tuples(st.sampled_from(["P1", "P2", "P3"]), st.integers(0, 20)),
        min_size=1,
        max_size=12,
    ),
    mode=st.sampled_from([OrderingMode.SYMMETRIC, OrderingMode.ASYMMETRIC]),
)
def test_random_workloads_preserve_total_and_causal_order(seed, sends, mode):
    config = NewtopConfig(omega=2.0, suspicion_timeout=30.0)
    cluster = NewtopCluster(["P1", "P2", "P3"], config=config, seed=seed)
    cluster.create_group("g", mode=mode)
    for index, (sender, delay_tenths) in enumerate(sends):
        cluster.run(delay_tenths / 10.0)
        cluster[sender].multicast("g", f"{sender}-{index}")
    cluster.run(120)
    orders = [tuple(process.delivered_payloads("g")) for process in cluster]
    assert len(set(orders)) == 1
    assert len(orders[0]) == len(sends)
    result = check_all(cluster.trace())
    assert result.passed, result.violations


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(0, 10_000),
    crash_victim=st.sampled_from(["P3", "P4"]),
    crash_after=st.integers(5, 25),
)
def test_random_crashes_preserve_survivor_agreement(seed, crash_victim, crash_after):
    config = NewtopConfig(omega=1.5, suspicion_timeout=6.0, suspector_check_interval=0.5)
    cluster = NewtopCluster(["P1", "P2", "P3", "P4"], config=config, seed=seed)
    cluster.create_group("g")
    cluster["P1"].multicast("g", "first")
    cluster.run(float(crash_after))
    cluster.crash(crash_victim)
    cluster.run(100)
    cluster["P2"].multicast("g", "second")
    cluster.run(100)
    survivors = [p for p in ("P1", "P2", "P3", "P4") if p != crash_victim]
    orders = {tuple(cluster[p].delivered_payloads("g")) for p in survivors}
    assert len(orders) == 1
    assert "second" in orders.pop()
    result = check_all(cluster.trace(), view_agreement_sets={"g": survivors})
    assert result.passed, result.violations
