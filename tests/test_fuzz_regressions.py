"""Protocol regressions found by the scenario fuzzer.

Each entry below was a checker violation on an earlier build, found by a
fuzz campaign, shrunk, diagnosed and fixed:

* ``(7, 66)`` -- *mutual-suspicion deadlock*: two processes whose traffic
  relayed through a partitioned sequencer suspected each other at the
  same instant; each parked the other's suspect message behind its own
  pending suspicion, so neither learned it had to refute, and both
  vacuously confirmed total detections.  Fixed by letting a suspect
  message naming the *receiver* bypass the pending hold.
* ``(7, 15)`` -- *confirm dropped after a refutation race*: a survivor
  accepted a refutation moments before the peers' confirm arrived, then
  ignored the confirm because it no longer matched local suspicions --
  views split forever.  Fixed by rule (vi) finality: a peer's confirm is
  adopted unconditionally.
* ``(7, 54)`` -- *invisible member*: a process whose only traffic was
  unicasts to a dead sequencer reset its own time-silence timer on each
  send, so it never broadcast a liveness null; peers (rightly) heard
  nothing and removed it.  Fixed by making the timer measure silence as
  observed by *peers* -- unicast requests no longer reset it.
* ``(7, 103)`` -- *unsound failover discard cut*: survivors of a
  sequencer crash cut their streams at the naive lnmn although a peer had
  already delivered higher sequenced numbers; re-sequencing after later
  deliveries broke total order and causality.  Fixed by cutting at the
  agreed last-number of the dead sequencer.
* ``(7, 132)`` -- *membership gossip lost to a partition*: suspicions
  multicast during a partition window vanished both ways and were never
  re-sent, wedging failure agreement (and, through the shared clock,
  another group's view install).  Fixed by re-gossiping long-unresolved
  suspicions every suspicion timeout.
* ``(2026, 92)`` -- *send-blocking rule released at receipt*: a
  sequenced-but-undelivered copy of an own unicast released the Send
  Blocking Rule; a failure agreement then discarded that copy and
  re-sequenced it after causally-later sends in other groups had already
  delivered.  Fixed by releasing only at *delivery* of the own copy.
* ``(42, 44)`` -- *formation vote lost to a partition*: one member's
  ``yes`` vote was partitioned away, so a voter sat in VOTING until the
  timeout and missed the group everyone else activated.  Fixed by
  treating a received ``start-group`` message as proof of a unanimous
  vote.

The full generated corpus entries regenerate deterministically from
``(corpus_seed, index)`` under the default tuning, and the shrunk minimal
repros are pinned verbatim -- both must stay clean.
"""

import pytest

from repro.scenarios import run_scenario
from repro.scenarios.fuzz import run_fuzz_unit

#: ``(corpus_seed, index)`` of every fuzzer-found violation, regenerated in
#: full.  The default-tuning corpus is part of the regression surface: if
#: generator defaults change, these entries change meaning and the pinned
#: shrunk configs below carry the regression load alone.
FUZZER_FOUND = [
    pytest.param(7, 66, id="mutual-suspicion-deadlock"),
    pytest.param(7, 15, id="confirm-vs-refutation-race"),
    pytest.param(7, 54, id="unicast-only-sender-invisible"),
    pytest.param(7, 103, id="failover-discard-cut"),
    pytest.param(7, 132, id="suspicion-gossip-lost-to-partition"),
    pytest.param(2026, 92, id="blocking-rule-released-at-receipt"),
    pytest.param(42, 44, id="formation-vote-lost-to-partition"),
]


@pytest.mark.parametrize("corpus_seed, index", FUZZER_FOUND)
def test_fuzzer_found_corpus_entries_stay_clean(corpus_seed, index):
    row = run_fuzz_unit(corpus_seed, index)
    assert row["status"] != "violation", row["violations"]


#: The shrunk minimal repros, pinned verbatim as the shrinker emitted them.
SHRUNK_REPROS = {
    "failover-discard-cut": {
        "schema": 1,
        "name": "fuzz-7-103",
        "seed": 1412644969,
        "processes": ["P001", "P002", "P004", "P006"],
        "groups": [
            {"id": "g00", "members": ["P004", "P002", "P006", "P001"],
             "mode": "asymmetric"},
            {"id": "g01", "members": ["P006", "P004", "P001"],
             "mode": "asymmetric"},
        ],
        "workload": {"gap": 1.76, "messages_per_sender": 4,
                     "senders_per_group": 2, "start": 1.0},
        "events": [
            {"time": 6.01, "kind": "crash", "targets": ["P006"]},
            {"time": 8.53, "kind": "partition", "components": [["P002", "P004"]]},
        ],
        "load_phases": [{"duration": 9.9, "profile": "uniform", "rate": 2.99,
                         "senders_per_group": 2, "start": 7.28}],
        "latency": {"model": "constant", "delay": 0.763},
        "drain": 40.0,
    },
    "suspicion-gossip-lost-to-partition": {
        "schema": 1,
        "name": "fuzz-7-132",
        "seed": 761779318,
        "processes": ["P001", "P002", "P004", "P005", "P006", "P007"],
        "groups": [
            {"id": "g00", "members": ["P001", "P007", "P006"],
             "mode": "asymmetric"},
            {"id": "g02", "members": ["P007", "P006", "P002", "P004", "P005"],
             "mode": "asymmetric"},
        ],
        "workload": {"messages_per_sender": 2, "senders_per_group": 2,
                     "gap": 2.17, "start": 1.0},
        "events": [
            {"time": 5.21, "kind": "crash", "targets": ["P006"]},
            {"time": 6.03, "kind": "crash", "targets": ["P002"]},
            {"time": 6.8, "kind": "partition", "components": [["P005"]]},
            {"time": 19.4, "kind": "heal"},
        ],
        "latency": {"model": "lognormal", "median": 1.014, "sigma": 0.2},
        "drain": 40.0,
    },
    "blocking-rule-released-at-receipt": {
        "schema": 1,
        "name": "fuzz-2026-92",
        "seed": 1274263422,
        "processes": ["P002", "P003", "P004", "P005", "P006", "P007"],
        "groups": [
            {"id": "g00", "members": ["P002", "P004", "P007", "P006", "P005"],
             "mode": "asymmetric"},
            {"id": "g01", "members": ["P006", "P005", "P003", "P007"],
             "mode": "asymmetric"},
            {"id": "g02", "members": ["P002", "P005", "P006"],
             "mode": "symmetric"},
        ],
        "workload": {"duration": 22.5, "profile": "bursty", "rate": 3.16,
                     "senders_per_group": 3, "start": 1.0},
        "events": [
            {"time": 6.31, "kind": "partition", "components": [["P002", "P005"]]},
            {"time": 7.19, "kind": "crash", "targets": ["P003", "P007"]},
        ],
        "latency": {"model": "uniform", "low": 0.382, "high": 1.125},
        "drain": 40.0,
    },
    "formation-vote-lost-to-partition": {
        "schema": 1,
        "name": "fuzz-42-44",
        "seed": 607975256,
        "processes": ["P002", "P003", "P004", "P005", "P006", "P007"],
        "groups": [
            {"id": "g00", "members": ["P003", "P006", "P007", "P004"],
             "mode": "asymmetric"},
        ],
        "workload": {"messages_per_sender": 3, "senders_per_group": 2,
                     "gap": 1.66, "start": 1.0},
        "events": [
            {"time": 4.86, "kind": "isolate", "targets": ["P003"]},
            {"time": 5.1, "kind": "form_group", "group": "fz0",
             "targets": ["P002", "P005", "P007"]},
            {"time": 6.99, "kind": "partition", "components": [["P004", "P005"]]},
        ],
        "link_faults": {"seed": 38616,
                        "links": [{"src": ["P004"], "dst": ["P005"],
                                   "duplicate": 0.076}]},
        "drain": 40.0,
    },
}


@pytest.mark.parametrize(
    "config", SHRUNK_REPROS.values(), ids=SHRUNK_REPROS.keys()
)
def test_shrunk_minimal_repros_stay_clean(config):
    result = run_scenario(config)
    assert result.passed, list(result.checks.violations)
