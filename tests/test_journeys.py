"""Tests for :mod:`repro.obs.journey` (PR 9).

Covers the deterministic 1-in-N sampler (same message ids tracked across
runs with the same seed, no simulation RNG drawn), the lifecycle tracker
(transitions, wait-state reservoirs, overflow and truncation bounds), the
cause-counter partition invariant at the E19 smoke scale, the journey
explorer CLI (``python -m repro.obs journey``) with its one-line error
contract, and explain-the-violation (implicated-message extraction plus
the pinned-replay that embeds journeys into fuzz repro artifacts).  The
behaviour-free half of the contract is pinned in
``tests/test_hot_path_equivalence.py``.
"""

import json
import os
import sys

import pytest

from repro.api import Session
from repro.obs import Observation
from repro.obs.journey import (
    MAX_TRANSITIONS,
    WAIT_STATES,
    JourneyTracker,
    payload_msg_id,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    document_has_journeys,
    document_has_renderable_content,
    paste_columns,
    render_document,
    render_journey_document,
)
from repro.scenarios import churn_scenario, run_scenario
from repro.scenarios.fuzz import (
    FuzzFailure,
    explain_journeys,
    implicated_message_ids,
    write_artifact,
)


def _benchmarks_on_path():
    benchmarks_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    if benchmarks_dir not in sys.path:
        sys.path.insert(0, benchmarks_dir)


# ----------------------------------------------------------------------
# Sampling: deterministic, seeded, RNG-free
# ----------------------------------------------------------------------
def test_sampling_decision_is_deterministic_per_seed():
    ids = [f"P{p}#{c}" for p in range(1, 9) for c in range(40)]
    first = JourneyTracker(MetricsRegistry(), sample_rate=8, seed=3)
    second = JourneyTracker(MetricsRegistry(), sample_rate=8, seed=3)
    sampled = {msg_id for msg_id in ids if first.wants(msg_id)}
    assert sampled == {msg_id for msg_id in ids if second.wants(msg_id)}
    assert 0 < len(sampled) < len(ids)
    # A different seed samples a different subset of the same id space.
    other = JourneyTracker(MetricsRegistry(), sample_rate=8, seed=4)
    assert sampled != {msg_id for msg_id in ids if other.wants(msg_id)}


def test_force_ids_are_tracked_regardless_of_sampling():
    tracker = JourneyTracker(
        MetricsRegistry(), sample_rate=1 << 32, force_ids=["P1#7"]
    )
    assert tracker.wants("P1#7")
    tracker.created("P1#7", "app_multicast", "P1", "g", 0.0)
    tracker.created("P2#9", "app_multicast", "P2", "g", 0.0)
    assert tracker.journey("P1#7") is not None
    assert tracker.journey("P2#9") is None
    snapshot = tracker.snapshot()
    assert [j["msg_id"] for j in snapshot["forced"]] == ["P1#7"]
    assert snapshot["skipped"] == 1


def test_journey_sampling_deterministic_across_identical_runs():
    from repro.core.messages import reset_message_counter

    def observed_run():
        # Message ids number from a process-global counter; reset it so
        # both runs see identical ids (run_scenario resets it itself).
        reset_message_counter()
        session = Session(
            "newtop", seed=11, analysis="online",
            observe={"journeys": True, "journey_sample_rate": 2},
        )
        session.spawn(["P1", "P2", "P3"])
        session.group("g")
        for index in range(6):
            session.multicast("P1", "g", f"m-{index}")
            session.run(1.0)
        session.run(25.0)
        return session.result().obs["journeys"]

    first, second = observed_run(), observed_run()
    assert first == second
    assert first["tracked"] > 0
    assert {j["msg_id"] for j in first["slowest"]} == {
        j["msg_id"] for j in second["slowest"]
    }


# ----------------------------------------------------------------------
# Lifecycle recording
# ----------------------------------------------------------------------
def test_tracker_records_full_lifecycle_and_wait_states():
    tracker = JourneyTracker(MetricsRegistry(), sample_rate=1)
    tracker.created("P1#0", "app_multicast", "P1", "g", 0.0)
    tracker.sent_to_sequencer("P1#0", 0.0, "P1")
    tracker.sequenced("P1#0", 0.5, "P1")
    tracker.received("P1#0", 1.0, "P2", 0.5)
    tracker.held("P1#0", 1.0, "P2", "suspected_sender")
    tracker.released("P1#0", 1.5, "P2")
    tracker.delivered("P1#0", 2.0, "P2")
    journey = tracker.journey("P1#0")
    assert journey["cause"] == "app_multicast"
    assert journey["deliveries"] == 1
    assert journey["latency"] == pytest.approx(2.0)
    assert [t[0] for t in journey["transitions"]] == [
        "created", "sent_to_sequencer", "sequenced", "received",
        "held", "released", "delivered",
    ]
    stages = tracker.snapshot()["wait_states"]["app_multicast"]
    assert stages["sequencer_queue"]["max"] == pytest.approx(0.5)
    assert stages["transit"]["max"] == pytest.approx(0.5)
    assert stages["suspicion_hold"]["max"] == pytest.approx(0.5)
    assert stages["causal_hold"]["max"] == pytest.approx(1.0)
    assert stages["latency"]["max"] == pytest.approx(2.0)
    assert set(stages) <= set(WAIT_STATES)


def test_tracker_bounds_memory_via_overflow_and_truncation():
    tracker = JourneyTracker(MetricsRegistry(), sample_rate=1, max_tracked=1)
    tracker.created("P1#0", "app_multicast", "P1", "g", 0.0)
    tracker.created("P1#1", "app_multicast", "P1", "g", 0.0)
    tracker.created("P1#2", "app_multicast", "P1", "g", 0.0)
    snapshot = tracker.snapshot()
    assert snapshot["tracked"] == 1
    assert snapshot["overflow"] == 2
    # Per-journey transitions are capped at MAX_TRANSITIONS.
    for index in range(MAX_TRANSITIONS + 10):
        tracker.held("P1#0", float(index), f"p{index}", "suspected_sender")
    journey = tracker.journey("P1#0")
    assert len(journey["transitions"]) == MAX_TRANSITIONS
    assert journey["truncated_transitions"] == 11


def test_payload_msg_id_prefers_msg_id_then_request_id():
    class _Data:
        msg_id = "P1#3"

    class _Request:
        request_id = "P2#5"

    assert payload_msg_id(_Data()) == "P1#3"
    assert payload_msg_id(_Request()) == "P2#5"
    assert payload_msg_id(object()) is None


# ----------------------------------------------------------------------
# Zero overhead when off; partition invariant at E19 smoke scale
# ----------------------------------------------------------------------
def test_unobserved_run_has_no_journey_tracker_anywhere():
    session = Session("newtop", seed=5)
    session.spawn(["P1", "P2"])
    session.group("g")
    assert session.sim.journeys is None
    for process in session.stack.processes.values():
        assert process.journeys is None
    session.run(5.0)
    assert session.result().obs is None
    # The metrics-only tier pays the same is-None branch for journeys.
    assert Observation.coerce(True).journeys is None


def test_cause_counters_partition_transport_sends_at_smoke_scale():
    _benchmarks_on_path()
    from bench_scenario_churn import SMOKE_SCALE, run_churn

    result = run_churn(SMOKE_SCALE, analysis="online", observe="journeys")
    counters = result.obs["metrics"]["counters"]
    by_cause = result.obs["journeys"]["sends_by_cause"]
    assert sum(by_cause.values()) == counters["transport.sends"] > 0
    # The churn shape exercises app traffic, nulls and membership causes.
    assert by_cause["app_multicast"] > 0
    assert by_cause["null_time_silence"] > 0
    assert by_cause["suspicion_gossip"] > 0
    assert by_cause["confirm_refute"] > 0
    assert set(by_cause) <= {
        "app_multicast", "null_time_silence", "suspicion_gossip",
        "confirm_refute", "formation", "failover_resend", "view_cut",
        "other",
    }


# ----------------------------------------------------------------------
# Journey explorer CLI
# ----------------------------------------------------------------------
def _journeys_document(tmp_path, name="BENCH_j.json", benchmark="unit"):
    session = Session(
        "newtop", seed=11, analysis="online",
        observe={"journeys": True, "journey_sample_rate": 1},
    )
    session.spawn(["P1", "P2", "P3"])
    session.group("g")
    for index in range(4):
        session.multicast("P1", "g", f"m-{index}")
        session.run(1.0)
    session.run(25.0)
    path = tmp_path / name
    path.write_text(
        json.dumps({"benchmark": benchmark, "obs": session.result().obs})
    )
    return path


def test_journey_cli_renders_span_trees_and_breakdowns(tmp_path, capsys):
    from repro.obs.__main__ import main

    path = _journeys_document(tmp_path)
    assert main(["journey", str(path)]) == 0
    out = capsys.readouterr().out
    assert "== unit: journeys ==" in out
    assert "sends by cause (partition of transport.sends" in out
    assert "wait states by cause" in out
    assert "slowest sampled journeys" in out
    assert "P1#" in out and "delivered" in out


def test_journey_cli_side_by_side(tmp_path, capsys):
    from repro.obs.__main__ import main

    first = _journeys_document(tmp_path, "a.json", benchmark="left")
    second = _journeys_document(tmp_path, "b.json", benchmark="right")
    assert main(["journey", str(first), str(second)]) == 0
    out = capsys.readouterr().out
    assert "== left: journeys ==" in out
    assert "== right: journeys ==" in out
    assert "│" in out


def test_cli_one_line_errors(tmp_path, capsys):
    from repro.obs.__main__ import main

    missing = tmp_path / "absent.json"
    assert main(["report", str(missing)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: cannot read") and "\n" == err[-1]
    assert "Traceback" not in err

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["report", str(bad)]) == 2
    assert "is not valid JSON" in capsys.readouterr().err

    array = tmp_path / "array.json"
    array.write_text("[1, 2]")
    assert main(["journey", str(array)]) == 2
    assert "expected a JSON object" in capsys.readouterr().err

    no_obs = tmp_path / "no_obs.json"
    no_obs.write_text(json.dumps({"benchmark": "bare", "scale": "smoke"}))
    assert main(["report", str(no_obs)]) == 1
    assert "no obs blocks" in capsys.readouterr().err
    assert main(["journey", str(no_obs)]) == 1
    assert "rerun the benchmark with --observe journeys" in capsys.readouterr().err


def test_report_cli_accepts_multiple_files(tmp_path, capsys):
    from repro.obs.__main__ import main

    first = _journeys_document(tmp_path, "a.json", benchmark="left")
    second = _journeys_document(tmp_path, "b.json", benchmark="right")
    assert main(["report", str(first), str(second)]) == 0
    out = capsys.readouterr().out
    assert "== left ==" in out and "== right ==" in out


def test_paste_columns_pads_ragged_blocks():
    pasted = paste_columns(["aa\nb", "xxx\nyy\nz"], gap=" | ")
    assert pasted.split("\n") == ["aa | xxx", "b  | yy", "   | z"]


# ----------------------------------------------------------------------
# Fuzz campaign tallies and repro artifacts through the same CLI
# ----------------------------------------------------------------------
def _campaign_document():
    return {
        "benchmark": "fuzz_campaign",
        "count": 60,
        "tallies": {"pass": 58, "violation": 1, "stall": 1,
                    "crashed": 0, "timeout": 0},
        "specs_per_minute": 812.5,
        "failures": [{"index": 3, "status": "violation", "shrink_runs": 41}],
        "oracle": {"violations": 1, "violation_kind": "total-order",
                   "budget": 40, "shrunk_events": 2},
    }


def test_report_renders_fuzz_campaign_tallies():
    document = _campaign_document()
    assert document_has_renderable_content(document)
    text = render_document(document)
    assert "fuzz campaign" in text
    assert "specs run" in text and "60" in text
    assert "violation" in text
    assert "specs/min" in text and "812.5" in text
    assert "shrink steps" in text and "41" in text
    assert "oracle arm" in text and "total-order" in text


def test_fuzz_artifact_renders_with_embedded_journeys(tmp_path, capsys):
    from repro.obs.__main__ import main

    journey = {
        "msg_id": "P3#17", "cause": "app_multicast", "sender": "P3",
        "group": "g1", "created_at": 4.0, "deliveries": 2, "latency": 3.25,
        "truncated_transitions": 0,
        "transitions": [["created", 4.0, "P3", "app_multicast"],
                        ["delivered", 7.25, "P1", None]],
    }
    failure = FuzzFailure(
        index=3, status="violation",
        violations=["total order violated between P1 and P2: P3#17 vs P4#2"],
        violation_kind="total-order", config={"processes": ["P1"]},
        minimized={"processes": ["P1"]}, shrink_runs=41, journeys=[journey],
    )
    path = tmp_path / "fuzz-7-00003-violation.json"
    write_artifact(str(path), failure, corpus_seed=7)
    document = json.loads(path.read_text())
    assert document["kind"] == "fuzz-repro"
    assert document["journeys"][0]["msg_id"] == "P3#17"
    assert document_has_journeys(document)
    # Both subcommands render the artifact: report shows the diagnosis,
    # journey shows the implicated message's span tree.
    assert main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "fuzz repro artifact" in out and "implicated message journeys" in out
    assert main(["journey", str(path)]) == 0
    out = capsys.readouterr().out
    assert "P3#17" in out and "delivered" in out
    assert render_journey_document(document).count("P3#17") >= 1


# ----------------------------------------------------------------------
# Explain-the-violation
# ----------------------------------------------------------------------
def test_implicated_message_ids_dedupes_in_first_mention_order():
    violations = [
        "total order violated between P1 and P2: P3#17 vs P4#2",
        "causally preceding P3#17 not delivered before P10#0",
    ]
    assert implicated_message_ids(violations) == ["P3#17", "P4#2", "P10#0"]
    assert implicated_message_ids(["view sequences differ"]) == []


def test_explain_journeys_returns_empty_without_ids_or_on_failure():
    assert explain_journeys({}, ["no message named here"]) == []
    # An unrunnable config is swallowed: explanations are best-effort.
    assert explain_journeys({"nonsense": True}, ["P1#0 implicated"]) == []


def test_explain_journeys_replays_and_pins_implicated_messages():
    config = churn_scenario(
        n_processes=6, n_groups=2, group_size=4, crashes=0, leaves=0,
        messages_per_sender=1, seed=3,
    )
    # Learn a real message id from a fully-sampled observed run...
    result = run_scenario(
        config, observe={"journeys": True, "journey_sample_rate": 1}
    )
    slowest = result.obs["journeys"]["slowest"]
    assert slowest, "scenario delivered nothing to trace"
    msg_id = slowest[0]["msg_id"]
    # ...then ask the explainer about a violation naming it.
    journeys = explain_journeys(
        config, [f"total order violated between P1 and P2: {msg_id} vs {msg_id}"]
    )
    assert [j["msg_id"] for j in journeys] == [msg_id]
    states = [t[0] for t in journeys[0]["transitions"]]
    assert states[0] == "created" and "delivered" in states
