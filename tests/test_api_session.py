"""Tests for the unified ``repro.api`` session layer (ISSUE-3 surface).

Covers: the Session lifecycle on Newtop and every baseline stack,
per-stack check selection, the capability-flag path for unsupported
scenario events, the removal of the old cluster-constructor shims,
the primary-partition policy stack, and the cross-stack churn smoke run
(the E20 code path at tier-1 scale).
"""

import pytest

from repro.api import (
    COMPARISON_STACKS,
    Session,
    StackError,
    UnsupportedScenarioEvent,
    UnsupportedStackOperation,
    available_stacks,
    get_stack,
)
from repro.scenarios import churn_scenario, run_scenario

NAMES = ["A", "B", "C", "D"]


def _drive(session, senders=("A", "B"), group="g", count=2, horizon=60):
    for index in range(count):
        for sender in senders:
            session.multicast(sender, group, f"{sender}-{index}")
    session.run(horizon)


# ---------------------------------------------------------------------------
# Session lifecycle across stacks
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("stack", sorted(COMPARISON_STACKS))
def test_session_lifecycle_on_every_comparison_stack(stack):
    session = Session(stack=stack, seed=3, analysis="online")
    session.spawn(NAMES)
    session.group("g")
    _drive(session)
    result = session.result()
    assert result.passed, result.checks.violations[:3]
    assert result.deliveries == 4 * len(NAMES)
    assert result.trace_events_stored == 0  # online mode: nothing retained
    assert result.metrics["by_kind"]["deliver"] == result.deliveries
    # Everyone delivered the same ids (per the stack's own ordering rules).
    sequences = {tuple(session.stack.delivered_ids(name, "g")) for name in NAMES}
    assert len({frozenset(sequence) for sequence in sequences}) == 1


def test_session_offline_mode_materializes_a_trace():
    session = Session(stack="fixed_sequencer", seed=1)
    session.spawn(NAMES)
    session.group("g")
    _drive(session)
    trace = session.trace()
    assert len(trace.events(kind="deliver")) == session.deliveries()
    result = session.result()
    assert result.passed and result.analysis == "offline"


def test_per_stack_check_selection():
    # Psync claims causal order only; the sequencer claims total order.
    assert get_stack("psync").checks == ("causal_prefix", "sender_in_view")
    assert "total_order" in get_stack("fixed_sequencer").checks
    assert get_stack("newtop").check_scope == "global"
    assert get_stack("isis").check_scope == "group"
    # An explicit subset overrides the stack's declaration...
    session = Session(stack="lamport_ack", seed=2, analysis="online",
                      checks=("total_order",))
    session.spawn(NAMES)
    session.group("g")
    _drive(session)
    assert session.result().passed
    # ...and checks=() disables verification entirely.
    session = Session(stack="newtop", seed=2, checks=())
    session.spawn(NAMES)
    session.group("g")
    _drive(session)
    assert session.result().checks is None
    assert session.result().passed


def test_unknown_stack_and_unsupported_operations():
    with pytest.raises(StackError):
        get_stack("does-not-exist")
    assert set(COMPARISON_STACKS) <= set(available_stacks())
    session = Session(stack="isis", seed=1)
    session.spawn(NAMES)
    session.group("g")
    with pytest.raises(UnsupportedStackOperation):
        session.leave("A", "g")
    with pytest.raises(UnsupportedStackOperation):
        session.form_group("g2", ["A", "B"])


def test_primary_partition_stack_halts_the_minority():
    session = Session(stack="primary_partition", seed=4)
    session.spawn(["A", "B", "C", "D", "E"])
    session.group("g")
    assert session.multicast("E", "g", "before") is not None
    session.run(30)
    session.partition([["A", "B", "C"], ["D", "E"]])
    # The majority side keeps operating; the minority is halted.
    assert session.multicast("A", "g", "majority") is not None
    assert session.multicast("E", "g", "minority") is None
    assert ("E", "g") in session.stack.halted_memberships()
    session.run(30)
    session.heal()
    assert session.stack.halted_memberships() == []
    assert session.multicast("E", "g", "after-heal") is not None
    session.run(30)
    assert session.result().passed


# ---------------------------------------------------------------------------
# Capability flags in the scenario engine
# ---------------------------------------------------------------------------


def _form_group_config():
    return {
        "name": "formation on a baseline",
        "processes": 6,
        "groups": [{"id": "g", "members": ["P001", "P002", "P003", "P004"]}],
        "workload": {"messages_per_sender": 2, "gap": 2.0},
        "events": [
            {"time": 4.0, "kind": "form_group", "group": "fg",
             "targets": ["P005", "P006"]},
        ],
        "drain": 15.0,
    }


def test_form_group_on_a_baseline_raises_a_clear_error():
    with pytest.raises(UnsupportedScenarioEvent, match="form_group.*capability"):
        run_scenario(_form_group_config(), stack="fixed_sequencer")


def test_form_group_on_a_baseline_skips_with_a_recorded_warning():
    result = run_scenario(
        _form_group_config(), stack="fixed_sequencer", on_unsupported="skip"
    )
    assert result.passed
    assert len(result.skipped_events) == 1
    assert "form_group" in result.skipped_events[0]
    assert "skipped" in result.skipped_events[0]
    # The static group still carried its workload.
    assert result.deliveries > 0


def test_crash_events_apply_to_baseline_stacks():
    config = {
        "name": "crash on a baseline",
        "processes": 4,
        "groups": [{"id": "g", "members": ["P001", "P002", "P003", "P004"]}],
        "workload": {"messages_per_sender": 3, "gap": 3.0},
        "events": [{"time": 4.0, "kind": "crash", "targets": ["P004"]}],
        "drain": 20.0,
    }
    result = run_scenario(config, stack="isis", analysis="online")
    assert result.passed, result.checks.violations[:3]
    assert result.stack == "isis"
    assert result.skipped_events == []
    assert result.deliveries > 0


# ---------------------------------------------------------------------------
# Cross-stack churn smoke (the E20 code path at tier-1 scale)
# ---------------------------------------------------------------------------


def test_churn_scenario_runs_on_all_six_stacks():
    config = churn_scenario(
        n_processes=10, n_groups=3, group_size=5, crashes=1, leaves=1, seed=5
    )
    deliveries = {}
    for stack in COMPARISON_STACKS:
        result = run_scenario(
            config, stack=stack, analysis="online", on_unsupported="skip"
        )
        assert result.passed, (stack, result.checks.violations[:3])
        assert result.trace_events_stored == 0
        assert result.deliveries > 0
        # Newtop expresses every event; baselines skip the 'leave'.
        if stack.startswith("newtop"):
            assert result.skipped_events == []
        else:
            assert len(result.skipped_events) == 1
        deliveries[stack] = result.deliveries
    assert len(deliveries) == 6


# ---------------------------------------------------------------------------
# The deprecated cluster constructors are gone from the public API
# ---------------------------------------------------------------------------


def test_cluster_shims_removed_from_public_api():
    import repro
    import repro.baselines
    import repro.core

    for module in (repro, repro.core):
        assert not hasattr(module, "NewtopCluster")
    assert not hasattr(repro.baselines, "BaselineCluster")
    with pytest.raises(ImportError):
        from repro.core import cluster  # noqa: F401
