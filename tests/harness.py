"""Tests-local cluster harnesses for protocol-level unit tests.

The public entry point for running any protocol is
:class:`repro.api.Session`; the deprecated ``NewtopCluster`` /
``BaselineCluster`` shims were removed from the package.  The protocol
*unit* tests, however, deliberately poke below the session layer -- they
reach into individual processes, hand-build views, inspect retention
buffers -- so they keep a minimal cluster harness here, local to the test
suite, where it cannot leak back into the public API.

Everything here is a thin wire-up of the real substrate objects
(:class:`~repro.net.simulator.Simulator`, :class:`~repro.net.network.Network`,
:class:`~repro.net.transport.Transport`, :class:`~repro.net.trace.TraceRecorder`);
no protocol behaviour lives in this file.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Type

from repro.baselines import BaselineProcess
from repro.core.config import NewtopConfig, OrderingMode
from repro.core.process import NewtopProcess
from repro.net.failures import FailureSchedule, FaultInjector
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.net.simulator import Simulator
from repro.net.trace import EventTrace, TraceRecorder
from repro.net.transport import Transport


class NewtopCluster:
    """A set of Newtop processes sharing one simulated network."""

    def __init__(
        self,
        process_ids: Sequence[str],
        config: Optional[NewtopConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = Simulator(seed=seed)
        network_config = NetworkConfig()
        if latency_model is not None:
            network_config.latency_model = latency_model
        self.network = Network(self.sim, network_config)
        self.transport = Transport(self.network)
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self.config = (config or NewtopConfig()).validate()
        self.injector = FaultInjector(self.sim, self.network)
        self.processes: Dict[str, NewtopProcess] = {}
        for process_id in process_ids:
            self.processes[process_id] = NewtopProcess(
                process_id,
                self.sim,
                self.transport,
                recorder=self.recorder,
                config=self.config,
            )

    # ------------------------------------------------------------------
    # Membership helpers
    # ------------------------------------------------------------------
    def __getitem__(self, process_id: str) -> NewtopProcess:
        return self.processes[process_id]

    def __iter__(self):
        return iter(self.processes.values())

    @property
    def process_ids(self) -> List[str]:
        """Identifiers of all processes in the cluster."""
        return sorted(self.processes)

    def create_group(
        self,
        group_id: str,
        members: Optional[Sequence[str]] = None,
        mode: Optional[OrderingMode] = None,
    ) -> None:
        """Install a statically configured group on all of its members."""
        members = list(members) if members is not None else self.process_ids
        for member in members:
            self.processes[member].create_group(group_id, members, mode=mode)

    def members_of(self, group_id: str) -> List[NewtopProcess]:
        """Processes that currently consider themselves members of the group."""
        return [
            process
            for process in self.processes.values()
            if not process.crashed and process.is_member(group_id)
        ]

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_failures(self, schedule: FailureSchedule) -> None:
        """Schedule a declarative set of failures on the cluster."""
        self.injector.install(schedule)

    def crash(self, process_id: str) -> None:
        """Crash one process immediately (crash-stop)."""
        self.processes[process_id].crash()

    def partition(self, components: Sequence[Iterable[str]]) -> None:
        """Install a network partition immediately."""
        self.injector.partition_now(components)

    def heal(self) -> None:
        """Heal all partitions immediately."""
        self.injector.heal_now()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        """Advance simulated time by ``duration``."""
        self.sim.run(until=self.sim.now + duration)

    def run_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        """Run until ``predicate()`` holds or ``timeout`` simulated time passes."""
        return self.sim.run_until(predicate, timeout)

    def run_until_delivered(
        self, message_id: str, processes: Optional[Sequence[str]] = None, timeout: float = 200.0
    ) -> bool:
        """Run until every listed (alive) process has delivered ``message_id``."""
        targets = [
            self.processes[process_id]
            for process_id in (processes or self.process_ids)
        ]

        def all_delivered() -> bool:
            return all(
                process.crashed
                or any(record.msg_id == message_id for record in process.delivered)
                for process in targets
            )

        return self.run_until(all_delivered, timeout)

    def trace(self) -> EventTrace:
        """The trace of everything recorded so far."""
        return self.recorder.trace()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NewtopCluster(processes={self.process_ids}, now={self.sim.now:.2f})"


class BaselineCluster:
    """A group of identical baseline processes on one simulated network."""

    def __init__(
        self,
        process_class: Type[BaselineProcess],
        process_ids: Sequence[str],
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
        **process_kwargs,
    ) -> None:
        self.sim = Simulator(seed=seed)
        network_config = NetworkConfig()
        if latency_model is not None:
            network_config.latency_model = latency_model
        self.network = Network(self.sim, network_config)
        self.transport = Transport(self.network)
        self.processes: Dict[str, BaselineProcess] = {}
        for process_id in process_ids:
            self.processes[process_id] = process_class(
                process_id, self.sim, self.transport, process_ids, **process_kwargs
            )

    def __getitem__(self, process_id: str) -> BaselineProcess:
        return self.processes[process_id]

    def __iter__(self):
        return iter(self.processes.values())

    def run(self, duration: float) -> None:
        """Advance simulated time by ``duration``."""
        self.sim.run(until=self.sim.now + duration)

    def run_until_all_delivered(self, expected: int, timeout: float = 500.0) -> bool:
        """Run until every process has made at least ``expected`` deliveries."""
        return self.sim.run_until(
            lambda: all(len(process.delivered) >= expected for process in self),
            timeout,
        )

    def total_protocol_bytes(self) -> int:
        """Protocol-overhead bytes transmitted by all processes."""
        return sum(process.protocol_bytes_sent for process in self)

    def total_messages_sent(self) -> int:
        """Network messages transmitted (from the network's counters)."""
        return self.network.stats.messages_sent

    def delivery_orders_agree(self) -> bool:
        """Whether every pair of processes agrees on the relative order of
        the messages they both delivered (the baseline's own sanity check)."""
        orders = [process.delivered_ids() for process in self]
        for i, first in enumerate(orders):
            for second in orders[i + 1 :]:
                common = set(first) & set(second)
                first_common = [msg for msg in first if msg in common]
                second_common = [msg for msg in second if msg in common]
                if first_common != second_common:
                    return False
        return True
