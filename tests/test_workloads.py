"""Tier-1 tests for the open-loop workload subsystem (``repro.workloads``).

Determinism is the load-bearing property: a workload profile must issue
the identical traffic sequence for a given seed regardless of which
protocol stack consumes it, or per-stack comparisons measure the workload
instead of the protocol.  Every arrival process and selection policy is
pinned here, plus the client's offered/admitted/delivered accounting and
the scenario-spec integration.
"""

import itertools
import random

import pytest

from repro.api import Session
from repro.scenarios import ScenarioConfigError, from_config, run_scenario
from repro.workloads import (
    ARRIVAL_KINDS,
    OpenLoopClient,
    SELECTION_KINDS,
    available_profiles,
    get_profile,
    materialize,
)

FAST = dict(omega=1.5, suspicion_timeout=6.0, suspector_check_interval=0.5)


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(ARRIVAL_KINDS))
def test_arrival_process_deterministic_per_seed(kind):
    process = ARRIVAL_KINDS[kind](rate=2.0)
    first = list(itertools.islice(process.gaps(random.Random(42)), 50))
    second = list(itertools.islice(process.gaps(random.Random(42)), 50))
    assert first == second
    assert all(gap > 0 for gap in first)
    assert process.mean_rate() == 2.0


@pytest.mark.parametrize("kind", sorted(ARRIVAL_KINDS))
def test_arrival_process_rate_roughly_holds(kind):
    process = ARRIVAL_KINDS[kind](rate=2.0)
    gaps = list(itertools.islice(process.gaps(random.Random(7)), 4000))
    observed = len(gaps) / sum(gaps)
    assert 1.5 < observed < 2.7, (kind, observed)


def test_bursty_arrivals_actually_burst():
    process = ARRIVAL_KINDS["bursty"](rate=1.0, burst_size=8, peak_factor=10.0)
    gaps = list(itertools.islice(process.gaps(random.Random(3)), 64))
    # Within a burst the gap is 1/(peak*rate); between bursts much larger.
    assert min(gaps) < 0.2 < max(gaps)


# ----------------------------------------------------------------------
# Selection policies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(SELECTION_KINDS))
def test_selection_policy_deterministic_per_seed(kind):
    policy = SELECTION_KINDS[kind]()
    senders = ["S1", "S2", "S3", "S4"]
    groups = ["g1", "g2", "g3", "g4"]
    first = [policy.choose(random.Random(5), senders, groups) for _ in range(1)]
    rng_a, rng_b = random.Random(5), random.Random(5)
    seq_a = [policy.choose(rng_a, senders, groups) for _ in range(100)]
    seq_b = [policy.choose(rng_b, senders, groups) for _ in range(100)]
    assert seq_a == seq_b
    assert all(s in senders and g in groups for s, g in seq_a)


@pytest.mark.parametrize("kind", ["zipf", "hot_group"])
def test_skewed_policies_same_seed_same_draws(kind):
    # The KV workload draws *keys* through these policies; per-seed
    # reproducibility of the exact draw sequence is what makes two runs
    # of the same benchmark byte-identical.
    policy = SELECTION_KINDS[kind]()
    items = [f"k{i}" for i in range(32)]
    draws_a = [policy.choose(random.Random(77), items, ("-",)) for _ in range(1)]
    rng_a, rng_b = random.Random(77), random.Random(77)
    seq_a = [policy.choose(rng_a, items, ("-",))[0] for _ in range(500)]
    seq_b = [policy.choose(rng_b, items, ("-",))[0] for _ in range(500)]
    assert seq_a == seq_b
    assert draws_a[0][0] == seq_a[0]


@pytest.mark.parametrize(
    "bad", [0.0, -1.0, float("nan"), float("inf"), -float("inf")]
)
def test_zipf_exponent_out_of_range_rejected(bad):
    with pytest.raises(ValueError):
        SELECTION_KINDS["zipf"](exponent=bad)


@pytest.mark.parametrize("good", [0.5, 1.0, 1.2, 2.0])
def test_zipf_exponent_useful_range_accepted(good):
    policy = SELECTION_KINDS["zipf"](exponent=good)
    sender, _ = policy.choose(random.Random(1), ["a", "b"], ["g"])
    assert sender in ("a", "b")


def test_zipf_senders_skew_towards_list_head():
    policy = SELECTION_KINDS["zipf"](exponent=1.5)
    rng = random.Random(11)
    senders = [f"S{i}" for i in range(8)]
    counts = {}
    for _ in range(2000):
        sender, _ = policy.choose(rng, senders, ["g"])
        counts[sender] = counts.get(sender, 0) + 1
    assert counts["S0"] > counts.get("S3", 0) > counts.get("S7", 0)


def test_hot_groups_skew_towards_hot_fraction():
    policy = SELECTION_KINDS["hot_group"](hot_fraction=0.25, hot_share=0.8)
    rng = random.Random(13)
    groups = [f"g{i}" for i in range(8)]
    hot = 0
    for _ in range(2000):
        _, group = policy.choose(rng, ["S"], groups)
        hot += group in groups[:2]
    assert hot > 1200  # ~80% of 2000, far above the uniform 500


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def test_profile_registry_resolves_and_rejects():
    assert set(available_profiles()) >= {"uniform", "poisson", "bursty", "ramp",
                                         "zipf", "hot_group"}
    profile = get_profile("bursty", rate=3.0, burst_size=4)
    assert profile.offered_rate() == 3.0
    assert profile.describe()["arrivals"] == "bursty"
    with pytest.raises(ValueError):
        get_profile("nope")
    with pytest.raises(ValueError):
        get_profile("poisson", rate=1.0, burst_size=4)  # option of another kind


def test_materialize_is_deterministic_and_sorted():
    profile = get_profile("poisson", rate=2.0)
    first = materialize(profile, ["A", "B"], ["g"], duration=30, seed=9)
    second = materialize(profile, ["A", "B"], ["g"], duration=30, seed=9)
    assert [(s.time, s.process, s.group) for s in first] == [
        (s.time, s.process, s.group) for s in second
    ]
    assert all(a.time <= b.time for a, b in zip(first, first[1:]))
    assert first != materialize(profile, ["A", "B"], ["g"], duration=30, seed=10)


# ----------------------------------------------------------------------
# The open-loop client across stacks
# ----------------------------------------------------------------------
def _run_client(stack, profile_name, seed=21):
    session = Session(stack, config=FAST, analysis="online", seed=3)
    session.spawn(["P1", "P2", "P3", "P4"])
    session.group("g")
    client = session.attach_client(
        OpenLoopClient(
            get_profile(profile_name, rate=2.0),
            ["P1", "P2", "P3"],
            ["g"],
            seed=seed,
            duration=15.0,
            record_issues=True,
        )
    )
    client.start()
    session.run(45)
    assert session.result().passed
    return client


@pytest.mark.parametrize("profile_name", ["poisson", "bursty", "zipf"])
def test_client_issues_identical_traffic_on_two_stacks(profile_name):
    """Same seed => identical (time, sender, group, size) sequence, even on
    protocol stacks with completely different delivery dynamics."""
    newtop = _run_client("newtop", profile_name)
    sequencer = _run_client("fixed_sequencer", profile_name)
    assert newtop.issued == sequencer.issued
    assert len(newtop.issued) > 10


def test_client_accounting_offered_admitted_delivered():
    client = _run_client("newtop", "poisson")
    counters = client.counters()
    assert counters["offered"] == counters["admitted"] + counters["blocked"]
    assert counters["offered"] >= counters["admitted"] >= counters["delivered_unique"]
    assert counters["delivered_unique"] > 0
    latency = client.latency_summary()
    assert latency["count"] == counters["delivered_events"]
    assert latency["min"] <= latency["p50"] <= latency["p99"] <= latency["max"]


def test_client_backpressure_records_blocked_sends():
    """A tight flow-control window under high offered load must show up as
    offered > admitted -- the backpressure-aware accounting."""
    session = Session(
        "newtop", config=dict(FAST, flow_control_window=1), analysis="online", seed=5
    )
    session.spawn(["P1", "P2", "P3"])
    session.group("g")
    client = session.attach_client(
        OpenLoopClient(get_profile("poisson", rate=20.0), ["P1"], ["g"],
                       seed=8, duration=10.0)
    )
    client.start()
    session.run(40)
    assert client.blocked > 0
    assert client.offered == client.admitted + client.blocked
    assert session.result().passed


def test_client_requires_bind_before_start():
    client = OpenLoopClient(get_profile("poisson"), ["P1"], ["g"])
    with pytest.raises(RuntimeError):
        client.start()


# ----------------------------------------------------------------------
# Scenario-spec integration
# ----------------------------------------------------------------------
def test_scenario_workload_profile_runs_open_loop():
    config = {
        "name": "open-loop smoke",
        "seed": 4,
        "processes": 6,
        "groups": [{"id": "g0", "members": [f"P{i:03d}" for i in range(1, 7)]}],
        "workload": {"profile": "poisson", "rate": 1.5, "duration": 12.0,
                     "senders_per_group": 3},
        "events": [{"time": 5.0, "kind": "crash", "targets": ["P006"]}],
        "drain": 30.0,
    }
    result = run_scenario(config, analysis="online")
    assert result.passed, result.checks.violations
    assert result.workload is not None
    assert result.workload["profile"] == "poisson"
    assert (
        result.workload["offered"]
        >= result.workload["admitted"]
        >= result.workload["delivered_unique"]
        > 0
    )


def test_scenario_workload_profile_validation():
    base = {
        "groups": [{"id": "g", "members": ["A", "B"]}],
    }
    with pytest.raises(ScenarioConfigError):
        from_config({**base, "workload": {"profile": "not-a-profile"}})
    with pytest.raises(ScenarioConfigError):
        from_config({**base, "workload": {"profile": "poisson", "rate": 0}})
    spec = from_config({**base, "workload": {"profile": "poisson", "duration": 25.0}})
    # The horizon must cover the open-loop window, not the closed-loop rounds.
    assert spec.horizon() >= 25.0


def test_scenario_closed_loop_unchanged_without_profile():
    spec = from_config({"groups": [{"id": "g", "members": ["A", "B"]}]})
    assert spec.workload.profile is None
    result = run_scenario(
        {"groups": [{"id": "g", "members": ["A", "B"]}], "drain": 20.0}
    )
    assert result.passed
    assert result.workload is None
