"""Tier-1 tests for the sweep runner (``repro.experiments``).

A smoke-scale grid exercises the full cell lifecycle -- topology, phased
faults, availability and stall accounting -- and pins the report-level
consistency property the E21 benchmark relies on:
``offered >= admitted >= delivered_unique`` in every cell.
"""

import json

import pytest

from repro.experiments import SweepSpec, run_cell, run_sweep


def tiny_spec(**overrides):
    base = dict(
        stacks=("newtop", "fixed_sequencer"),
        profiles=("poisson",),
        loads=(0.5, 1.0),
        faults=("none",),
        processes=6,
        groups=2,
        group_size=4,
        duration=18.0,
        drain=24.0,
        seed=11,
    )
    base.update(overrides)
    return SweepSpec(**base)


def test_spec_validation_and_topology():
    with pytest.raises(ValueError):
        tiny_spec(faults=("meteor",))
    with pytest.raises(ValueError):
        tiny_spec(group_size=99)
    topology = tiny_spec().topology()
    assert len(topology) == 2
    members = {m for _, ms in topology for m in ms}
    assert len(members) <= 6
    # Ring overlap: consecutive groups share members.
    assert set(topology[0][1]) & set(topology[1][1])
    # The crash victim leads no group (it must not be a sequencer).
    leaders = {ms[0] for _, ms in topology}
    assert tiny_spec().crash_targets()[0] not in leaders


def test_sweep_report_consistency_property():
    """The invariant the ISSUE names: offered >= admitted >= delivered
    counts are consistent in every cell of the sweep report."""
    report = run_sweep(tiny_spec(faults=("none", "crash")))
    assert len(report.cells) == 2 * 2 * 2  # stacks x loads x faults
    assert report.passed
    for cell in report.cells:
        assert cell["offered"] >= cell["admitted"] >= cell["delivered_unique"], cell
        assert cell["offered"] == cell["admitted"] + cell["blocked"]
        assert cell["trace_events_stored"] == 0
        phase_offered = sum(phase["offered"] for phase in cell["phases"].values())
        assert phase_offered == cell["offered"]
    # The report must be JSON-serializable as-is (the CI artifact).
    json.dumps(report.as_dict())


def test_curves_cover_every_load_point_in_order():
    report = run_sweep(tiny_spec())
    curves = report.curves()
    for stack in ("newtop", "fixed_sequencer"):
        points = curves[stack]["poisson"]
        assert [point["offered_load"] for point in points] == [0.5, 1.0]
        assert all(point["goodput"] > 0 for point in points)


def test_crash_cell_stalls_all_ack_but_not_newtop():
    # E21-smoke dimensions: the window must be long enough past the crash
    # that the stalled group's client still offers load during recovery.
    spec = tiny_spec(
        stacks=("newtop", "lamport_ack"),
        loads=(2.0,),
        faults=("crash",),
        processes=8,
        group_size=5,
        duration=24.0,
        drain=30.0,
    )
    newtop = run_cell(spec, "newtop", "poisson", 2.0, "crash")
    lamport = run_cell(spec, "lamport_ack", "poisson", 2.0, "crash")
    assert newtop["passed"] and lamport["passed"]
    assert newtop["stalled_groups"] == 0
    assert lamport["stalled_groups"] > 0
    assert newtop["delivered_unique"] > lamport["delivered_unique"]


def test_partition_cell_availability_contrast():
    spec = tiny_spec(
        stacks=("newtop", "primary_partition"), loads=(1.0,), faults=("partition",)
    )
    newtop = run_cell(spec, "newtop", "poisson", 1.0, "partition")
    primary = run_cell(spec, "primary_partition", "poisson", 1.0, "partition")
    assert newtop["passed"] and primary["passed"]
    assert 0.0 <= primary["availability"] <= 1.0
    # The primary-partition policy refuses the minority's sends; Newtop
    # admits on both sides of the split (E16 under open-loop load).
    assert primary["availability"] < 1.0
    assert newtop["availability"] > primary["availability"]


def test_cell_lookup_raises_on_missing():
    report = run_sweep(tiny_spec(loads=(0.5,)))
    report.cell("newtop", "poisson", 0.5)
    with pytest.raises(KeyError):
        report.cell("newtop", "poisson", 9.9)


def test_asymmetric_crash_cell_holds_virtual_synchrony():
    """Regression for the post-PR-4 known issue: the ISSUE's exact repro.

    Under faults + sustained open-loop load, a member whose detection
    lagged could deliver a freshly sequenced message in the old view.
    The sequenced view-cut marker translates the detection into sequencer
    numbering, so the cell must now pass -- and newtop-asymmetric is back
    in E21's crash/partition cells on the strength of this pin.
    """
    spec = SweepSpec(processes=8, groups=2, group_size=5)
    row = run_cell(spec, "newtop-asymmetric", "poisson", 1.0, "crash")
    assert row["passed"], row["violations"]
    assert row["stalled_groups"] == 0
    partition = run_cell(spec, "newtop-asymmetric", "poisson", 1.0, "partition")
    assert partition["passed"], partition["violations"]


def test_latency_model_knob_routes_into_the_cell():
    """The ROADMAP's "still unexposed" knob: a named repro.net.latency
    model (with options) selected per spec, validated at spec build."""
    with pytest.raises(ValueError):
        tiny_spec(latency_model="wormhole")
    with pytest.raises(ValueError):
        tiny_spec(latency_model="lognormal", latency_options={"median": -1})
    spec = tiny_spec(
        stacks=("newtop",),
        loads=(1.0,),
        latency_model="lognormal",
        latency_options={"median": 0.8, "sigma": 0.3},
        protocol={"suspicion_timeout": 8.0},
    )
    assert spec.describe()["latency_model"] == "lognormal"
    row = run_cell(spec, "newtop", "poisson", 1.0, "none")
    assert row["passed"], row["violations"]
    # The heavier network must actually show up in the measurements:
    # the same cell on the (faster) default uniform model is quicker.
    default_row = run_cell(tiny_spec(stacks=("newtop",), loads=(1.0,)),
                           "newtop", "poisson", 1.0, "none")
    assert row["latency"]["mean"] != default_row["latency"]["mean"]
