"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.net.simulator import Simulator, SimulatorError


def test_initial_state():
    sim = Simulator(seed=42)
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.events_processed == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(2.0, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulatorError):
        sim.schedule(-0.1, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    handle.cancel()
    sim.run()
    assert fired == ["kept"]
    assert handle.cancelled


def test_run_until_time_bound():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_events_scheduled_during_execution():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: sim.schedule_at(7.5, fired.append, "x"))
    sim.run()
    assert fired == ["x"]
    assert sim.now == 7.5


def test_call_soon_runs_after_current_event():
    sim = Simulator()
    order = []

    def outer():
        sim.call_soon(order.append, "soon")
        order.append("outer")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "soon"]


def test_run_until_predicate():
    sim = Simulator()
    counter = []
    for i in range(10):
        sim.schedule(float(i + 1), counter.append, i)
    reached = sim.run_until(lambda: len(counter) >= 4, timeout=100.0)
    assert reached
    assert len(counter) == 4


def test_run_until_predicate_timeout():
    sim = Simulator()
    sim.schedule(100.0, lambda: None)
    reached = sim.run_until(lambda: False, timeout=5.0)
    assert not reached


def test_rng_is_deterministic_per_seed():
    first = Simulator(seed=7).rng.random()
    second = Simulator(seed=7).rng.random()
    other = Simulator(seed=8).rng.random()
    assert first == second
    assert first != other


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert not sim.step()


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def try_nested():
        try:
            sim.run()
        except SimulatorError as exc:
            errors.append(exc)

    sim.schedule(1.0, try_nested)
    sim.run()
    assert len(errors) == 1


# ---------------------------------------------------------------------------
# ISSUE 1 regressions: epsilon clamping, cancellation hygiene, compaction
# ---------------------------------------------------------------------------


def test_schedule_at_clamps_epsilon_negative_delay():
    """Float rounding of absolute times must not abort the run.

    ``schedule_at(t)`` computes ``t - now``; after many accumulated
    additions the difference for "now" can come out a tiny negative
    (e.g. -1e-16) and used to raise SimulatorError mid-run.
    """
    sim = Simulator()
    sim.schedule(0.1 + 0.2, lambda: None)  # now becomes 0.30000000000000004
    sim.run()
    fired = []
    # The absolute time 0.3 is epsilon below sim.now (0.30000000000000004).
    assert 0.3 < sim.now
    handle = sim.schedule_at(0.3, fired.append, "ok")
    assert handle.time == pytest.approx(sim.now)
    sim.run()
    assert fired == ["ok"]


def test_truly_negative_delay_still_rejected():
    sim = Simulator()
    with pytest.raises(SimulatorError):
        sim.schedule(-0.5, lambda: None)


def test_cancel_releases_callback_references():
    """A cancelled long-dated timer must not pin its closure until the
    original fire time."""
    import gc
    import weakref

    class Payload:
        pass

    sim = Simulator()
    payload = Payload()
    ref = weakref.ref(payload)
    handle = sim.schedule(1000.0, lambda p: None, payload)
    del payload
    gc.collect()
    assert ref() is not None  # pinned while scheduled
    handle.cancel()
    gc.collect()
    assert ref() is None  # released immediately on cancel
    sim.run()


def test_stale_handle_cannot_cancel_recycled_event():
    """After an event fires, its handle must be inert even though the
    underlying record may be recycled for a newer event."""
    sim = Simulator()
    fired = []
    first = sim.schedule(1.0, fired.append, "first")
    sim.run()
    assert fired == ["first"]
    sim.schedule(1.0, fired.append, "second")  # likely reuses the record
    first.cancel()  # stale: must not cancel "second"
    sim.run()
    assert fired == ["first", "second"]


def test_heap_compaction_keeps_cancelled_fraction_bounded():
    sim = Simulator()
    handles = [sim.schedule(10.0 + i, lambda: None) for i in range(500)]
    for handle in handles[:400]:
        handle.cancel()
    # More than half the heap was cancelled; compaction must have run.
    assert sim.compactions >= 1
    assert sim.live_pending_events == 100
    assert sim.pending_events <= 300
    sim.run()
    assert sim.events_processed == 100
