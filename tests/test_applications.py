"""Tests for the example applications (replicated state machine, replicated
store, online server migration)."""

import pytest

from repro.apps import ReplicatedStateMachine, ReplicatedStore, ServerMigrationScenario
from harness import NewtopCluster

from repro.core import NewtopConfig, OrderingMode

FAST = dict(omega=1.5, suspicion_timeout=6.0, suspector_check_interval=0.5)


def _cluster(names, seed=1, **overrides):
    config = NewtopConfig(**FAST).replace(**overrides)
    return NewtopCluster(names, config=config, seed=seed)


# ----------------------------------------------------------------------
# Replicated state machine
# ----------------------------------------------------------------------
def test_rsm_replicas_apply_commands_in_same_order():
    cluster = _cluster(["P1", "P2", "P3"], seed=2)
    cluster.create_group("counter")
    machines = [
        ReplicatedStateMachine(cluster[p], "counter", 0, lambda state, delta: state + delta)
        for p in ("P1", "P2", "P3")
    ]
    machines[0].submit(5)
    machines[1].submit(-2)
    machines[2].submit(10)
    cluster.run(80)
    assert all(machine.state == 13 for machine in machines)
    assert ReplicatedStateMachine.replicas_agree(machines)
    assert machines[0].applied_ids() == machines[1].applied_ids() == machines[2].applied_ids()


def test_rsm_survives_replica_crash():
    cluster = _cluster(["P1", "P2", "P3"], seed=3)
    cluster.create_group("counter")
    machines = {
        p: ReplicatedStateMachine(cluster[p], "counter", 0, lambda s, d: s + d)
        for p in ("P1", "P2", "P3")
    }
    machines["P1"].submit(1)
    cluster.run(30)
    cluster.crash("P3")
    cluster.run(100)
    machines["P2"].submit(2)
    cluster.run(80)
    assert machines["P1"].state == machines["P2"].state == 3
    assert ReplicatedStateMachine.replicas_agree([machines["P1"], machines["P2"]])


def test_rsm_applies_only_its_group():
    cluster = _cluster(["P1", "P2"], seed=4)
    cluster.create_group("a")
    cluster.create_group("b")
    machine = ReplicatedStateMachine(cluster["P1"], "a", 0, lambda s, d: s + d)
    cluster["P2"].multicast("b", 100)
    cluster["P2"].multicast("a", 7)
    cluster.run(60)
    assert machine.state == 7


# ----------------------------------------------------------------------
# Replicated store
# ----------------------------------------------------------------------
def test_store_replicas_converge():
    cluster = _cluster(["P1", "P2", "P3"], seed=5)
    cluster.create_group("kv")
    stores = [ReplicatedStore(cluster[p], "kv") for p in ("P1", "P2", "P3")]
    stores[0].set("x", 1)
    stores[1].set("y", "two")
    stores[2].increment("x", 4)
    stores[0].delete("missing")
    cluster.run(80)
    assert ReplicatedStore.converged(stores)
    for store in stores:
        assert store.get("x") == 5 or store.get("x") == 1  # depends on order...
    # The point of total order: whatever the order, all replicas agree.
    snapshots = {tuple(sorted(store.snapshot().items())) for store in stores}
    assert len(snapshots) == 1


def test_store_operations_and_reads():
    cluster = _cluster(["P1", "P2"], seed=6)
    cluster.create_group("kv")
    store_1 = ReplicatedStore(cluster["P1"], "kv")
    store_2 = ReplicatedStore(cluster["P2"], "kv")
    store_1.set("a", 1)
    store_1.increment("a", 2)
    store_1.delete("a")
    store_1.set("b", "keep")
    store_1.read_via_multicast("b")
    cluster.run(80)
    assert store_2.get("a") is None
    assert store_2.get("b") == "keep"
    assert store_2.get("missing", "default") == "default"
    assert store_2.applied_operations() == 5


def test_store_asymmetric_group():
    cluster = _cluster(["P1", "P2", "P3"], seed=7)
    cluster.create_group("kv", mode=OrderingMode.ASYMMETRIC)
    stores = [ReplicatedStore(cluster[p], "kv") for p in ("P1", "P2", "P3")]
    for i, store in enumerate(stores):
        store.set(f"k{i}", i)
    cluster.run(80)
    assert ReplicatedStore.converged(stores)
    assert stores[0].snapshot() == {"k0": 0, "k1": 1, "k2": 2}


# ----------------------------------------------------------------------
# Server migration (Fig. 1)
# ----------------------------------------------------------------------
def test_server_migration_scenario_is_uninterrupted():
    scenario = ServerMigrationScenario(requests_per_phase=4, seed=11)
    report = scenario.run()
    assert report.service_uninterrupted
    assert report.state_transferred_intact
    assert report.old_group_cleaned_up
    assert report.final_group_members == ("P1", "P3")
    assert report.requests_during > 0
    assert report.migration_duration > 0


def test_server_migration_asymmetric_mode():
    scenario = ServerMigrationScenario(
        requests_per_phase=3, seed=13, mode=OrderingMode.ASYMMETRIC
    )
    report = scenario.run()
    assert report.state_transferred_intact
    assert report.final_group_members == ("P1", "P3")
