"""Equivalence pins for the hot-path refactor (timer wheel / slab / batching).

The 10k-scale hot path replaced three reference implementations:

* the global event heap with a slotted timer wheel for high-churn periodic
  timers (``Simulator(use_timer_wheel=...)``, ``schedule(..., wheel=True)``),
* per-member dict vector-clock state with slab-backed arrays
  (``NewtopConfig.use_slab_state``), and
* per-message receipt processing with per-instant delivery batches
  (``NewtopConfig.batch_receipts``).

All three must be *behaviour-preserving*: for a seeded churn run, every
toggle combination has to produce byte-identical results -- same event
count, same deliveries, same messages, same verdicts, same metrics.  These
tests pin that, plus the O(1)-cancellation contract the wheel exists for.
"""

import math
import random

import pytest

from repro.core.vectors import (
    INFINITY,
    DictMemberVector,
    DictReceiveVector,
    DictStabilityVector,
    ReceiveVector,
    SlabMemberVector,
    StabilityVector,
)
from repro.net.simulator import Simulator
from repro.scenarios import churn_scenario, run_scenario

# ---------------------------------------------------------------------------
# Scenario-level equivalence: every toggle combination, one seeded churn run
# ---------------------------------------------------------------------------

def _churn_config(**protocol):
    config = churn_scenario(
        n_processes=60,
        n_groups=6,
        group_size=8,
        crashes=2,
        leaves=2,
        formations=1,
        messages_per_sender=2,
        seed=11,
    )
    config["protocol"] = dict(config.get("protocol") or {}, **protocol)
    return config


def _fingerprint(result):
    """Everything observable about a run except where events were *stored*
    (heap-vs-wheel placement legitimately changes pending-count peaks and
    compaction counts, never behaviour)."""
    return {
        "events_processed": result.events_processed,
        "deliveries": result.deliveries,
        "messages_sent": result.messages_sent,
        "delivery_events": result.delivery_events,
        "sim_time": result.sim_time,
        "trace_events": result.trace_events,
        "agreement_sets": result.agreement_sets,
        "passed": result.passed,
        "violations": list(result.checks.violations),
        "metrics": result.metrics,
        "latency": (
            result.latency_reservoir.summary()
            if result.latency_reservoir is not None
            else None
        ),
    }


@pytest.mark.parametrize(
    "protocol",
    [
        dict(timer_wheel=False),
        dict(use_slab_state=False),
        dict(batch_receipts=False),
        dict(timer_wheel=False, use_slab_state=False, batch_receipts=False),
    ],
    ids=["heap-scheduler", "dict-vectors", "per-message-receipts", "all-reference"],
)
def test_churn_run_identical_across_hot_path_toggles(protocol):
    fast = run_scenario(_churn_config(), analysis="online")
    reference = run_scenario(_churn_config(**protocol), analysis="online")
    assert fast.passed and reference.passed
    assert _fingerprint(fast) == _fingerprint(reference)


# ---------------------------------------------------------------------------
# Timer wheel: firing order and O(1) cancellation
# ---------------------------------------------------------------------------

def _record_firing_order(sim, schedule):
    fired = []
    for delay, tag, wheel in schedule:
        sim.schedule(delay, fired.append, (tag, round(sim.now + delay, 9)), wheel=wheel)
    sim.run()
    return fired


def test_wheel_and_heap_fire_in_identical_order():
    rng = random.Random(42)
    schedule = [
        (rng.uniform(0.0, 20.0), index, rng.random() < 0.5) for index in range(400)
    ]
    with_wheel = _record_firing_order(Simulator(use_timer_wheel=True), schedule)
    heap_only = _record_firing_order(Simulator(use_timer_wheel=False), schedule)
    assert len(with_wheel) == len(schedule)
    assert with_wheel == heap_only


def test_wheel_interleaves_with_heap_by_global_time_and_sequence():
    sim = Simulator(use_timer_wheel=True)
    fired = []
    # Same instant, alternating stores: sequence order must win.
    for index in range(10):
        sim.schedule(5.0, fired.append, index, wheel=(index % 2 == 0))
    sim.run()
    assert fired == list(range(10))


def test_wheel_rejects_current_slot_inserts_without_losing_events():
    sim = Simulator(use_timer_wheel=True, wheel_slot_width=1.0)
    fired = []

    def reschedule():
        fired.append(sim.now)
        if len(fired) < 5:
            # Zero-ish delay lands in the slot being served: the wheel must
            # decline it (falls back to the heap) and it still fires now.
            sim.schedule(0.0, reschedule, wheel=True)

    sim.schedule(0.5, reschedule, wheel=True)
    sim.run()
    assert fired == [0.5] * 5


def test_cancelled_wheel_timer_never_fires_and_costs_no_compaction():
    sim = Simulator(use_timer_wheel=True)
    fired = []
    handles = [
        sim.schedule(1.0 + 0.01 * index, fired.append, index, wheel=True)
        for index in range(500)
    ]
    assert sim.live_pending_events == 500
    for handle in handles[::2]:
        handle.cancel()
    # O(1) cancel: the live count drops immediately, nothing is rebuilt.
    assert sim.live_pending_events == 250
    assert sim.compactions == 0
    sim.run()
    assert fired == list(range(1, 500, 2))
    assert sim.compactions == 0
    assert sim.pending_events == 0


def test_wheel_cancel_is_idempotent_and_counts_stay_consistent():
    sim = Simulator(use_timer_wheel=True)
    handle = sim.schedule(2.0, lambda: pytest.fail("cancelled timer fired"), wheel=True)
    other = sim.schedule(3.0, lambda: None, wheel=True)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled
    assert sim.live_pending_events == 1
    sim.run()
    assert not other.cancelled
    assert sim.pending_events == 0


# ---------------------------------------------------------------------------
# Slab vectors vs the dict reference, under randomized operation sequences
# ---------------------------------------------------------------------------

def _assert_vectors_agree(slab, reference):
    assert slab.as_dict() == reference.as_dict()
    assert slab.members() == reference.members()
    assert slab.minimum() == reference.minimum()
    assert slab.finite_minimum() == reference.finite_minimum()


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
def test_slab_member_vector_matches_dict_reference(seed):
    rng = random.Random(seed)
    members = [f"P{index}" for index in range(8)]
    slab = SlabMemberVector(members, initial=-1)
    reference = DictMemberVector(members, initial=-1)
    active = set(members)
    removed = set()
    for _ in range(600):
        op = rng.random()
        if op < 0.70 and active:
            member = rng.choice(sorted(active))
            value = rng.randrange(-1, 40)
            assert slab.update(member, value) == reference.update(member, value)
        elif op < 0.80 and active:
            member = rng.choice(sorted(active))
            slab.mark_infinite(member)
            reference.mark_infinite(member)
        elif op < 0.90 and len(active) > 1:
            member = rng.choice(sorted(active))
            slab.remove(member)
            reference.remove(member)
            active.discard(member)
            removed.add(member)
        elif removed:
            member = rng.choice(sorted(removed))
            slab.add_member(member, initial=rng.randrange(0, 5))
            reference.add_member(member, initial=slab[member])
            removed.discard(member)
            active.add(member)
        _assert_vectors_agree(slab, reference)
    # Untracked members raise on both implementations.
    with pytest.raises(KeyError):
        slab.update("stranger", 3)
    with pytest.raises(KeyError):
        reference.update("stranger", 3)


def test_slab_add_member_reactivates_with_dict_semantics():
    members = ["A", "B", "C"]
    slab = SlabMemberVector(members)
    reference = DictMemberVector(members)
    for vector in (slab, reference):
        vector.update("A", 5)
        vector.remove("B")
        vector.add_member("B", initial=2)
        vector.add_member("D", initial=7)
    _assert_vectors_agree(slab, reference)


def test_all_infinite_minimum_matches_reference():
    slab = SlabMemberVector(["A", "B"])
    reference = DictMemberVector(["A", "B"])
    for vector in (slab, reference):
        vector.update("A", 4)
        vector.mark_infinite("A")
        vector.mark_infinite("B")
    assert slab.minimum() == reference.minimum() == INFINITY
    assert math.isinf(slab.minimum())
    # finite_minimum clamps to the last finite bound on both sides.
    assert slab.finite_minimum() == reference.finite_minimum()


@pytest.mark.parametrize(
    "fast_cls, reference_cls, record, bound",
    [
        (ReceiveVector, DictReceiveVector, "record_receipt", "deliverable_bound"),
        (StabilityVector, DictStabilityVector, "record_ldn", "stability_bound"),
    ],
)
def test_protocol_vectors_match_dict_reference(fast_cls, reference_cls, record, bound):
    rng = random.Random(5)
    members = [f"P{index}" for index in range(6)]
    fast = fast_cls(members)
    reference = reference_cls(members)
    for _ in range(300):
        member = rng.choice(members)
        clock = rng.randrange(0, 30)
        assert getattr(fast, record)(member, clock) == getattr(
            reference, record
        )(member, clock)
        assert getattr(fast, bound) == getattr(reference, bound)
    _assert_vectors_agree(fast, reference)


# ---------------------------------------------------------------------------
# Link-fault models at zero rates must never change a run
# ---------------------------------------------------------------------------

def test_churn_run_identical_with_zero_rate_link_faults_attached():
    """A :class:`repro.net.faults.LinkFaultModel` draws every decision from
    its own RNG, so attaching one whose rates are all zero is byte-identical
    to no model at all -- the invariant that keeps fault-free fuzz corpora
    comparable with the rest of the suite."""
    config = _churn_config()
    config["link_faults"] = {"seed": 11}
    plain = run_scenario(_churn_config(), analysis="online")
    attached = run_scenario(config, analysis="online")
    assert plain.passed and attached.passed
    assert _fingerprint(plain) == _fingerprint(attached)


# ---------------------------------------------------------------------------
# Observation (repro.obs) must never change a run
# ---------------------------------------------------------------------------

def _observation_fingerprint(result):
    """The toggle fingerprint, minus ``events_processed``: the sampler
    schedules its own simulator events, which is exactly the one thing
    observation is *allowed* to add."""
    fingerprint = _fingerprint(result)
    fingerprint.pop("events_processed")
    return fingerprint


@pytest.mark.parametrize(
    "observe", ["metrics", "journeys", "full"], ids=["metrics", "journeys", "full"]
)
def test_churn_run_identical_with_observation_attached(observe):
    plain = run_scenario(_churn_config(), analysis="online")
    observed = run_scenario(_churn_config(), analysis="online", observe=observe)
    assert plain.passed and observed.passed
    assert _observation_fingerprint(plain) == _observation_fingerprint(observed)
    assert plain.obs is None and observed.obs is not None
    # The trace counters agree with the totals the run itself reported.
    counters = observed.obs["metrics"]["counters"]
    assert counters["trace.deliver"] == observed.deliveries


def test_observation_leaves_trace_stream_byte_identical():
    """Stronger than the fingerprint: the full offline event stream --
    every (seq, time, kind, process, message, details) tuple -- must be
    identical with metrics + sampler + profiler + spans + journeys
    attached ("full" includes journey tracing, so this also pins the
    journey tracker as behaviour-free)."""
    from repro.api import Session
    from repro.core.messages import reset_message_counter

    def stream(observe):
        reset_message_counter()
        session = Session("newtop", seed=9, observe=observe)
        session.spawn([f"P{index}" for index in range(6)])
        session.group("g")
        for index in range(5):
            session.multicast(f"P{index % 3}", "g", f"m-{index}")
            session.run(0.7)
        session.crash("P5")
        session.run(30.0)
        session.result()
        return [
            (e.seq, e.time, e.kind, e.process, e.group, e.message_id,
             e.sender, e.clock, e.details)
            for e in session.trace().events()
        ]

    assert stream(None) == stream("full")
