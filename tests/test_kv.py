"""Tier-1 tests for the sharded KV subsystem (``repro.apps.kv``).

Covers the ring (determinism, minimal movement), the command algebra
(fence / migrate / drop semantics, origin-provenance parsing), the
sharded store (convergence, read-your-writes, crash failover), both
rebalance operations (split with stale-client retry, replica move with
generation bump and voluntary departure), and the online KV oracle --
including mutation tests proving it actually *detects* violations, not
just passes clean runs.
"""

import pytest

from repro.api import Session
from repro.apps.kv import (
    HashRing,
    KVOracle,
    META_KEY,
    Rebalancer,
    ShardedKV,
    apply_kv_command,
    command_info,
    fence_rejects,
    group_name,
    moved_keys,
    stable_hash,
)
from repro.apps.replicated_store import _apply_store_command
from repro.core.config import OrderingMode
from repro.net.trace import TraceEvent

LAYOUT = {
    "s0": ["s0r0", "s0r1", "s0r2"],
    "s1": ["s1r0", "s1r1", "s1r2"],
}


def make_store(mode=OrderingMode.SYMMETRIC, seed=3, layout=LAYOUT, spares=()):
    oracle = KVOracle()
    session = Session("newtop", seed=seed, analysis="online", sinks=[oracle])
    session.spawn([pid for members in layout.values() for pid in members])
    if spares:
        session.spawn(list(spares))
    store = ShardedKV(session, mode=mode)
    store.bootstrap(layout)
    session.run(1.0)
    return session, store, oracle


def put(session, store, client, op, key, value, ring=None):
    acks = []
    outcome = store.submit(
        client=client, client_op=op, op="set", key=key, value=value,
        via=store.alive_members(store.ring.lookup(key))[0],
        ring=ring or store.ring, callback=acks.append,
    )
    if outcome["status"] != "submitted":
        return outcome
    assert session.run_until(lambda: bool(acks), timeout=60)
    return acks[0]


# ----------------------------------------------------------------------
# Ring
# ----------------------------------------------------------------------
def test_ring_lookup_is_deterministic_and_total():
    ring = HashRing(1, ("s0", "s1", "s2"))
    again = HashRing(1, ("s2", "s1", "s0"))  # order-insensitive
    keys = [f"k{i}" for i in range(500)]
    assert [ring.lookup(k) for k in keys] == [again.lookup(k) for k in keys]
    assert {ring.lookup(k) for k in keys} == {"s0", "s1", "s2"}
    assert stable_hash("k1") == stable_hash("k1")
    assert stable_hash("k1") != stable_hash("k2")


def test_ring_add_shard_moves_only_a_fraction():
    ring = HashRing(1, ("s0", "s1", "s2"))
    grown = ring.with_shard("s3")
    keys = [f"k{i}" for i in range(2000)]
    moved = [k for k in keys if ring.lookup(k) != grown.lookup(k)]
    # Consistent hashing: only keys now owned by the new shard move, and
    # they all move *to* it -- roughly 1/4 of the space, never a reshuffle.
    assert all(grown.lookup(k) == "s3" for k in moved)
    assert 0 < len(moved) < len(keys) / 2
    assert grown.version == 2
    shrunk = grown.without_shard("s3")
    assert shrunk.version == 3
    assert [shrunk.lookup(k) for k in keys] == [ring.lookup(k) for k in keys]


def test_ring_split_moves_only_the_sources_keys():
    ring = HashRing(1, ("s0", "s1", "s2"))
    split = ring.with_shard("s3", split_from="s2")
    keys = [f"k{i}" for i in range(2000)]
    for key in keys:
        old, new = ring.lookup(key), split.lookup(key)
        if old != "s2":
            assert new == old  # untouched shards keep every key
        else:
            assert new in ("s2", "s3")
    stolen = sum(ring.lookup(k) == "s2" and split.lookup(k) == "s3" for k in keys)
    owned = sum(ring.lookup(k) == "s2" for k in keys)
    assert 0 < stolen < owned  # a real subdivision, not all or nothing
    # Splits nest: splitting the child touches only the child's keys.
    deeper = split.with_shard("s4", split_from="s3")
    for key in keys:
        if split.lookup(key) != "s3":
            assert deeper.lookup(key) == split.lookup(key)
    # Merging the child back restores the parent's ownership.
    merged = deeper.without_shard("s4")
    assert [merged.lookup(k) for k in keys] == [split.lookup(k) for k in keys]
    with pytest.raises(ValueError):
        split.with_shard("s9", split_from="missing")
    with pytest.raises(ValueError):
        deeper.without_shard("s3")  # still has split children


def test_ring_describe_round_trips_and_validates():
    ring = HashRing(4, ("a", "b"), vnodes=16)
    clone = HashRing.from_description(ring.describe())
    assert clone == ring
    split = ring.with_shard("c", split_from="b")
    assert HashRing.from_description(split.describe()) == split
    with pytest.raises(ValueError):
        HashRing(0, ("a",))
    with pytest.raises(ValueError):
        HashRing(1, ())
    with pytest.raises(ValueError):
        HashRing(1, ("a", "a"))


# ----------------------------------------------------------------------
# Command algebra
# ----------------------------------------------------------------------
def test_commands_apply_set_delete_increment():
    state = apply_kv_command({}, ("set", "k", 1))
    assert state == {"k": 1}
    state = apply_kv_command(state, ("increment", "k", 4))
    assert state["k"] == 5
    state = apply_kv_command(state, ("delete", "k"))
    assert "k" not in state


def test_fence_dooms_moved_keys_deterministically():
    ring = HashRing(2, ("s0", "s1", "sN"), splits=(("s0", "sN"),))
    fence = {"ring": ring.describe(), "to_shard": "sN"}
    state = {f"k{i}": i for i in range(50)}
    state = apply_kv_command(state, ("fence", fence))
    assert META_KEY in state
    doomed = [k for k in sorted(state) if k != META_KEY
              and fence_rejects(state, k)]
    assert doomed == [k for k in sorted(state) if k != META_KEY
                      and ring.lookup(k) == "sN"]
    assert moved_keys(state) == doomed
    # Post-fence mutations of doomed keys reject; others still apply.
    after = apply_kv_command(state, ("set", doomed[0], 99))
    assert after[doomed[0]] == state[doomed[0]]  # rejected, unchanged
    survivor = next(k for k in state if k != META_KEY and k not in doomed)
    after = apply_kv_command(state, ("set", survivor, 99))
    assert after[survivor] == 99
    # drop_moved garbage-collects exactly the doomed keys, keeps the fence.
    state = apply_kv_command(state, ("drop_moved",))
    assert META_KEY in state and not any(k in state for k in doomed)


def test_migrate_in_is_first_writer_wins():
    state = apply_kv_command({}, ("migrate_in", "k", 7, {}))
    assert state["k"] == 7
    state = apply_kv_command(state, ("set", "k", 8))
    state = apply_kv_command(state, ("migrate_in", "k", 7, {}))
    assert state["k"] == 8  # the migrated copy never clobbers a newer write


def test_command_info_parses_origin_strictly_by_arity():
    origin = {"client": "c1", "op": 4, "via": "p"}
    assert command_info(("set", "k", "v", origin)) == ("set", "k", origin)
    assert command_info(("set", "k", "v")) == ("set", "k", None)
    # A dict *value* must not be mistaken for provenance.
    assert command_info(("set", "k", {"client": "x"})) == ("set", "k", None)
    assert command_info(("bogus",)) == (None, None, None)
    assert command_info("not-a-tuple") == (None, None, None)


def test_replicated_store_is_single_shard_special_case():
    # Satellite (a): one KV implementation -- the standalone store's
    # command interpreter *is* the sharded one's.
    assert _apply_store_command is apply_kv_command


# ----------------------------------------------------------------------
# Sharded store
# ----------------------------------------------------------------------
def test_single_shard_write_read_and_convergence():
    session, store, oracle = make_store()
    for index in range(8):
        ack = put(session, store, "c1", index, f"key{index}", index)
        assert ack["status"] == "applied"
    session.run(20.0)
    for shard in store.shards:
        assert store.converged(shard)
    read = store.read(
        client="c1", key="key3",
        via=store.alive_members(store.ring.lookup("key3"))[0],
        ring=store.ring, min_position=0,
    )
    assert read["status"] == "ok" and read["value"] == 3
    result = session.result()
    assert result.passed and result.trace_events_stored == 0
    assert oracle.passed, oracle.summary()


def test_read_your_writes_returns_behind_from_lagging_replica():
    # Asymmetric mode: the sequencer (the ack's coordinator) applies
    # first, so right after the ack the other replicas genuinely lag.
    session, store, _ = make_store(mode=OrderingMode.ASYMMETRIC)
    ack = put(session, store, "c1", 1, "kx", "v1")
    shard = store.shards[ack["shard"]]
    laggard = next(m for m in shard.members
                   if shard.replicas[m].position < ack["position"])
    read = store.read(client="c1", key="kx", via=laggard,
                      ring=store.ring, min_position=ack["position"])
    assert read["status"] == "behind"
    session.run(20.0)
    read = store.read(client="c1", key="kx", via=laggard,
                      ring=store.ring, min_position=ack["position"])
    assert read["status"] == "ok" and read["value"] == "v1"


def test_stale_ring_rejected_with_current_ring():
    session, store, _ = make_store()
    old = HashRing(1, ("zombie",))
    outcome = store.submit(
        client="c9", client_op=1, op="set", key="anything", value=1,
        via="s0r0", ring=old, callback=None,
    )
    assert outcome["status"] == "stale_ring"
    assert outcome["ring"].version == store.ring.version


def test_crash_failover_sequencer_migrates_and_shard_keeps_serving():
    session, store, oracle = make_store(mode=OrderingMode.ASYMMETRIC, seed=5)
    key = "failover-key"
    shard_id = store.ring.lookup(key)
    ack = put(session, store, "c1", 1, key, "before")
    assert ack["status"] == "applied"
    victim = min(LAYOUT[shard_id])  # smallest id = the sequencer
    session.crash(victim)
    session.run(15.0)  # suspicion -> exclusion -> sequencer migration
    assert victim not in store.alive_members(shard_id)
    ack = put(session, store, "c1", 2, key, "after")
    assert ack["status"] == "applied"
    session.run(10.0)
    assert store.converged(shard_id)
    assert session.result().passed
    assert oracle.passed, oracle.summary()


# ----------------------------------------------------------------------
# Rebalancing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", [OrderingMode.SYMMETRIC, OrderingMode.ASYMMETRIC])
def test_split_shard_moves_keys_and_bumps_ring_version(mode):
    session, store, oracle = make_store(mode=mode, spares=("x0", "x1"))
    keys = [f"user{i}" for i in range(24)]
    for index, key in enumerate(keys):
        assert put(session, store, "c1", index, key, f"v-{key}")["status"] == "applied"
    old_ring = store.ring
    source = old_ring.lookup(keys[0])
    coordinator = store.alive_members(source)[0]
    report = Rebalancer(store).split_shard(source, "sN", [coordinator, "x0", "x1"])
    assert session.run_until(lambda: report.complete or report.failed, timeout=200)
    assert report.complete, report.describe()
    assert store.ring.version == old_ring.version + 1
    assert "sN" in store.shards
    moved = [k for k in keys if old_ring.lookup(k) != store.ring.lookup(k)]
    assert moved and all(store.ring.lookup(k) == "sN" for k in moved)
    # A split subdivides only the source's key space: every moved key
    # came from the fenced shard, and the migration plan covered exactly
    # the moved keys present in its state.
    assert all(old_ring.lookup(k) == source for k in moved)
    assert report.moved_keys == len(moved)
    # A stale client is redirected, retries, and every value is intact.
    stale = put(session, store, "c1", 100, moved[0], "late", ring=old_ring)
    assert stale["status"] in ("stale_ring", "frozen")
    for key in keys:
        read = store.read(
            client="reader", key=key,
            via=store.alive_members(store.ring.lookup(key))[0],
            ring=store.ring, min_position=0,
        )
        assert read["status"] == "ok" and read["value"] == f"v-{key}", (key, read)
    session.run(20.0)
    for shard in store.shards:
        assert store.converged(shard)
    assert session.result().passed
    assert oracle.passed, oracle.summary()


def test_move_replica_bumps_generation_and_departs_old_group():
    session, store, oracle = make_store(spares=("x0", "x1"))
    keys = [f"m{i}" for i in range(12)]
    shard_id = "s0"
    owned = [k for k in keys if store.ring.lookup(k) == shard_id]
    for index, key in enumerate(owned):
        assert put(session, store, "c1", index, key, key)["status"] == "applied"
    old = store.shards[shard_id]
    survivor = old.members[0]
    report = Rebalancer(store).move_replica(shard_id, [survivor, "x0", "x1"])
    assert session.run_until(lambda: report.complete or report.failed, timeout=200)
    assert report.complete, report.describe()
    fresh = store.shards[shard_id]
    assert fresh.generation == old.generation + 1
    assert fresh.group_id == group_name(shard_id, fresh.generation)
    assert set(fresh.members) == {survivor, "x0", "x1"}
    assert old.retired
    assert store.ring.version == 1  # replica moves never touch the ring
    session.run(30.0)  # old group winds down via voluntary departures
    for key in owned:
        read = store.read(client="r", key=key, via="x0",
                          ring=store.ring, min_position=0)
        assert read["status"] == "ok" and read["value"] == key
    assert store.converged(shard_id)
    assert session.result().passed
    assert oracle.passed, oracle.summary()


# ----------------------------------------------------------------------
# Oracle mutation tests: violations are detected, not just absent
# ----------------------------------------------------------------------
def apply_event(time, process, group, msg_id, position, outcome="applied",
                op="set", key="k", digest="'v'", **extra):
    details = dict(
        shard="s0", generation=1, op=op, outcome=outcome,
        position=position, key=key, digest=digest,
    )
    details.update(extra)
    return TraceEvent(
        time=time, kind="kv_apply", process=process, group=group,
        message_id=msg_id, sender=process, clock=None,
        details=tuple(sorted(details.items())),
    )


def read_event(time, process, group, msg_id, position, key="k", digest="'v'",
               client="c", required=0):
    details = dict(
        shard="s0", generation=1, key=key, digest=digest,
        position=position, client=client, required=required,
    )
    return TraceEvent(
        time=time, kind="kv_read", process=process, group=group,
        message_id=msg_id, sender=process, clock=None,
        details=tuple(sorted(details.items())),
    )


def test_oracle_detects_order_divergence():
    oracle = KVOracle()
    oracle.on_event(apply_event(1.0, "p1", "g", "m1", 1))
    oracle.on_event(apply_event(2.0, "p2", "g", "m2", 1))  # different msg
    assert not oracle.passed
    assert oracle.violations[0]["check"] == "order_divergence"


def test_oracle_detects_apply_gap():
    oracle = KVOracle()
    oracle.on_event(apply_event(1.0, "p1", "g", "m1", 1))
    oracle.on_event(apply_event(2.0, "p1", "g", "m3", 3))  # skipped 2
    assert not oracle.passed
    assert oracle.violations[0]["check"] == "apply_gap"


def test_oracle_detects_state_divergence():
    oracle = KVOracle()
    oracle.on_event(apply_event(1.0, "p1", "g", "m1", 1, digest="'a'"))
    oracle.on_event(apply_event(2.0, "p2", "g", "m1", 1, digest="'b'"))
    assert not oracle.passed
    assert oracle.violations[0]["check"] == "state_divergence"


def test_oracle_detects_stale_read():
    oracle = KVOracle()
    oracle.on_event(apply_event(1.0, "p1", "g", "m1", 1, digest="'old'"))
    oracle.on_event(apply_event(2.0, "p1", "g", "m2", 2, digest="'new'"))
    # A replica at position >= 2 serving the old write is stale.
    oracle.on_event(read_event(3.0, "p1", "g", "m1", 2, digest="'old'"))
    assert not oracle.passed
    assert oracle.violations[0]["check"] == "stale_or_divergent_read"


def test_oracle_detects_phantom_read():
    oracle = KVOracle()
    oracle.on_event(apply_event(1.0, "p1", "g", "m1", 1, key="other"))
    oracle.on_event(read_event(2.0, "p1", "g", None, 1, key="k", digest="'v'"))
    assert not oracle.passed
    assert oracle.violations[0]["check"] == "phantom_read"


def test_oracle_detects_transfer_integrity_violation():
    oracle = KVOracle()
    oracle.on_event(apply_event(
        1.0, "p1", "g", "m1", 1, op="migrate_in", digest="'tampered'",
        from_shard="s9", from_digest="'original'",
    ))
    assert not oracle.passed
    assert oracle.violations[0]["check"] == "transfer_integrity"


def test_oracle_clean_sequence_passes():
    oracle = KVOracle()
    for process in ("p1", "p2"):
        oracle.on_event(apply_event(1.0, process, "g", "m1", 1))
        oracle.on_event(apply_event(2.0, process, "g", "m2", 2, digest="'w'"))
    oracle.on_event(read_event(3.0, "p2", "g", "m2", 2, digest="'w'"))
    assert oracle.passed, oracle.summary()
    summary = oracle.summary()
    assert summary["applies_checked"] == 4 and summary["reads_checked"] == 1
