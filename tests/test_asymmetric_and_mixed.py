"""Integration tests for the asymmetric (sequencer) protocol (§4.2) and
mixed-mode multi-group operation (§4.3), including the blocking rules."""

import pytest

from repro.analysis import check_all
from repro.analysis.checkers import check_total_order
from repro.analysis.metrics import blocking_times
from harness import NewtopCluster

from repro.core import NewtopConfig, OrderingMode
from repro.net.trace import BLOCKED_SEND, UNBLOCKED_SEND


def _cluster(names, seed=1, **overrides):
    config = NewtopConfig(omega=2.0, suspicion_timeout=8.0).replace(**overrides)
    return NewtopCluster(names, config=config, seed=seed)


# ----------------------------------------------------------------------
# Asymmetric, single group
# ----------------------------------------------------------------------
def test_asymmetric_total_order_single_group():
    cluster = _cluster(["A", "B", "C", "D"], seed=3)
    cluster.create_group("g", mode=OrderingMode.ASYMMETRIC)
    for i in range(4):
        cluster["B"].multicast("g", f"b{i}")
        cluster["D"].multicast("g", f"d{i}")
        cluster.run(0.5)
    cluster.run(60)
    orders = [tuple(process.delivered_payloads("g")) for process in cluster]
    assert len(set(orders)) == 1
    assert len(orders[0]) == 8
    assert check_total_order(cluster.trace(), "g").passed


def test_asymmetric_sequencer_is_lowest_member_id():
    cluster = _cluster(["A", "B", "C"])
    cluster.create_group("g", mode=OrderingMode.ASYMMETRIC)
    for process in cluster:
        assert process.endpoint("g").engine.sequencer() == "A"
    assert cluster["A"].endpoint("g").engine.is_sequencer()
    assert not cluster["B"].endpoint("g").engine.is_sequencer()


def test_asymmetric_sequencer_own_sends_are_ordered_too():
    cluster = _cluster(["A", "B", "C"], seed=9)
    cluster.create_group("g", mode=OrderingMode.ASYMMETRIC)
    cluster["A"].multicast("g", "from-sequencer")
    cluster["C"].multicast("g", "from-member")
    cluster.run(60)
    orders = {tuple(process.delivered_payloads("g")) for process in cluster}
    assert len(orders) == 1
    assert set(orders.pop()) == {"from-sequencer", "from-member"}


def test_asymmetric_messages_are_sequenced_messages():
    cluster = _cluster(["A", "B"], seed=2)
    cluster.create_group("g", mode=OrderingMode.ASYMMETRIC)
    cluster["B"].multicast("g", "x")
    cluster.run(40)
    record = cluster["A"].delivered[0]
    assert record.sender == "B"  # logical sender preserved end to end


def test_asymmetric_sequencer_crash_failover():
    cluster = _cluster(["A", "B", "C"], seed=4, omega=1.5, suspicion_timeout=6.0)
    cluster.create_group("g", mode=OrderingMode.ASYMMETRIC)
    cluster["B"].multicast("g", "before")
    cluster.run(20)
    cluster.crash("A")  # the sequencer
    cluster.run(120)
    for name in ("B", "C"):
        assert "A" not in cluster[name].view("g").members
        assert cluster[name].endpoint("g").engine.sequencer() == "B"
    cluster["C"].multicast("g", "after")
    cluster.run(80)
    for name in ("B", "C"):
        payloads = cluster[name].delivered_payloads("g")
        assert payloads[0] == "before"
        assert "after" in payloads


# ----------------------------------------------------------------------
# Multi-group and mixed mode
# ----------------------------------------------------------------------
def test_multigroup_process_orders_across_groups():
    cluster = _cluster(["P1", "P2", "P3", "P4"], seed=6)
    cluster.create_group("g1", ["P1", "P2", "P3"])
    cluster.create_group("g2", ["P2", "P3", "P4"])
    cluster["P1"].multicast("g1", "g1-a")
    cluster["P4"].multicast("g2", "g2-a")
    cluster.run(2)
    cluster["P2"].multicast("g1", "g1-b")
    cluster["P3"].multicast("g2", "g2-b")
    cluster.run(80)
    # P2 and P3 are in both groups; their interleaved delivery order of the
    # common messages must agree (MD4').
    shared = [m for m in cluster["P2"].delivered_payloads() if True]
    order_p2 = [r.msg_id for r in cluster["P2"].delivered]
    order_p3 = [r.msg_id for r in cluster["P3"].delivered]
    common = set(order_p2) & set(order_p3)
    assert [m for m in order_p2 if m in common] == [m for m in order_p3 if m in common]
    assert check_all(cluster.trace()).passed
    assert len(cluster["P2"].delivered) == 4


def test_mixed_mode_symmetric_and_asymmetric_groups():
    cluster = _cluster(["P1", "P2", "P3"], seed=8)
    cluster.create_group("sym", ["P1", "P2", "P3"], mode=OrderingMode.SYMMETRIC)
    cluster.create_group("asym", ["P1", "P2", "P3"], mode=OrderingMode.ASYMMETRIC)
    for i in range(3):
        cluster["P2"].multicast("sym", f"s{i}")
        cluster["P2"].multicast("asym", f"a{i}")
        cluster.run(1.0)
    cluster.run(80)
    result = check_all(cluster.trace())
    assert result.passed, result.violations
    for process in cluster:
        assert len(process.delivered_payloads("sym")) == 3
        assert len(process.delivered_payloads("asym")) == 3
    # Cross-group order of the multi-group members agrees.
    orders = [tuple(r.msg_id for r in cluster[p].delivered) for p in ("P1", "P2", "P3")]
    assert len(set(orders)) == 1


def test_blocking_rule_defers_sends_while_unicast_unsequenced():
    # P2 sends in the asymmetric group (unicast to sequencer P1) and then
    # immediately in the symmetric group: the second send must be deferred
    # until the first comes back from the sequencer (Mixed-mode Blocking
    # Rule), and must still be delivered afterwards.
    cluster = _cluster(["P1", "P2", "P3"], seed=10)
    cluster.create_group("asym", mode=OrderingMode.ASYMMETRIC)
    cluster.create_group("sym", mode=OrderingMode.SYMMETRIC)
    first = cluster["P2"].multicast("asym", "needs-sequencing")
    assert first is not None
    assert cluster["P2"].outstanding_unicasts("asym") == 1
    second = cluster["P2"].multicast("sym", "must-wait")
    assert second is None  # deferred
    trace_now = cluster.trace()
    assert trace_now.events(kind=BLOCKED_SEND, process="P2", group="sym")
    cluster.run(80)
    assert cluster["P2"].outstanding_unicasts() == 0
    for process in cluster:
        assert "must-wait" in process.delivered_payloads("sym")
        assert "needs-sequencing" in process.delivered_payloads("asym")
    assert cluster.trace().events(kind=UNBLOCKED_SEND, process="P2", group="sym")
    assert check_all(cluster.trace()).passed


def test_symmetric_only_sends_never_block():
    cluster = _cluster(["P1", "P2", "P3"], seed=11)
    cluster.create_group("g1", mode=OrderingMode.SYMMETRIC)
    cluster.create_group("g2", mode=OrderingMode.SYMMETRIC)
    for i in range(5):
        assert cluster["P1"].multicast("g1", f"a{i}") is not None
        assert cluster["P1"].multicast("g2", f"b{i}") is not None
    assert not cluster.trace().events(kind=BLOCKED_SEND)
    cluster.run(60)
    assert check_all(cluster.trace()).passed


def test_same_group_asymmetric_sends_do_not_block_each_other():
    # The Send Blocking Rule only concerns messages unicast in *other*
    # groups: consecutive sends in the same asymmetric group go out freely.
    cluster = _cluster(["P1", "P2"], seed=12)
    cluster.create_group("g", mode=OrderingMode.ASYMMETRIC)
    first = cluster["P2"].multicast("g", "one")
    second = cluster["P2"].multicast("g", "two")
    assert first is not None and second is not None
    cluster.run(60)
    assert cluster["P1"].delivered_payloads("g") == ["one", "two"]


def test_blocking_time_is_measurable():
    cluster = _cluster(["P1", "P2", "P3"], seed=13)
    cluster.create_group("asym", mode=OrderingMode.ASYMMETRIC)
    cluster.create_group("sym", mode=OrderingMode.SYMMETRIC)
    cluster["P2"].multicast("asym", "x")
    cluster["P2"].multicast("sym", "y")
    cluster.run(60)
    waits = blocking_times(cluster.trace(), group="sym")
    assert len(waits) == 1
    assert waits[0] > 0.0


# ----------------------------------------------------------------------
# Atomic-only groups
# ----------------------------------------------------------------------
def test_atomic_only_group_delivers_without_ordering_gate():
    cluster = _cluster(["P1", "P2", "P3"], seed=14)
    cluster.create_group("g", mode=OrderingMode.ATOMIC_ONLY)
    cluster["P1"].multicast("g", "fast")
    cluster.run(10)
    # Delivered promptly (no need to wait for a full round of traffic).
    for name in ("P2", "P3"):
        assert cluster[name].delivered_payloads("g") == ["fast"]


# ----------------------------------------------------------------------
# Regression: deferred-send flush racing the receive path (PR 4)
# ----------------------------------------------------------------------
def test_sequenced_loopback_does_not_invert_cross_group_order():
    """A process that is a member of one asymmetric group and the sequencer
    of another must not flush deferred sends while the sequenced copy of
    its own request is mid-receive (not yet in the delivery queue): the
    flush loops back through local sequencing and delivery under a bound
    that already covers the in-flight message, inverting the global total
    order (safe2 raised DeliveryOrderViolation before the fix).

    The configuration reproduces the original failure: 24 processes, four
    ring-overlapping asymmetric groups, bursty open-loop traffic.
    """
    from repro.api import Session
    from repro.workloads import OpenLoopClient, get_profile

    names = [f"P{i:03d}" for i in range(1, 25)]
    groups = [
        (f"g{i:02d}", [names[(i * 6 + j) % 24] for j in range(8)]) for i in range(4)
    ]
    session = Session(
        "newtop-asymmetric",
        config=dict(omega=1.5, suspicion_timeout=6.0, suspector_check_interval=0.5),
        analysis="online",
        checks=("total_order", "sender_in_view", "causal_prefix"),
        seed=7,
    )
    session.spawn(names)
    for group_id, members in groups:
        session.group(group_id, members)
    for index, (group_id, members) in enumerate(groups):
        client = session.attach_client(
            OpenLoopClient(
                get_profile("bursty", rate=0.5),
                members,
                [group_id],
                seed=7 * 9973 + index,
                duration=30.0,
            )
        )
        client.start()
    session.run(70)  # raised DeliveryOrderViolation at ~t=3.9 before the fix
    assert session.result().passed


# ----------------------------------------------------------------------
# Asymmetric view-cut marker (failure detections in sequencer numbering)
# ----------------------------------------------------------------------
def test_view_cut_marker_cuts_detection_into_sequencer_numbering():
    """A crashed non-sequencer member is excluded via the sequencer's
    sequenced view-cut marker: every survivor installs the same view, no
    message is delivered in different views at different members, and
    traffic sequenced after the cut delivers in the new view."""
    from repro.core.vectors import INFINITY

    cluster = _cluster(["A", "B", "C", "D"], seed=5,
                       suspicion_timeout=6.0, suspector_check_interval=0.5)
    cluster.create_group("g", mode=OrderingMode.ASYMMETRIC)
    cluster["B"].multicast("g", "before")
    cluster.run(5)
    cluster["D"].crash()
    cluster.run(30)  # suspicion -> detection -> marker -> install
    survivors = [cluster[name] for name in ("A", "B", "C")]
    for process in survivors:
        assert process.view("g").sorted_members() == ("A", "B", "C")
        endpoint = process.endpoint("g")
        assert endpoint.next_view_change_threshold() == INFINITY
        assert not endpoint.pending_view_changes
    cluster["C"].multicast("g", "after")
    cluster.run(30)
    views = {
        record.payload: record.view_index
        for process in survivors
        for record in process.delivered
    }
    assert views == {"before": 0, "after": 1}
    assert check_all(cluster.trace(),
                     view_agreement_sets={"g": ["A", "B", "C"]}).passed


def test_stale_view_cut_marker_is_ignored():
    """A marker whose targets already left the view (replay after the
    install) must not record a cut -- a stale cut would cap delivery
    forever (the targets can never be detected again)."""
    from repro.core.messages import DataMessage, KIND_VIEW_CUT
    from repro.core.vectors import INFINITY

    cluster = _cluster(["A", "B", "C", "D"], seed=5,
                       suspicion_timeout=6.0, suspector_check_interval=0.5)
    cluster.create_group("g", mode=OrderingMode.ASYMMETRIC)
    cluster.run(5)
    cluster["D"].crash()
    cluster.run(30)
    endpoint = cluster["B"].endpoint("g")
    assert endpoint.view.sorted_members() == ("A", "B", "C")
    stale = DataMessage.sequenced(
        origin="A", group="g", clock=10_000, ldn=0, payload=("D",),
        kind=KIND_VIEW_CUT, sequencer="A", origin_request=None,
    )
    endpoint._on_view_cut(stale)
    assert not endpoint._pending_cut_points
    assert endpoint.next_view_change_threshold() == INFINITY
