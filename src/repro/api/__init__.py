"""repro.api: the unified session layer.

Every protocol in this repository -- Newtop in both ordering modes and
each §6 baseline -- plugs into one lifecycle behind the
:class:`~repro.api.stack.ProtocolStack` interface, and one
:class:`~repro.api.session.Session` front door runs any of them::

    from repro.api import Session

    session = Session(stack="fixed_sequencer", seed=2)
    session.spawn(["A", "B", "C"])
    session.group("g")
    session.multicast("A", "g", "hello")
    session.run(50)
    assert session.result().passed   # total order, checked per the stack

Stacks declare capability flags (crash / partition / leave / form_group)
that the scenario engine maps timed events onto, and the online checks
their guarantees claim -- so a scenario, trace sink, or benchmark written
once runs against all of them (see
:func:`repro.scenarios.run_scenario`'s ``stack=`` argument and benchmark
E20, ``bench_protocol_comparison.py``).
"""

from repro.api.session import Session, SessionResult
from repro.api.stack import (
    CAP_CRASH,
    CAP_FORM_GROUP,
    CAP_LEAVE,
    CAP_PARTITION,
    EVENT_CAPABILITIES,
    ProtocolStack,
    StackContext,
    StackError,
    UnsupportedScenarioEvent,
    UnsupportedStackOperation,
)
from repro.api.stacks import (
    BaselineStack,
    COMPARISON_STACKS,
    NewtopStack,
    PrimaryPartitionStack,
    available_stacks,
    get_stack,
)

__all__ = [
    "BaselineStack",
    "CAP_CRASH",
    "CAP_FORM_GROUP",
    "CAP_LEAVE",
    "CAP_PARTITION",
    "COMPARISON_STACKS",
    "EVENT_CAPABILITIES",
    "NewtopStack",
    "PrimaryPartitionStack",
    "ProtocolStack",
    "Session",
    "SessionResult",
    "StackContext",
    "StackError",
    "UnsupportedScenarioEvent",
    "UnsupportedStackOperation",
    "available_stacks",
    "get_stack",
]
