"""Concrete :class:`~repro.api.stack.ProtocolStack` implementations.

* :class:`NewtopStack` -- the paper's protocol, in spec-declared, forced
  symmetric, or forced asymmetric ordering mode (registry names
  ``"newtop"``, ``"newtop-symmetric"``, ``"newtop-asymmetric"``).
* :class:`BaselineStack` -- lifts any single-group §6 baseline
  (:mod:`repro.baselines`) to the multi-group scenarios Newtop is compared
  under by running one independent protocol instance per (process, group)
  pair on a per-group transport channel.  Its guarantees are therefore
  per-group (``check_scope = "group"``): exactly the limitation §6
  attributes to these protocols.
* :class:`PrimaryPartitionStack` -- fixed-sequencer ordering governed by
  the primary-partition membership policy: after a partition, only the
  component holding a strict majority of each group may keep multicasting
  (the availability contrast of experiment E16).

:func:`get_stack` resolves registry names (or passes instances through);
every stack is freshly constructed per session, so sessions never share
protocol state.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Type

from repro.analysis.checkers import CheckResult, check_all
from repro.api.stack import (
    CAP_CRASH,
    CAP_FORM_GROUP,
    CAP_LEAVE,
    CAP_PARTITION,
    ALL_CHECKS,
    ProtocolStack,
    StackContext,
    StackError,
)
from repro.baselines.base import BaselineProcess
from repro.baselines.fixed_sequencer import FixedSequencerProcess
from repro.baselines.isis import IsisProcess
from repro.baselines.lamport_ack import LamportAckProcess
from repro.baselines.primary_partition import PrimaryPartitionMembership
from repro.baselines.psync import PsyncProcess
from repro.core.config import NewtopConfig, OrderingMode
from repro.core.process import NewtopProcess
from repro.net.trace import CRASH, EventTrace, VIEW_INSTALL


class NewtopStack(ProtocolStack):
    """The Newtop protocol behind the uniform stack interface."""

    name = "newtop"
    capabilities = frozenset({CAP_CRASH, CAP_PARTITION, CAP_LEAVE, CAP_FORM_GROUP})
    checks = ALL_CHECKS
    check_scope = "global"

    def __init__(self, mode: Optional[OrderingMode] = None) -> None:
        super().__init__()
        #: When set, every group runs this ordering mode regardless of what
        #: the caller (or scenario spec) asks for -- how the two
        #: "newtop-symmetric"/"newtop-asymmetric" comparison stacks differ.
        self.mode_override = mode
        if mode is not None:
            self.name = f"newtop-{mode.value}"
        self.config = NewtopConfig()
        self.processes: Dict[str, NewtopProcess] = {}

    def attach(self, context: StackContext, protocol: Optional[Mapping] = None) -> None:
        super().attach(context, protocol)
        if isinstance(protocol, NewtopConfig):
            self.config = protocol.validate()
        else:
            self.config = NewtopConfig(**dict(protocol or {})).validate()

    def spawn(self, process_id: str) -> None:
        if process_id in self.processes:
            raise StackError(f"process {process_id!r} already spawned")
        context = self._context()
        self.processes[process_id] = NewtopProcess(
            process_id,
            context.sim,
            context.transport,
            recorder=context.recorder,
            config=self.config,
        )

    def create_group(
        self, group_id: str, members: Sequence[str], mode: Optional[object] = None
    ) -> None:
        effective = self.mode_override if self.mode_override is not None else mode
        for member in members:
            self.processes[member].create_group(group_id, members, mode=effective)

    def multicast(self, process_id: str, group_id: str, payload: object) -> Optional[str]:
        return self.processes[process_id].multicast(group_id, payload)

    def crash(self, process_id: str) -> None:
        self.processes[process_id].crash()

    def leave(self, process_id: str, group_id: str) -> None:
        self.processes[process_id].leave_group(group_id)

    def form_group(self, group_id: str, members: Sequence[str]) -> None:
        self.processes[members[0]].form_group(group_id, members)

    def process_ids(self) -> List[str]:
        return sorted(self.processes)

    def is_member(self, process_id: str, group_id: str) -> bool:
        return self.processes[process_id].is_member(group_id)

    def is_crashed(self, process_id: str) -> bool:
        return self.processes[process_id].crashed

    def deliveries(self) -> int:
        return sum(len(process.delivered) for process in self.processes.values())

    def delivered_ids(self, process_id: str, group_id: Optional[str] = None) -> List[str]:
        return [
            record.msg_id
            for record in self.processes[process_id].delivered
            if group_id is None or record.group == group_id
        ]

    def offline_checks(
        self,
        trace: EventTrace,
        view_agreement_sets=None,
        checks: Optional[Iterable[str]] = None,
    ) -> CheckResult:
        # The paper's exact post-hoc checkers, unless a subset was selected.
        if checks is None or tuple(checks) == ALL_CHECKS:
            return check_all(trace, view_agreement_sets=view_agreement_sets)
        return super().offline_checks(trace, view_agreement_sets, checks=checks)

    def _context(self) -> StackContext:
        if self.context is None:
            raise StackError(f"stack {self.name!r} is not attached to a session")
        return self.context


class BaselineStack(ProtocolStack):
    """A single-group §6 baseline lifted to overlapping groups.

    Each group runs an independent instance of the protocol per member on
    its own transport channel (``baseline:<group>``), so several groups --
    and several baselines' worth of state at one process -- coexist on the
    shared network exactly like Newtop's per-group endpoints do.  Nothing
    coordinates *across* groups, which is why the declared checks are
    evaluated per group (``check_scope = "group"``).
    """

    capabilities = frozenset({CAP_CRASH, CAP_PARTITION})
    check_scope = "group"

    def __init__(
        self,
        process_class: Type[BaselineProcess],
        name: Optional[str] = None,
        checks: Tuple[str, ...] = ("total_order", "sender_in_view"),
    ) -> None:
        super().__init__()
        self.process_class = process_class
        self.name = name or process_class.protocol_name
        self.checks = checks
        #: process id -> group id -> protocol instance
        self.processes: Dict[str, Dict[str, BaselineProcess]] = {}
        #: group id -> sorted member tuple
        self.groups: Dict[str, Tuple[str, ...]] = {}
        self._crashed: Set[str] = set()

    def attach(self, context: StackContext, protocol: Optional[Mapping] = None) -> None:
        # Baselines have no protocol knobs; Newtop-specific overrides
        # (suspicion timeouts etc.) are deliberately ignored.
        super().attach(context, protocol)

    def spawn(self, process_id: str) -> None:
        if process_id in self.processes:
            raise StackError(f"process {process_id!r} already spawned")
        self.processes[process_id] = {}
        # Materialize the endpoint now so process-level faults (crash)
        # apply even before the process joins any group.
        self._context().transport.endpoint(process_id)

    def create_group(
        self, group_id: str, members: Sequence[str], mode: Optional[object] = None
    ) -> None:
        if group_id in self.groups:
            raise StackError(f"group {group_id!r} already exists")
        context = self._context()
        members = tuple(sorted(members))
        self.groups[group_id] = members
        for member in members:
            self.processes[member][group_id] = self.process_class(
                member,
                context.sim,
                context.transport,
                members,
                group_id=group_id,
                channel=f"baseline:{group_id}",
                recorder=context.recorder,
            )
            # The static membership is the group's one and only view; the
            # install event scopes the MD1/causal exemptions the streaming
            # checkers apply, just as Newtop's installs do.
            context.recorder.record(
                context.sim.now,
                VIEW_INSTALL,
                member,
                group=group_id,
                members=members,
                view_index=0,
            )

    def multicast(self, process_id: str, group_id: str, payload: object) -> Optional[str]:
        instance = self.processes[process_id].get(group_id)
        if instance is None:
            raise StackError(f"{process_id!r} is not a member of {group_id!r}")
        if instance.crashed or self._send_blocked(process_id, group_id):
            return None
        # The instance records the SEND itself (before any synchronous
        # self-delivery), keeping the trace stream causally coherent.
        return instance.multicast(payload)

    def _send_blocked(self, process_id: str, group_id: str) -> bool:
        """Policy hook (primary-partition halts non-primary members here)."""
        return False

    def crash(self, process_id: str) -> None:
        if process_id in self._crashed:
            return
        self._crashed.add(process_id)
        context = self._context()
        for instance in self.processes[process_id].values():
            instance.crash()
        # Covers processes that joined no group (endpoint.crash is
        # idempotent when instances already crashed it).
        context.transport.endpoint(process_id).crash()
        context.recorder.record(context.sim.now, CRASH, process_id)

    def process_ids(self) -> List[str]:
        return sorted(self.processes)

    def is_member(self, process_id: str, group_id: str) -> bool:
        return group_id in self.processes.get(process_id, {})

    def is_crashed(self, process_id: str) -> bool:
        return process_id in self._crashed

    def deliveries(self) -> int:
        return sum(
            len(instance.delivered)
            for groups in self.processes.values()
            for instance in groups.values()
        )

    def delivered_ids(self, process_id: str, group_id: Optional[str] = None) -> List[str]:
        groups = self.processes.get(process_id, {})
        if group_id is not None:
            instance = groups.get(group_id)
            return instance.delivered_ids() if instance is not None else []
        merged = [
            delivery
            for instance in groups.values()
            for delivery in instance.delivered
        ]
        merged.sort(key=lambda delivery: delivery.time)
        return [delivery.msg_id for delivery in merged]

    def protocol_bytes(self) -> Optional[int]:
        return sum(
            instance.protocol_bytes_sent
            for groups in self.processes.values()
            for instance in groups.values()
        )

    def _context(self) -> StackContext:
        if self.context is None:
            raise StackError(f"stack {self.name!r} is not attached to a session")
        return self.context


class PrimaryPartitionStack(BaselineStack):
    """Fixed-sequencer ordering under the primary-partition policy (§6).

    On every partition the policy is evaluated per group against the
    group's static view: members outside the unique majority component are
    *halted* -- their multicasts are refused until the partition heals --
    which is precisely the availability restriction Newtop's partitionable
    membership avoids (experiment E16).
    """

    def __init__(self) -> None:
        super().__init__(
            FixedSequencerProcess,
            name="primary_partition",
            checks=("total_order", "sender_in_view"),
        )
        self._halted: Set[Tuple[str, str]] = set()

    def on_partition(self, components: Sequence[Iterable[str]]) -> None:
        listed: Set[str] = set()
        resolved = [set(component) for component in components]
        for component in resolved:
            listed |= component
        leftover = set(self.processes) - listed
        if leftover:
            resolved.append(leftover)
        self._halted.clear()
        for group_id, members in self.groups.items():
            live = [member for member in members if member not in self._crashed]
            if not live:
                continue
            policy = PrimaryPartitionMembership(live)
            available = policy.available_processes(resolved)
            for member in live:
                if member not in available:
                    self._halted.add((member, group_id))

    def on_heal(self) -> None:
        self._halted.clear()

    def _send_blocked(self, process_id: str, group_id: str) -> bool:
        return (process_id, group_id) in self._halted

    def halted_memberships(self) -> List[Tuple[str, str]]:
        """(process, group) pairs currently blocked by the policy."""
        return sorted(self._halted)


#: Registry of constructable stacks; every entry builds a *fresh* stack.
STACK_FACTORIES: Dict[str, Callable[[], ProtocolStack]] = {
    "newtop": NewtopStack,
    "newtop-symmetric": lambda: NewtopStack(mode=OrderingMode.SYMMETRIC),
    "newtop-asymmetric": lambda: NewtopStack(mode=OrderingMode.ASYMMETRIC),
    "fixed_sequencer": lambda: BaselineStack(
        FixedSequencerProcess, checks=("total_order", "sender_in_view")
    ),
    "isis": lambda: BaselineStack(
        IsisProcess, checks=("total_order", "causal_prefix", "sender_in_view")
    ),
    "lamport_ack": lambda: BaselineStack(
        LamportAckProcess, checks=("total_order", "sender_in_view")
    ),
    "psync": lambda: BaselineStack(
        PsyncProcess, checks=("causal_prefix", "sender_in_view")
    ),
    "primary_partition": PrimaryPartitionStack,
}

#: The six stacks the paper's comparative claims are benchmarked across.
COMPARISON_STACKS: Tuple[str, ...] = (
    "newtop-symmetric",
    "newtop-asymmetric",
    "fixed_sequencer",
    "isis",
    "lamport_ack",
    "psync",
)


def available_stacks() -> List[str]:
    """Registry names accepted by :func:`get_stack` and the session layer."""
    return sorted(STACK_FACTORIES)


def get_stack(stack) -> ProtocolStack:
    """Resolve a stack argument: an instance passes through, a registry
    name constructs a fresh stack."""
    if isinstance(stack, ProtocolStack):
        return stack
    try:
        return STACK_FACTORIES[stack]()
    except (KeyError, TypeError):
        raise StackError(
            f"unknown protocol stack {stack!r}; expected a ProtocolStack or "
            f"one of {available_stacks()}"
        ) from None
