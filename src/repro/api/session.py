"""The unified session lifecycle: one front door for every protocol stack.

A :class:`Session` owns the simulated substrate (simulator, network,
transport, fault injector, trace recorder) and drives a pluggable
:class:`~repro.api.stack.ProtocolStack` through one lifecycle::

    from repro.api import Session

    session = Session(stack="newtop", config={"omega": 1.5}, seed=7)
    session.spawn(["P1", "P2", "P3"])
    session.group("g")
    session.multicast("P1", "g", "hello")
    session.run(30)
    result = session.result()
    assert result.passed

The same five lines run the fixed sequencer, ISIS, Lamport all-ack, Psync
or the primary-partition policy by changing ``stack=``; verification is
routed through the stack's declared checks, so a sequencer run streams the
total-order checker while a Psync run streams the causal one.

Two analysis modes mirror the scenario engine's:

``analysis="offline"`` (default)
    The full trace is materialized; :meth:`Session.result` evaluates the
    stack's post-hoc checkers over it and :meth:`Session.trace` works.
``analysis="online"``
    The recorder streams into the stack's check suite and a rolling
    :class:`~repro.net.trace.MetricsSink` with ``keep_events=False`` -- no
    event is retained, memory stays flat at any scale.

Extra :class:`~repro.net.trace.TraceSink` objects (e.g. a
:class:`~repro.net.trace.JsonlSink`, or a custom observer) attach in either
mode via ``sinks=[...]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.analysis.checkers import CheckResult
from repro.api.stack import ProtocolStack, StackContext, StackError
from repro.api.stacks import get_stack
from repro.net.failures import FailureSchedule, FaultInjector
from repro.net.faults import get_link_faults
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.net.simulator import Simulator
from repro.net.trace import EventTrace, MetricsSink, TraceRecorder, TraceSink
from repro.net.transport import Transport
from repro.obs import Observation


@dataclass
class SessionResult:
    """Everything a session run produced."""

    stack: str
    analysis: str
    checks: Optional[CheckResult]
    deliveries: int
    messages_sent: int
    delivery_events: int
    bytes_sent: int
    sim_time: float
    trace_events: int
    trace_events_stored: int
    protocol_bytes: Optional[int] = None
    metrics: Optional[Dict[str, object]] = None
    #: The observation snapshot (``observe=`` was given), else ``None``.
    obs: Optional[Dict[str, object]] = None
    #: Sinks that raised during fan-out and were detached (see
    #: :class:`~repro.net.trace.TraceRecorder`); each entry names the sink
    #: and the error.  Non-empty errors fail :attr:`passed` -- a detached
    #: verifier must not turn into a silent pass.
    sink_errors: List[Dict[str, object]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every selected check held (vacuously true with none)
        and no trace sink was detached mid-run."""
        if self.sink_errors:
            return False
        return self.checks is None or self.checks.passed


class Session:
    """One protocol run: substrate + stack + verification, one lifecycle."""

    def __init__(
        self,
        stack: Union[str, ProtocolStack] = "newtop",
        config: Optional[Mapping] = None,
        *,
        seed: int = 0,
        latency_model: Optional[LatencyModel] = None,
        batch_window: float = 0.0,
        link_faults: object = None,
        sinks: Optional[Sequence[TraceSink]] = None,
        checks: Optional[Iterable[str]] = None,
        analysis: str = "offline",
        view_agreement_sets: Optional[Dict[str, Iterable[str]]] = None,
        timer_wheel: bool = True,
        observe: object = None,
    ) -> None:
        if analysis not in ("offline", "online"):
            raise ValueError(f"unknown analysis mode {analysis!r}")
        self.stack = get_stack(stack)
        self.analysis = analysis
        self.view_agreement_sets = view_agreement_sets
        self._checks = tuple(checks) if checks is not None else None
        # Observation (repro.obs): ``True`` enables metrics + sampler,
        # "journeys" adds sampled per-message journey tracing, "full" adds
        # the profiler, span breakdowns and journeys, a dict passes keyword
        # arguments through.  Never changes behaviour or seed-determinism
        # (pinned by the hot-path equivalence tests).
        self.observation: Optional[Observation] = Observation.coerce(observe)
        obs = self.observation
        self.sim = Simulator(
            seed=seed,
            use_timer_wheel=timer_wheel,
            metrics=obs.registry if obs is not None else None,
            profiler=obs.profiler if obs is not None else None,
            journeys=obs.journeys if obs is not None else None,
        )
        network_config = NetworkConfig()
        if latency_model is not None:
            network_config.latency_model = latency_model
        network_config.batch_window = batch_window
        # ``link_faults`` accepts a LinkFaultModel or its JSON-shaped dict
        # (the form scenario specs carry); ``None`` disables link faults.
        network_config.link_faults = get_link_faults(link_faults)
        self.network = Network(self.sim, network_config)
        self.transport = Transport(self.network)
        self.injector = FaultInjector(self.sim, self.network)
        self.suite = None
        self.metrics_sink: Optional[MetricsSink] = None
        extra_sinks = list(sinks or ())
        if obs is not None:
            extra_sinks.extend(obs.trace_sinks())
        if analysis == "online":
            # checks=() disables verification; the metrics sink still runs.
            if self._checks is None or self._checks:
                self.suite = self.stack.make_check_suite(
                    view_agreement_sets, checks=self._checks
                )
            self.metrics_sink = MetricsSink()
            check_sinks = [self.suite] if self.suite is not None else []
            self.recorder = TraceRecorder(
                sinks=[*check_sinks, self.metrics_sink, *extra_sinks],
                keep_events=False,
            )
        else:
            self.recorder = TraceRecorder(sinks=extra_sinks)
        if obs is not None:
            self.recorder.profiler = obs.profiler
            obs.bind(self.sim)
        self.stack.attach(
            StackContext(
                sim=self.sim,
                network=self.network,
                transport=self.transport,
                injector=self.injector,
                recorder=self.recorder,
            ),
            protocol=config,
        )
        self._closed = False
        self._result: Optional[SessionResult] = None

    # ------------------------------------------------------------------
    # Process and group lifecycle
    # ------------------------------------------------------------------
    def spawn(self, process_ids: Union[str, Iterable[str]]) -> List[str]:
        """Create one process (a string) or several (an iterable)."""
        names = [process_ids] if isinstance(process_ids, str) else list(process_ids)
        for name in names:
            self.stack.spawn(name)
        return names

    def group(
        self,
        group_id: str,
        members: Optional[Sequence[str]] = None,
        mode: Optional[object] = None,
    ) -> None:
        """Install a group over ``members`` (default: every process)."""
        chosen = list(members) if members is not None else self.stack.process_ids()
        self.stack.create_group(group_id, chosen, mode=mode)

    def multicast(self, sender: str, group_id: str, payload: object) -> Optional[str]:
        """Multicast through the stack; returns the message id (or ``None``
        when the stack refused the send)."""
        return self.stack.multicast(sender, group_id, payload)

    def attach_client(self, client):
        """Attach a reactive traffic client (e.g. an
        :class:`~repro.workloads.client.OpenLoopClient`).

        The client is bound to this session -- giving it the simulator for
        scheduling arrivals and the stack for membership guards -- and
        registers itself on the trace recorder so it can watch its own
        deliveries in either analysis mode.  Returns the client; call its
        ``start()`` to begin offering load.
        """
        client.bind(self)
        return client

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def crash(self, process_id: str) -> None:
        """Crash-stop one process immediately."""
        self.stack.crash(process_id)

    def leave(self, process_id: str, group_id: str) -> None:
        """Voluntary departure (stacks without the capability raise)."""
        self.stack.leave(process_id, group_id)

    def form_group(self, group_id: str, members: Sequence[str]) -> None:
        """Dynamic mid-run formation (stacks without the capability raise)."""
        self.stack.form_group(group_id, members)

    def partition(self, components: Sequence[Iterable[str]]) -> None:
        """Install a network partition immediately."""
        self.injector.partition_now(components)
        self.stack.on_partition(components)

    def isolate(self, process_ids: Sequence[str]) -> None:
        """Partition each listed process away from everyone else."""
        components = [[process_id] for process_id in process_ids]
        self.network.partitions.partition(components, at_time=self.sim.now)
        self.stack.on_partition(components)

    def heal(self) -> None:
        """Heal all partitions immediately."""
        self.injector.heal_now()
        self.stack.on_heal()

    def install_failures(self, schedule: FailureSchedule) -> None:
        """Schedule a declarative set of failures."""
        self.injector.install(schedule)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        """Advance simulated time by ``duration``."""
        if self.observation is not None:
            self.observation.ensure_sampling()
        self.sim.run(until=self.sim.now + duration)

    def run_until(self, predicate: Callable[[], bool], timeout: float) -> bool:
        """Run until ``predicate()`` holds or ``timeout`` simulated time passes."""
        if self.observation is not None:
            self.observation.ensure_sampling()
        return self.sim.run_until(predicate, timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def processes(self):
        """The stack's process mapping (protocol-specific value type)."""
        return self.stack.processes

    def __getitem__(self, process_id: str):
        return self.stack.processes[process_id]

    def trace(self) -> EventTrace:
        """The materialized trace (offline mode only)."""
        return self.recorder.trace()

    def deliveries(self) -> int:
        """Total application deliveries so far."""
        return self.stack.deliveries()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close every trace sink (idempotent)."""
        if not self._closed:
            self._closed = True
            self.recorder.close()

    def result(self) -> SessionResult:
        """Close the sinks and evaluate the stack's selected checks.

        Online mode reads the verdict from the streaming suite; offline
        mode runs the stack's post-hoc checkers over the stored trace.
        ``checks=()`` disables verification (``checks`` is then ``None``).
        """
        if self._result is not None:
            return self._result
        self.close()
        checks: Optional[CheckResult]
        if self._checks is not None and not self._checks:
            checks = None
        elif self.suite is not None:
            checks = self.suite.result()
        else:
            checks = self.stack.offline_checks(
                self.trace(), self.view_agreement_sets, checks=self._checks
            )
        stats = self.network.stats
        self._result = SessionResult(
            stack=self.stack.name,
            analysis=self.analysis,
            checks=checks,
            deliveries=self.stack.deliveries(),
            messages_sent=stats.messages_sent,
            delivery_events=stats.delivery_events,
            bytes_sent=stats.bytes_sent,
            sim_time=self.sim.now,
            trace_events=self.recorder.events_recorded,
            trace_events_stored=self.recorder.stored_events,
            protocol_bytes=self.stack.protocol_bytes(),
            metrics=(
                self.metrics_sink.snapshot() if self.metrics_sink is not None else None
            ),
            obs=(
                self.observation.snapshot() if self.observation is not None else None
            ),
            sink_errors=list(self.recorder.sink_errors),
        )
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(stack={self.stack.name!r}, "
            f"processes={self.stack.process_ids()}, now={self.sim.now:.2f})"
        )
