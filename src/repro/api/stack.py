"""The :class:`ProtocolStack` interface: one pluggable contract per protocol.

A protocol stack is everything the session layer needs to run a group
communication protocol on the simulated substrate without knowing which
protocol it is:

* **process lifecycle** -- :meth:`ProtocolStack.spawn` creates one protocol
  participant on the shared transport; :meth:`ProtocolStack.crash`
  crash-stops it.
* **group operations** -- :meth:`ProtocolStack.create_group` installs a
  group over spawned processes; :meth:`ProtocolStack.multicast` sends;
  :meth:`ProtocolStack.leave` / :meth:`ProtocolStack.form_group` cover
  dynamic membership where the protocol supports it.
* **fault hooks** -- :meth:`ProtocolStack.on_partition` /
  :meth:`ProtocolStack.on_heal` let a stack react to network partitions
  (the primary-partition policy stack halts non-primary components here).
* **trace wiring** -- every stack records its observable events to the
  session's :class:`~repro.net.trace.TraceRecorder`, and declares via
  :attr:`ProtocolStack.checks` / :attr:`ProtocolStack.check_scope` which
  streaming checkers its guarantees claim (total order for sequencer-style
  stacks, causal order for Psync, everything for Newtop) and whether they
  hold globally across overlapping groups (Newtop's MD4') or only within
  each group (every single-group baseline).

Capabilities are declared, not discovered: :attr:`ProtocolStack.capabilities`
is a frozenset of :data:`CAP_CRASH` / :data:`CAP_PARTITION` /
:data:`CAP_LEAVE` / :data:`CAP_FORM_GROUP` flags the scenario engine maps
timed events onto, so a scenario asking a baseline for a ``form_group``
raises a clear :class:`UnsupportedScenarioEvent` (or records a skip)
instead of an ``AttributeError``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.checkers import CheckResult
from repro.analysis.online import ALL_CHECKS, GroupScopedCheckSuite, OnlineCheckSuite
from repro.net.failures import FaultInjector
from repro.net.network import Network
from repro.net.simulator import Simulator
from repro.net.trace import EventTrace, TraceRecorder
from repro.net.transport import Transport

#: Capability flags a stack may declare (what the scenario engine maps
#: event kinds onto).
CAP_CRASH = "crash"
CAP_PARTITION = "partition"
CAP_LEAVE = "leave"
CAP_FORM_GROUP = "form_group"

#: Scenario event kind -> capability required to apply it.  Network-level
#: faults (partitions, isolation, lossy drop windows) only need the
#: substrate, so they share one flag.
EVENT_CAPABILITIES: Mapping[str, str] = {
    "crash": CAP_CRASH,
    "leave": CAP_LEAVE,
    "partition": CAP_PARTITION,
    "heal": CAP_PARTITION,
    "isolate": CAP_PARTITION,
    "drop": CAP_PARTITION,
    "form_group": CAP_FORM_GROUP,
}


class StackError(RuntimeError):
    """Base class for session/stack usage errors."""


class UnsupportedStackOperation(StackError):
    """An operation the stack's protocol does not provide was invoked."""


class UnsupportedScenarioEvent(StackError):
    """A scenario names an event the selected stack has no capability for."""


@dataclass
class StackContext:
    """The shared substrate a session hands to its stack.

    One simulator, network, transport, fault injector and trace recorder --
    exactly the boilerplate the old per-protocol cluster classes each
    rebuilt for themselves.
    """

    sim: Simulator
    network: Network
    transport: Transport
    injector: FaultInjector
    recorder: TraceRecorder


class ProtocolStack:
    """Abstract base class every pluggable protocol implements.

    Subclasses set the class attributes (:attr:`name`,
    :attr:`capabilities`, :attr:`checks`, :attr:`check_scope`) and implement
    the lifecycle methods.  Optional operations (:meth:`leave`,
    :meth:`form_group`) raise :class:`UnsupportedStackOperation` by default;
    callers should consult :meth:`supports` first.
    """

    #: Registry / display name ("newtop-symmetric", "isis", ...).
    name: str = "stack"
    #: Capability flags (see the CAP_* constants).
    capabilities: frozenset = frozenset()
    #: Online-checker names this stack's guarantees claim
    #: (see :data:`repro.analysis.online.CHECKER_FACTORIES`).
    checks: Tuple[str, ...] = ALL_CHECKS
    #: ``"global"`` -- guarantees hold across overlapping groups (Newtop's
    #: MD4'); ``"group"`` -- they hold within each group only (every
    #: single-group baseline lifted to many groups).
    check_scope: str = "global"

    def __init__(self) -> None:
        self.context: Optional[StackContext] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, context: StackContext, protocol: Optional[Mapping] = None) -> None:
        """Bind the stack to a session's substrate.

        ``protocol`` carries protocol-parameter overrides (the scenario
        spec's ``protocol`` dict); stacks without matching knobs ignore it.
        """
        self.context = context

    def spawn(self, process_id: str) -> None:
        """Create one protocol participant."""
        raise NotImplementedError

    def create_group(
        self, group_id: str, members: Sequence[str], mode: Optional[object] = None
    ) -> None:
        """Install a statically configured group over spawned processes."""
        raise NotImplementedError

    def multicast(self, process_id: str, group_id: str, payload: object) -> Optional[str]:
        """Multicast ``payload`` in ``group_id``; returns the message id
        (``None`` when the send was refused, e.g. crashed or blocked)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Faults and membership events
    # ------------------------------------------------------------------
    def crash(self, process_id: str) -> None:
        """Crash-stop one process."""
        raise NotImplementedError

    def leave(self, process_id: str, group_id: str) -> None:
        """Voluntary departure from a group (optional capability)."""
        raise UnsupportedStackOperation(
            f"stack {self.name!r} does not support voluntary departure"
        )

    def form_group(self, group_id: str, members: Sequence[str]) -> None:
        """Dynamic group formation mid-run (optional capability)."""
        raise UnsupportedStackOperation(
            f"stack {self.name!r} does not support dynamic group formation"
        )

    def on_partition(self, components: Sequence[Iterable[str]]) -> None:
        """Hook invoked after the network installed a partition."""

    def on_heal(self) -> None:
        """Hook invoked after all partitions healed."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def supports(self, capability: str) -> bool:
        """Whether the stack declares ``capability``."""
        return capability in self.capabilities

    def process_ids(self) -> List[str]:
        """Identifiers of every spawned process."""
        raise NotImplementedError

    def is_member(self, process_id: str, group_id: str) -> bool:
        """Whether the process currently considers itself a group member."""
        raise NotImplementedError

    def is_crashed(self, process_id: str) -> bool:
        """Whether the process has crash-stopped."""
        raise NotImplementedError

    def deliveries(self) -> int:
        """Total application deliveries across all processes."""
        raise NotImplementedError

    def delivered_ids(self, process_id: str, group_id: Optional[str] = None) -> List[str]:
        """Message ids delivered at one process, in local delivery order."""
        raise NotImplementedError

    def protocol_bytes(self) -> Optional[int]:
        """Protocol-overhead bytes put on the wire (``None`` if untracked)."""
        return None

    # ------------------------------------------------------------------
    # Verification wiring
    # ------------------------------------------------------------------
    def make_check_suite(
        self,
        view_agreement_sets: Optional[Dict[str, Iterable[str]]] = None,
        checks: Optional[Iterable[str]] = None,
    ):
        """A streaming check suite scoped the way this stack's guarantees
        are scoped; register it as a trace sink."""
        names = tuple(checks) if checks is not None else self.checks
        if self.check_scope == "group":
            return GroupScopedCheckSuite(view_agreement_sets, checks=names)
        return OnlineCheckSuite(view_agreement_sets, checks=names)

    def offline_checks(
        self,
        trace: EventTrace,
        view_agreement_sets: Optional[Dict[str, Iterable[str]]] = None,
        checks: Optional[Iterable[str]] = None,
    ) -> CheckResult:
        """Post-hoc verdict over a materialized trace.

        The default replays the trace through :meth:`make_check_suite`;
        stacks with dedicated post-hoc checkers (Newtop) override this.
        """
        suite = self.make_check_suite(view_agreement_sets, checks=checks)
        for event in trace:
            suite.on_event(event)
        return suite.result()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
