"""Streaming statistics shared across layers: the mergeable latency reservoir.

This is a *leaf* module -- it imports nothing from :mod:`repro` -- so both
the trace layer (:class:`repro.net.trace.MetricsSink`) and the workload
layer (:class:`repro.workloads.client.OpenLoopClient`) can maintain exact,
mergeable latency statistics without an import cycle.  The historical
import sites (``repro.workloads.client`` / ``repro.workloads``) re-export
everything here.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

#: Bounded reservoir size for latency percentile estimation.
LATENCY_RESERVOIR = 4096

#: Percentiles reported by :meth:`LatencyReservoir.summary`.
LATENCY_PERCENTILES = (50, 90, 99)


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already sorted sample list."""
    if not sorted_samples:
        raise ValueError("no samples")
    rank = max(0, min(len(sorted_samples) - 1, int(round(q / 100.0 * len(sorted_samples))) - 1))
    return sorted_samples[rank]


def _systematic_ranks(pool: Sequence[float], target: int) -> List[float]:
    """``target`` values at evenly spaced ranks of ``pool`` (sorted).

    Works in both directions: shrinking keeps quantile-faithful
    representatives, stretching repeats ranks so the values act with
    proportionally more weight in a combined pool.
    """
    if target <= 0 or not pool:
        return []
    ordered = sorted(pool)
    step = len(ordered) / target
    return [
        ordered[min(len(ordered) - 1, int((index + 0.5) * step))]
        for index in range(target)
    ]


class LatencyReservoir:
    """Streaming latency statistics: exact moments + a mergeable reservoir.

    Count, mean, min and max are exact over every sample ever added.
    Percentiles come from a bounded reservoir: classic reservoir sampling
    (uniform over the stream) driven by a private seeded RNG, so the same
    sample stream always produces the same reservoir.

    Reservoirs *merge*: :meth:`merge` folds another reservoir in, keeping
    the exact moments exact and concatenating the sample pools.  A merged
    pool above capacity is compacted by sorting and taking systematically
    spaced ranks -- deterministic, order-preserving, and quantile-faithful
    (each retained sample represents an equal slice of the merged
    distribution).  That is what lets per-client, per-cell and per-shard
    statistics combine into one percentile table without shipping raw
    sample streams between processes -- e.g. across the
    :mod:`repro.parallel` worker pool.
    """

    def __init__(self, capacity: int = LATENCY_RESERVOIR, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be > 0")
        self.capacity = capacity
        self.count = 0
        self.mean = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: List[float] = []
        self._rng = random.Random(seed ^ 0x5EED)

    def add(self, sample: float) -> None:
        """Fold one sample into the exact moments and the reservoir."""
        self.count += 1
        self.mean += (sample - self.mean) / self.count
        self.min = min(self.min, sample)
        self.max = max(self.max, sample)
        if len(self._samples) < self.capacity:
            self._samples.append(sample)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = sample

    def merge(self, other: "LatencyReservoir") -> "LatencyReservoir":
        """Fold ``other`` into this reservoir (returns self for chaining).

        Exact moments combine exactly.  The sample pools combine
        *count-weighted*: when both sides are exact (every observed
        sample still in the pool) the union is kept verbatim, otherwise
        each side contributes systematically spaced ranks in proportion
        to its observation count -- so a three-point moment sketch
        standing for a million samples is not drowned out by (nor drowns
        out) a hundred-sample reservoir next to it.
        """
        if not other.count:
            return self
        if not self.count:
            self.count, self.mean = other.count, other.mean
            self.min, self.max = other.min, other.max
            self._samples = _systematic_ranks(
                other._samples, min(len(other._samples), self.capacity)
            )
            return self
        total = self.count + other.count
        exact = (
            self.count == len(self._samples)
            and other.count == len(other._samples)
            and total <= self.capacity
        )
        if exact:
            self._samples.extend(other._samples)
        else:
            own_share = min(
                self.capacity - 1, max(1, round(self.capacity * self.count / total))
            )
            self._samples = _systematic_ranks(self._samples, own_share) + \
                _systematic_ranks(other._samples, self.capacity - own_share)
        self.mean = (self.mean * self.count + other.mean * other.count) / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def samples(self) -> List[float]:
        """A copy of the current sample pool."""
        return list(self._samples)

    @property
    def is_exact(self) -> bool:
        """Whether every observed sample is still in the pool (percentiles
        from an exact pool are exact, not reservoir estimates)."""
        return self.count == len(self._samples)

    def summary(
        self, percentiles: Sequence[float] = LATENCY_PERCENTILES
    ) -> Dict[str, Optional[float]]:
        """JSON-shaped statistics: exact moments plus reservoir percentiles."""
        if not self.count:
            return {"count": 0, "mean": None, "min": None, "max": None,
                    **{f"p{q}": None for q in percentiles}}
        ordered = sorted(self._samples)
        summary: Dict[str, Optional[float]] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        for q in percentiles:
            summary[f"p{q}"] = percentile(ordered, q)
        return summary

    @staticmethod
    def from_moments(count: int, mean: float, minimum: float,
                     maximum: float) -> "LatencyReservoir":
        """A reservoir reconstructed from exact moments alone.

        For folding in sources that kept no samples (e.g. a rolling
        metrics aggregate): the pool holds a three-point min/mean/max
        sketch at the exact count, so merged percentiles stay bounded by
        the true extremes even though the interior shape is coarse.
        """
        reservoir = LatencyReservoir()
        if count:
            reservoir.count = count
            reservoir.mean = mean
            reservoir.min = minimum
            reservoir.max = maximum
            reservoir._samples = [minimum, mean, maximum]
        return reservoir

    @staticmethod
    def merged(reservoirs: Iterable["LatencyReservoir"],
               capacity: int = LATENCY_RESERVOIR) -> "LatencyReservoir":
        """One reservoir combining ``reservoirs`` (which are not mutated)."""
        combined = LatencyReservoir(capacity=capacity)
        for reservoir in reservoirs:
            combined.merge(reservoir)
        return combined

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyReservoir(count={self.count}, "
            f"held={len(self._samples)}/{self.capacity})"
        )
