"""repro: a reproduction of "Newtop: A Fault-Tolerant Group Communication
Protocol" (Ezhilchelvan, Macedo, Shrivastava -- ICDCS 1995).

The package is organised as the paper's system is layered (its Fig. 3):

* :mod:`repro.net` -- the simulated asynchronous network substrate
  (discrete-event kernel, reliable FIFO transport, partitions, crashes).
* :mod:`repro.core` -- the Newtop protocol suite itself: logical-clock
  numbering, symmetric and asymmetric total order, cross-group delivery,
  time-silence, message stability, the partitionable membership service,
  dynamic group formation and flow control.
* :mod:`repro.baselines` -- re-implementations of the protocols Newtop is
  compared against in section 6 (ISIS-style vector-clock multicast,
  Psync-style context graphs, a classic fixed sequencer, a
  primary-partition membership policy and a propagation-graph multicast).
* :mod:`repro.apps` -- example applications from the paper's motivation:
  replicated state machines and online server migration via overlapping
  groups.
* :mod:`repro.analysis` -- trace checkers for the paper's guarantees
  (MD1-MD5', VC1-VC3), workload generators and overhead/latency metrics
  used by the benchmark harness.
* :mod:`repro.scenarios` -- a declarative large-scale scenario engine:
  config dicts describe processes, overlapping (mixed-mode) groups, a
  background workload and timed fault events (churn, cascading
  partitions, merge storms, sequencer migration); the engine runs them
  on a fresh cluster and verifies the paper's guarantees on the trace,
  deriving per-group view-agreement sets from the event list
  automatically.  Ready-made generators scale to hundreds of processes::

      from repro.scenarios import churn_scenario, run_scenario

      result = run_scenario(churn_scenario(n_processes=100, n_groups=10))
      assert result.passed

Quick start::

    from repro import NewtopCluster

    cluster = NewtopCluster(["P1", "P2", "P3"], seed=7)
    cluster.create_group("g1")
    cluster["P1"].multicast("g1", "hello")
    cluster.run(20)
    print(cluster["P3"].delivered_payloads("g1"))
"""

from repro.core import (
    NewtopCluster,
    NewtopConfig,
    NewtopProcess,
    OrderingMode,
)

__version__ = "1.0.0"

__all__ = [
    "NewtopCluster",
    "NewtopConfig",
    "NewtopProcess",
    "OrderingMode",
    "__version__",
]
