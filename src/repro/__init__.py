"""repro: a reproduction of "Newtop: A Fault-Tolerant Group Communication
Protocol" (Ezhilchelvan, Macedo, Shrivastava -- ICDCS 1995).

The package is organised as the paper's system is layered (its Fig. 3):

* :mod:`repro.api` -- the unified session layer: one
  :class:`~repro.api.Session` lifecycle
  (``spawn / group / multicast / run / result``) over pluggable
  :class:`~repro.api.ProtocolStack` implementations -- Newtop in both
  ordering modes and every §6 baseline -- with trace sinks and streaming
  verification wired through per-stack check selection.
* :mod:`repro.net` -- the simulated asynchronous network substrate
  (discrete-event kernel, reliable FIFO transport, partitions, crashes).
* :mod:`repro.core` -- the Newtop protocol suite itself: logical-clock
  numbering, symmetric and asymmetric total order, cross-group delivery,
  time-silence, message stability, the partitionable membership service,
  dynamic group formation and flow control.
* :mod:`repro.baselines` -- re-implementations of the protocols Newtop is
  compared against in section 6 (ISIS-style vector-clock multicast,
  Psync-style context graphs, a classic fixed sequencer, a
  primary-partition membership policy and a propagation-graph multicast).
* :mod:`repro.apps` -- example applications from the paper's motivation:
  replicated state machines and online server migration via overlapping
  groups.
* :mod:`repro.analysis` -- trace checkers for the paper's guarantees
  (MD1-MD5', VC1-VC3), workload generators and overhead/latency metrics
  used by the benchmark harness.
* :mod:`repro.scenarios` -- a declarative large-scale scenario engine:
  config dicts describe processes, overlapping (mixed-mode) groups, a
  background workload and timed fault events (churn, cascading
  partitions, merge storms, sequencer migration); the engine runs them
  on a fresh cluster and verifies the paper's guarantees on the trace,
  deriving per-group view-agreement sets from the event list
  automatically.  Ready-made generators scale to hundreds of processes::

      from repro.scenarios import churn_scenario, run_scenario

      result = run_scenario(churn_scenario(n_processes=100, n_groups=10))
      assert result.passed

Quick start::

    from repro import Session

    session = Session(stack="newtop", seed=7)
    session.spawn(["P1", "P2", "P3"])
    session.group("g1")
    session.multicast("P1", "g1", "hello")
    session.run(20)
    print(session["P3"].delivered_payloads("g1"))
    assert session.result().passed

(change ``stack=`` to ``"fixed_sequencer"``, ``"isis"``, ``"lamport_ack"``
or ``"psync"`` to run the same workload on a §6 baseline.)
"""

from repro.api import ProtocolStack, Session, SessionResult, available_stacks
from repro.core import (
    NewtopConfig,
    NewtopProcess,
    OrderingMode,
)

__version__ = "1.0.0"

__all__ = [
    "NewtopConfig",
    "NewtopProcess",
    "OrderingMode",
    "ProtocolStack",
    "Session",
    "SessionResult",
    "available_stacks",
    "__version__",
]
