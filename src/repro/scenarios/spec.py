"""Declarative scenario specifications.

A scenario is described by a plain config dict -- JSON-shaped, so specs can
be generated programmatically (see :mod:`repro.scenarios.library`), stored
in files, or written inline in tests::

    {
        "name": "two-group churn",
        "seed": 7,
        "processes": 8,                     # or an explicit list of names
        "groups": [
            {"id": "g0", "members": ["P001", ..., "P004"]},
            {"id": "g1", "members": ["P003", ..., "P006"], "mode": "asymmetric"},
        ],
        "workload": {"messages_per_sender": 3, "senders_per_group": 2, "gap": 2.0},
        "events": [
            {"time": 8.0, "kind": "crash", "targets": ["P002"]},
            {"time": 10.0, "kind": "partition", "components": [["P001", "P003"]]},
            {"time": 20.0, "kind": "heal"},
        ],
        "drain": 40.0,
        "protocol": {"omega": 1.5, "suspicion_timeout": 6.0},
        "batch_window": 0.25,
    }

:func:`from_config` parses and validates such a dict into a
:class:`ScenarioSpec`; the :mod:`engine <repro.scenarios.engine>` runs it.

Supported event kinds (matching the fault model of :mod:`repro.net.failures`):

``crash``
    Crash-stop every process in ``targets``.
``leave``
    The processes in ``targets`` voluntarily depart ``group``.
``partition``
    Install a partition with the listed ``components`` (unlisted processes
    form one implicit extra component).
``heal``
    Remove all partitions.
``isolate``
    Partition each process in ``targets`` away from everyone else.
``drop``
    Drop messages from ``src`` processes to ``dst`` processes for
    ``duration`` time units (one-directional lossy window).
``form_group``
    Dynamic group formation mid-run (§5.3): the first process in
    ``targets`` initiates formation of the new group ``group`` with the
    listed ``targets`` as its intended members (Newtop has no join -- a
    "join" is the formation of a fresh group).  The engine drives the
    scenario workload through the group once it is formed, and the new
    group participates in every correctness check like a static one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import OrderingMode


class ScenarioConfigError(ValueError):
    """Raised when a scenario config dict is malformed."""


#: Event kinds accepted by the engine.
EVENT_KINDS = ("crash", "leave", "partition", "heal", "isolate", "drop", "form_group")

#: Delay after a ``form_group`` event before the engine starts driving the
#: scenario workload through the new group (covers the §5.3 voting rounds
#: and the start-number agreement under the default latency model).
FORMATION_WORKLOAD_GRACE = 4.0


@dataclass(frozen=True)
class GroupSpec:
    """One group in the scenario: id, members and ordering mode."""

    group_id: str
    members: Tuple[str, ...]
    mode: OrderingMode = OrderingMode.SYMMETRIC


@dataclass(frozen=True)
class WorkloadSpec:
    """The background application traffic driven through every group.

    Two shapes are supported.  The default is the *closed-loop* rounds
    that every scenario has always used: ``messages_per_sender`` rounds of
    sends, ``gap`` apart.  Setting ``profile`` switches the group to
    *open-loop* traffic: the engine attaches one
    :class:`~repro.workloads.client.OpenLoopClient` per group, running the
    named :mod:`repro.workloads` profile (``"poisson"``, ``"bursty"``,
    ``"zipf"``, ...) at ``rate`` multicast attempts per time unit for
    ``duration`` time units -- arrivals are simulator events, nothing is
    pre-materialized, and offered/admitted/delivered accounting lands in
    :attr:`~repro.scenarios.engine.ScenarioResult.workload`.
    """

    #: Application messages each selected sender multicasts per group.
    messages_per_sender: int = 2
    #: How many members of each group act as senders (the first k, in
    #: membership order); 0 means every member sends.
    senders_per_group: int = 2
    #: Simulated-time gap between successive send rounds.
    gap: float = 2.0
    #: Time of the first send round.
    start: float = 1.0
    #: Open-loop mode: a :mod:`repro.workloads` profile name (``None``
    #: keeps the closed-loop rounds above).
    profile: Optional[str] = None
    #: Open-loop offered load per group (multicast attempts / time unit).
    rate: float = 1.0
    #: Open-loop client window (simulated time units).
    duration: float = 20.0
    #: Open-loop payload size in bytes.
    payload_bytes: int = 64
    #: Extra profile options (``burst_size``, ``exponent``, ...).
    profile_options: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed fault/membership action."""

    time: float
    kind: str
    targets: Tuple[str, ...] = ()
    group: Optional[str] = None
    components: Tuple[Tuple[str, ...], ...] = ()
    src: Tuple[str, ...] = ()
    dst: Tuple[str, ...] = ()
    duration: float = 0.0


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully parsed scenario, ready for the engine."""

    name: str
    processes: Tuple[str, ...]
    groups: Tuple[GroupSpec, ...]
    workload: WorkloadSpec
    events: Tuple[ScenarioEvent, ...]
    seed: int = 0
    #: Extra settling time after the last send/event before checking.
    drain: float = 40.0
    #: Overrides applied to :class:`~repro.core.config.NewtopConfig`.
    protocol: Mapping[str, object] = field(default_factory=dict)
    #: Network delivery batching window (0 batches exact instants only).
    batch_window: float = 0.0

    def horizon(self) -> float:
        """Simulated time at which the scenario is considered settled."""
        if self.workload.profile is not None:
            workload_span = self.workload.duration
        else:
            workload_span = (
                max(0, self.workload.messages_per_sender - 1) * self.workload.gap
            )
        last_send = self.workload.start + workload_span
        last_event = 0.0
        for event in self.events:
            end = event.time + event.duration
            if event.kind == "form_group":
                # The engine drives the workload through formed groups
                # starting FORMATION_WORKLOAD_GRACE after the event.
                end = event.time + FORMATION_WORKLOAD_GRACE + workload_span
            last_event = max(last_event, end)
        return max(last_send, last_event) + self.drain


def default_process_names(count: int) -> Tuple[str, ...]:
    """Deterministic process names ``P001..Pnnn`` for generated scenarios."""
    width = max(3, len(str(count)))
    return tuple(f"P{index:0{width}d}" for index in range(1, count + 1))


def _parse_mode(raw: object) -> OrderingMode:
    if isinstance(raw, OrderingMode):
        return raw
    if isinstance(raw, str):
        try:
            return OrderingMode(raw)
        except ValueError:
            raise ScenarioConfigError(
                f"unknown ordering mode {raw!r}; expected one of "
                f"{[mode.value for mode in OrderingMode]}"
            ) from None
    raise ScenarioConfigError(f"unparseable ordering mode: {raw!r}")


def _parse_event(
    raw: Mapping,
    processes: Sequence[str],
    groups: Dict[str, GroupSpec],
    formed: Mapping[str, Tuple[str, ...]],
) -> ScenarioEvent:
    kind = raw.get("kind")
    if kind not in EVENT_KINDS:
        raise ScenarioConfigError(f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}")
    if "time" not in raw:
        raise ScenarioConfigError(f"event {raw!r} is missing its 'time'")
    time = float(raw["time"])
    known = set(processes)

    def checked(names: Sequence[str], what: str) -> Tuple[str, ...]:
        names = tuple(names)
        unknown = [name for name in names if name not in known]
        if unknown:
            raise ScenarioConfigError(f"{what} of {kind!r} event names unknown processes {unknown}")
        return names

    targets = checked(raw.get("targets", ()), "targets")
    group = raw.get("group")
    components = tuple(
        checked(component, "components") for component in raw.get("components", ())
    )
    src = checked(raw.get("src", ()), "src")
    dst = checked(raw.get("dst", ()), "dst")

    if kind in ("crash", "isolate") and not targets:
        raise ScenarioConfigError(f"{kind!r} event at t={time} needs non-empty 'targets'")
    if kind == "leave":
        if not targets or group is None:
            raise ScenarioConfigError(f"'leave' event at t={time} needs 'targets' and 'group'")
        if group in groups:
            membership = groups[group].members
        elif group in formed:
            membership = formed[group]
        else:
            raise ScenarioConfigError(f"'leave' event at t={time} names unknown group {group!r}")
        for target in targets:
            if target not in membership:
                raise ScenarioConfigError(
                    f"'leave' event at t={time}: {target!r} is not a member of {group!r}"
                )
    if kind == "form_group":
        if group is None or len(targets) < 2:
            raise ScenarioConfigError(
                f"'form_group' event at t={time} needs 'group' and at least two 'targets'"
            )
    if kind == "partition" and not components:
        raise ScenarioConfigError(f"'partition' event at t={time} needs 'components'")
    if kind == "drop" and (not src or not dst):
        raise ScenarioConfigError(f"'drop' event at t={time} needs 'src' and 'dst'")

    return ScenarioEvent(
        time=time,
        kind=kind,
        targets=targets,
        group=group,
        components=components,
        src=src,
        dst=dst,
        duration=float(raw.get("duration", 0.0)),
    )


def from_config(config: Mapping) -> ScenarioSpec:
    """Parse and validate a scenario config dict into a :class:`ScenarioSpec`."""
    if "groups" not in config:
        raise ScenarioConfigError("scenario config needs a 'groups' list")

    raw_processes = config.get("processes")
    if raw_processes is None:
        # Infer the process set from the group memberships.
        inferred: List[str] = []
        for raw_group in config["groups"]:
            for member in raw_group.get("members", ()):
                if member not in inferred:
                    inferred.append(member)
        processes = tuple(sorted(inferred))
    elif isinstance(raw_processes, int):
        processes = default_process_names(raw_processes)
    else:
        processes = tuple(raw_processes)
    if len(processes) < 2:
        raise ScenarioConfigError("a scenario needs at least two processes")
    if len(set(processes)) != len(processes):
        raise ScenarioConfigError("duplicate process names in 'processes'")

    known = set(processes)
    groups: Dict[str, GroupSpec] = {}
    for raw_group in config["groups"]:
        group_id = raw_group.get("id")
        if not group_id:
            raise ScenarioConfigError(f"group entry {raw_group!r} is missing its 'id'")
        if group_id in groups:
            raise ScenarioConfigError(f"duplicate group id {group_id!r}")
        members = tuple(raw_group.get("members", ()))
        if len(members) < 2:
            raise ScenarioConfigError(f"group {group_id!r} needs at least two members")
        unknown = [member for member in members if member not in known]
        if unknown:
            raise ScenarioConfigError(f"group {group_id!r} names unknown processes {unknown}")
        groups[group_id] = GroupSpec(
            group_id=group_id,
            members=members,
            mode=_parse_mode(raw_group.get("mode", OrderingMode.SYMMETRIC)),
        )

    workload = WorkloadSpec(**config.get("workload", {}))
    if workload.messages_per_sender < 0 or workload.gap <= 0:
        raise ScenarioConfigError("workload needs messages_per_sender >= 0 and gap > 0")
    if workload.profile is not None:
        from repro.workloads import available_profiles

        if workload.profile not in available_profiles():
            raise ScenarioConfigError(
                f"unknown workload profile {workload.profile!r}; expected one "
                f"of {available_profiles()}"
            )
        if workload.rate <= 0 or workload.duration <= 0:
            raise ScenarioConfigError("open-loop workload needs rate > 0 and duration > 0")

    # Pre-scan dynamically formed groups so later events (e.g. 'leave') can
    # reference them and their ids are checked for clashes up front.
    formed: Dict[str, Tuple[str, ...]] = {}
    for raw_event in config.get("events", ()):
        if raw_event.get("kind") != "form_group":
            continue
        formed_id = raw_event.get("group")
        if not formed_id:
            raise ScenarioConfigError("'form_group' event is missing its 'group'")
        if formed_id in groups or formed_id in formed:
            raise ScenarioConfigError(
                f"'form_group' event reuses group id {formed_id!r}"
            )
        formed[formed_id] = tuple(raw_event.get("targets", ()))

    events = tuple(
        sorted(
            (
                _parse_event(raw, processes, groups, formed)
                for raw in config.get("events", ())
            ),
            key=lambda event: event.time,
        )
    )

    return ScenarioSpec(
        name=str(config.get("name", "scenario")),
        processes=processes,
        groups=tuple(groups.values()),
        workload=workload,
        events=events,
        seed=int(config.get("seed", 0)),
        drain=float(config.get("drain", 40.0)),
        protocol=dict(config.get("protocol", {})),
        batch_window=float(config.get("batch_window", 0.0)),
    )
