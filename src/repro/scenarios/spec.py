"""Declarative scenario specifications.

A scenario is described by a plain config dict -- JSON-shaped, so specs can
be generated programmatically (see :mod:`repro.scenarios.library` and the
:mod:`fuzzer <repro.scenarios.fuzz>`), stored in files, or written inline
in tests::

    {
        "schema": 1,
        "name": "two-group churn",
        "seed": 7,
        "processes": 8,                     # or an explicit list of names
        "groups": [
            {"id": "g0", "members": ["P001", ..., "P004"]},
            {"id": "g1", "members": ["P003", ..., "P006"], "mode": "asymmetric"},
        ],
        "workload": {"messages_per_sender": 3, "senders_per_group": 2, "gap": 2.0},
        "load_phases": [
            {"profile": "bursty", "rate": 4.0, "start": 20.0, "duration": 6.0},
        ],
        "events": [
            {"time": 8.0, "kind": "crash", "targets": ["P002"]},
            {"time": 10.0, "kind": "partition", "components": [["P001", "P003"]]},
            {"time": 20.0, "kind": "heal"},
        ],
        "drain": 40.0,
        "protocol": {"omega": 1.5, "suspicion_timeout": 6.0},
        "batch_window": 0.25,
        "latency": {"model": "lognormal", "median": 0.8, "sigma": 0.3},
        "link_faults": {"seed": 3, "drop": 0.01, "reorder": 0.05},
    }

:func:`from_config` parses and validates such a dict into a
:class:`ScenarioSpec`; the :mod:`engine <repro.scenarios.engine>` runs it.
:func:`to_config` is the exact inverse -- ``from_config(to_config(spec)) ==
spec`` -- which is what lets the fuzzer write a minimized failing spec to a
JSON artifact and replay it byte-identically later.

Validation is *eager and strict*: unknown keys anywhere, negative times,
events addressing unknown processes or groups, and overlapping load-phase
windows all raise one clear :class:`InvalidScenarioSpec` up front instead
of a deep mid-run failure.  (The fuzzer's shrinker leans on this: every
mutation candidate is re-validated before it is ever run.)

Supported event kinds (matching the fault model of :mod:`repro.net.failures`):

``crash``
    Crash-stop every process in ``targets``.
``leave``
    The processes in ``targets`` voluntarily depart ``group``.
``partition``
    Install a partition with the listed ``components`` (unlisted processes
    form one implicit extra component).
``heal``
    Remove all partitions.
``isolate``
    Partition each process in ``targets`` away from everyone else.
``drop``
    Drop messages from ``src`` processes to ``dst`` processes for
    ``duration`` time units (one-directional lossy window).
``form_group``
    Dynamic group formation mid-run (§5.3): the first process in
    ``targets`` initiates formation of the new group ``group`` with the
    listed ``targets`` as its intended members (Newtop has no join -- a
    "join" is the formation of a fresh group).  The engine drives the
    scenario workload through the group once it is formed, and the new
    group participates in every correctness check like a static one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.config import OrderingMode
from repro.net.faults import LinkFaultConfigError, LinkFaultModel


class InvalidScenarioSpec(ValueError):
    """Raised when a scenario config dict is malformed: unknown keys,
    negative times, references to unknown processes or groups, overlapping
    load-phase windows, or an unsupported schema version."""


#: Historical name, kept as an alias so existing callers and tests work.
ScenarioConfigError = InvalidScenarioSpec

#: Version stamp of the config-dict schema.  Bump when the shape changes
#: incompatibly; :func:`from_config` rejects versions it does not know so a
#: minimized-repro artifact is never silently misread.
SCENARIO_SCHEMA_VERSION = 1

#: Event kinds accepted by the engine.
EVENT_KINDS = ("crash", "leave", "partition", "heal", "isolate", "drop", "form_group")

#: Delay after a ``form_group`` event before the engine starts driving the
#: scenario workload through the new group (covers the §5.3 voting rounds
#: and the start-number agreement under the default latency model).
FORMATION_WORKLOAD_GRACE = 4.0

#: Keys accepted at each level of the config dict.  Anything else is a
#: typo or a version mismatch; both deserve a loud, early error.
_SPEC_KEYS = frozenset(
    {
        "schema",
        "name",
        "seed",
        "processes",
        "groups",
        "workload",
        "load_phases",
        "events",
        "drain",
        "protocol",
        "batch_window",
        "latency",
        "link_faults",
    }
)
_GROUP_KEYS = frozenset({"id", "members", "mode"})
_WORKLOAD_KEYS = frozenset(
    {
        "messages_per_sender",
        "senders_per_group",
        "gap",
        "start",
        "profile",
        "rate",
        "duration",
        "payload_bytes",
        "profile_options",
    }
)
_EVENT_KEYS = frozenset(
    {"time", "kind", "targets", "group", "components", "src", "dst", "duration"}
)


@dataclass(frozen=True)
class GroupSpec:
    """One group in the scenario: id, members and ordering mode."""

    group_id: str
    members: Tuple[str, ...]
    mode: OrderingMode = OrderingMode.SYMMETRIC


@dataclass(frozen=True)
class WorkloadSpec:
    """The background application traffic driven through every group.

    Two shapes are supported.  The default is the *closed-loop* rounds
    that every scenario has always used: ``messages_per_sender`` rounds of
    sends, ``gap`` apart.  Setting ``profile`` switches the group to
    *open-loop* traffic: the engine attaches one
    :class:`~repro.workloads.client.OpenLoopClient` per group, running the
    named :mod:`repro.workloads` profile (``"poisson"``, ``"bursty"``,
    ``"zipf"``, ...) at ``rate`` multicast attempts per time unit for
    ``duration`` time units -- arrivals are simulator events, nothing is
    pre-materialized, and offered/admitted/delivered accounting lands in
    :attr:`~repro.scenarios.engine.ScenarioResult.workload`.

    A spec may add extra *load phases* (``load_phases``): further
    :class:`WorkloadSpec` entries, each driven through every group over its
    own non-overlapping time window -- how a scenario (or the fuzzer)
    expresses an open-loop burst landing mid-churn.
    """

    #: Application messages each selected sender multicasts per group.
    messages_per_sender: int = 2
    #: How many members of each group act as senders (the first k, in
    #: membership order); 0 means every member sends.
    senders_per_group: int = 2
    #: Simulated-time gap between successive send rounds.
    gap: float = 2.0
    #: Time of the first send round.
    start: float = 1.0
    #: Open-loop mode: a :mod:`repro.workloads` profile name (``None``
    #: keeps the closed-loop rounds above).
    profile: Optional[str] = None
    #: Open-loop offered load per group (multicast attempts / time unit).
    rate: float = 1.0
    #: Open-loop client window (simulated time units).
    duration: float = 20.0
    #: Open-loop payload size in bytes.
    payload_bytes: int = 64
    #: Extra profile options (``burst_size``, ``exponent``, ...).
    profile_options: Mapping[str, object] = field(default_factory=dict)

    def window(self) -> Tuple[float, float]:
        """The ``[start, end]`` span this workload occupies."""
        if self.profile is not None:
            return (self.start, self.start + self.duration)
        return (self.start, self.start + max(0, self.messages_per_sender - 1) * self.gap)


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed fault/membership action."""

    time: float
    kind: str
    targets: Tuple[str, ...] = ()
    group: Optional[str] = None
    components: Tuple[Tuple[str, ...], ...] = ()
    src: Tuple[str, ...] = ()
    dst: Tuple[str, ...] = ()
    duration: float = 0.0


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully parsed scenario, ready for the engine."""

    name: str
    processes: Tuple[str, ...]
    groups: Tuple[GroupSpec, ...]
    workload: WorkloadSpec
    events: Tuple[ScenarioEvent, ...]
    seed: int = 0
    #: Extra settling time after the last send/event before checking.
    drain: float = 40.0
    #: Overrides applied to :class:`~repro.core.config.NewtopConfig`.
    protocol: Mapping[str, object] = field(default_factory=dict)
    #: Network delivery batching window (0 batches exact instants only).
    batch_window: float = 0.0
    #: Extra workload phases driven through every group over their own
    #: (validated non-overlapping) time windows.
    load_phases: Tuple[WorkloadSpec, ...] = ()
    #: Latency-model selection, JSON-shaped (``{"model": name, **options}``)
    #: like :attr:`~repro.experiments.SweepSpec.latency_model`; ``None``
    #: keeps the engine's default.
    latency: Optional[Mapping[str, object]] = None
    #: Link-fault model config (see :class:`~repro.net.faults.LinkFaultModel`),
    #: stored in its canonical JSON shape; ``None`` disables link faults.
    link_faults: Optional[Mapping[str, object]] = None

    def phases(self) -> Tuple[WorkloadSpec, ...]:
        """The primary workload plus every extra load phase."""
        return (self.workload,) + self.load_phases

    def horizon(self) -> float:
        """Simulated time at which the scenario is considered settled."""
        last_send = 0.0
        for phase in self.phases():
            last_send = max(last_send, phase.window()[1])
        primary_span = self.workload.window()[1] - self.workload.window()[0]
        last_event = 0.0
        for event in self.events:
            end = event.time + event.duration
            if event.kind == "form_group":
                # The engine drives the primary workload through formed
                # groups starting FORMATION_WORKLOAD_GRACE after the event.
                end = event.time + FORMATION_WORKLOAD_GRACE + primary_span
            last_event = max(last_event, end)
        return max(last_send, last_event) + self.drain


def default_process_names(count: int) -> Tuple[str, ...]:
    """Deterministic process names ``P001..Pnnn`` for generated scenarios."""
    width = max(3, len(str(count)))
    return tuple(f"P{index:0{width}d}" for index in range(1, count + 1))


# ---------------------------------------------------------------------------
# Parsing helpers
# ---------------------------------------------------------------------------
def _check_keys(raw: Mapping, allowed: frozenset, what: str) -> None:
    unknown = sorted(set(raw) - allowed)
    if unknown:
        raise InvalidScenarioSpec(
            f"{what} has unknown keys {unknown}; expected a subset of {sorted(allowed)}"
        )


def _number(raw: object, what: str, minimum: Optional[float] = None) -> float:
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise InvalidScenarioSpec(f"{what} must be a number (got {raw!r})")
    value = float(raw)
    if minimum is not None and value < minimum:
        raise InvalidScenarioSpec(f"{what} must be >= {minimum} (got {value})")
    return value


def _parse_mode(raw: object) -> OrderingMode:
    if isinstance(raw, OrderingMode):
        return raw
    if isinstance(raw, str):
        try:
            return OrderingMode(raw)
        except ValueError:
            raise InvalidScenarioSpec(
                f"unknown ordering mode {raw!r}; expected one of "
                f"{[mode.value for mode in OrderingMode]}"
            ) from None
    raise InvalidScenarioSpec(f"unparseable ordering mode: {raw!r}")


def _parse_workload(raw: Mapping, what: str) -> WorkloadSpec:
    if not isinstance(raw, Mapping):
        raise InvalidScenarioSpec(f"{what} must be a mapping")
    _check_keys(raw, _WORKLOAD_KEYS, what)
    workload = WorkloadSpec(
        **{**raw, "profile_options": dict(raw.get("profile_options", {}))}
    )
    if workload.messages_per_sender < 0:
        raise InvalidScenarioSpec(f"{what} needs messages_per_sender >= 0")
    _number(workload.gap, f"{what}.gap")
    if workload.gap <= 0:
        raise InvalidScenarioSpec(f"{what} needs gap > 0")
    _number(workload.start, f"{what}.start", minimum=0.0)
    if workload.profile is not None:
        from repro.workloads import available_profiles

        if workload.profile not in available_profiles():
            raise InvalidScenarioSpec(
                f"{what} names unknown profile {workload.profile!r}; expected "
                f"one of {available_profiles()}"
            )
        if workload.rate <= 0 or workload.duration <= 0:
            raise InvalidScenarioSpec(f"open-loop {what} needs rate > 0 and duration > 0")
    return workload


def _parse_event(
    raw: Mapping,
    processes: Sequence[str],
    groups: Dict[str, GroupSpec],
    formed: Mapping[str, Tuple[str, ...]],
) -> ScenarioEvent:
    if not isinstance(raw, Mapping):
        raise InvalidScenarioSpec(f"event entry {raw!r} must be a mapping")
    _check_keys(raw, _EVENT_KEYS, f"event {dict(raw)!r}")
    kind = raw.get("kind")
    if kind not in EVENT_KINDS:
        raise InvalidScenarioSpec(f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}")
    if "time" not in raw:
        raise InvalidScenarioSpec(f"event {raw!r} is missing its 'time'")
    time = _number(raw["time"], f"{kind!r} event time", minimum=0.0)
    known = set(processes)

    def checked(names: Sequence[str], what: str) -> Tuple[str, ...]:
        names = tuple(names)
        unknown = [name for name in names if name not in known]
        if unknown:
            raise InvalidScenarioSpec(f"{what} of {kind!r} event names unknown processes {unknown}")
        return names

    targets = checked(raw.get("targets", ()), "targets")
    group = raw.get("group")
    components = tuple(
        checked(component, "components") for component in raw.get("components", ())
    )
    src = checked(raw.get("src", ()), "src")
    dst = checked(raw.get("dst", ()), "dst")
    duration = _number(
        raw.get("duration", 0.0), f"{kind!r} event duration", minimum=0.0
    )

    if kind in ("crash", "isolate") and not targets:
        raise InvalidScenarioSpec(f"{kind!r} event at t={time} needs non-empty 'targets'")
    if kind == "leave":
        if not targets or group is None:
            raise InvalidScenarioSpec(f"'leave' event at t={time} needs 'targets' and 'group'")
        if group in groups:
            membership = groups[group].members
        elif group in formed:
            membership = formed[group]
        else:
            raise InvalidScenarioSpec(f"'leave' event at t={time} names unknown group {group!r}")
        for target in targets:
            if target not in membership:
                raise InvalidScenarioSpec(
                    f"'leave' event at t={time}: {target!r} is not a member of {group!r}"
                )
    if kind == "form_group":
        if group is None or len(targets) < 2:
            raise InvalidScenarioSpec(
                f"'form_group' event at t={time} needs 'group' and at least two 'targets'"
            )
    if kind == "partition" and not components:
        raise InvalidScenarioSpec(f"'partition' event at t={time} needs 'components'")
    if kind == "drop" and (not src or not dst):
        raise InvalidScenarioSpec(f"'drop' event at t={time} needs 'src' and 'dst'")

    return ScenarioEvent(
        time=time,
        kind=kind,
        targets=targets,
        group=group,
        components=components,
        src=src,
        dst=dst,
        duration=duration,
    )


def _parse_latency(raw: object) -> Optional[Dict[str, object]]:
    if raw is None:
        return None
    if not isinstance(raw, Mapping) or "model" not in raw:
        raise InvalidScenarioSpec(
            "latency must be a mapping with a 'model' name, e.g. "
            '{"model": "lognormal", "median": 0.8}'
        )
    from repro.net.latency import get_latency_model

    options = {key: value for key, value in raw.items() if key != "model"}
    try:
        get_latency_model(raw["model"], **options)
    except (ValueError, TypeError) as error:
        raise InvalidScenarioSpec(f"invalid latency config: {error}") from None
    return {"model": raw["model"], **options}


def _parse_link_faults(raw: object) -> Optional[Dict[str, object]]:
    if raw is None:
        return None
    try:
        return LinkFaultModel.from_config(raw).to_config()
    except LinkFaultConfigError as error:
        raise InvalidScenarioSpec(f"invalid link_faults config: {error}") from None


def _validate_phase_windows(phases: Sequence[WorkloadSpec]) -> None:
    """Load-phase windows must not overlap (touching endpoints are fine):
    two open-loop clients driving the same groups at once would double the
    offered load a scenario claims, silently."""
    windows = sorted(
        (phase.window() + (index,) for index, phase in enumerate(phases)),
        key=lambda entry: (entry[0], entry[1]),
    )
    for (start_a, end_a, index_a), (start_b, end_b, index_b) in zip(windows, windows[1:]):
        if start_b < end_a:
            raise InvalidScenarioSpec(
                f"load-phase windows overlap: phase {index_a} spans "
                f"[{start_a}, {end_a}] and phase {index_b} spans "
                f"[{start_b}, {end_b}]"
            )


# ---------------------------------------------------------------------------
# Config dict -> spec
# ---------------------------------------------------------------------------
def from_config(config: Mapping) -> ScenarioSpec:
    """Parse and validate a scenario config dict into a :class:`ScenarioSpec`."""
    if not isinstance(config, Mapping):
        raise InvalidScenarioSpec("scenario config must be a mapping")
    _check_keys(config, _SPEC_KEYS, "scenario config")
    schema = config.get("schema", SCENARIO_SCHEMA_VERSION)
    if schema != SCENARIO_SCHEMA_VERSION:
        raise InvalidScenarioSpec(
            f"unsupported scenario schema {schema!r}; this build reads "
            f"version {SCENARIO_SCHEMA_VERSION}"
        )
    if "groups" not in config:
        raise InvalidScenarioSpec("scenario config needs a 'groups' list")

    raw_processes = config.get("processes")
    if raw_processes is None:
        # Infer the process set from the group memberships.
        inferred: List[str] = []
        for raw_group in config["groups"]:
            for member in raw_group.get("members", ()):
                if member not in inferred:
                    inferred.append(member)
        processes = tuple(sorted(inferred))
    elif isinstance(raw_processes, int):
        processes = default_process_names(raw_processes)
    else:
        processes = tuple(raw_processes)
    if len(processes) < 2:
        raise InvalidScenarioSpec("a scenario needs at least two processes")
    if len(set(processes)) != len(processes):
        raise InvalidScenarioSpec("duplicate process names in 'processes'")

    known = set(processes)
    groups: Dict[str, GroupSpec] = {}
    for raw_group in config["groups"]:
        if not isinstance(raw_group, Mapping):
            raise InvalidScenarioSpec(f"group entry {raw_group!r} must be a mapping")
        _check_keys(raw_group, _GROUP_KEYS, f"group entry {dict(raw_group)!r}")
        group_id = raw_group.get("id")
        if not group_id:
            raise InvalidScenarioSpec(f"group entry {raw_group!r} is missing its 'id'")
        if group_id in groups:
            raise InvalidScenarioSpec(f"duplicate group id {group_id!r}")
        members = tuple(raw_group.get("members", ()))
        if len(members) < 2:
            raise InvalidScenarioSpec(f"group {group_id!r} needs at least two members")
        unknown = [member for member in members if member not in known]
        if unknown:
            raise InvalidScenarioSpec(f"group {group_id!r} names unknown processes {unknown}")
        groups[group_id] = GroupSpec(
            group_id=group_id,
            members=members,
            mode=_parse_mode(raw_group.get("mode", OrderingMode.SYMMETRIC)),
        )

    workload = _parse_workload(config.get("workload", {}), "workload")
    load_phases = tuple(
        _parse_workload(raw_phase, f"load_phases[{index}]")
        for index, raw_phase in enumerate(config.get("load_phases", ()))
    )
    _validate_phase_windows((workload,) + load_phases)

    # Pre-scan dynamically formed groups so later events (e.g. 'leave') can
    # reference them and their ids are checked for clashes up front.
    formed: Dict[str, Tuple[str, ...]] = {}
    for raw_event in config.get("events", ()):
        if not isinstance(raw_event, Mapping):
            raise InvalidScenarioSpec(f"event entry {raw_event!r} must be a mapping")
        if raw_event.get("kind") != "form_group":
            continue
        formed_id = raw_event.get("group")
        if not formed_id:
            raise InvalidScenarioSpec("'form_group' event is missing its 'group'")
        if formed_id in groups or formed_id in formed:
            raise InvalidScenarioSpec(
                f"'form_group' event reuses group id {formed_id!r}"
            )
        formed[formed_id] = tuple(raw_event.get("targets", ()))

    events = tuple(
        sorted(
            (
                _parse_event(raw, processes, groups, formed)
                for raw in config.get("events", ())
            ),
            key=lambda event: event.time,
        )
    )

    return ScenarioSpec(
        name=str(config.get("name", "scenario")),
        processes=processes,
        groups=tuple(groups.values()),
        workload=workload,
        events=events,
        seed=int(config.get("seed", 0)),
        drain=_number(config.get("drain", 40.0), "drain", minimum=0.0),
        protocol=dict(config.get("protocol", {})),
        batch_window=_number(config.get("batch_window", 0.0), "batch_window", minimum=0.0),
        load_phases=load_phases,
        latency=_parse_latency(config.get("latency")),
        link_faults=_parse_link_faults(config.get("link_faults")),
    )


# ---------------------------------------------------------------------------
# Spec -> config dict (the inverse, for artifacts)
# ---------------------------------------------------------------------------
_WORKLOAD_DEFAULTS = WorkloadSpec()


def _workload_to_config(workload: WorkloadSpec) -> Dict[str, object]:
    config: Dict[str, object] = {}
    for key in sorted(_WORKLOAD_KEYS):
        value = getattr(workload, key)
        if key == "profile_options":
            value = dict(value)
        if value != getattr(_WORKLOAD_DEFAULTS, key):
            config[key] = value
    return config


def _event_to_config(event: ScenarioEvent) -> Dict[str, object]:
    config: Dict[str, object] = {"time": event.time, "kind": event.kind}
    if event.targets:
        config["targets"] = list(event.targets)
    if event.group is not None:
        config["group"] = event.group
    if event.components:
        config["components"] = [list(side) for side in event.components]
    if event.src:
        config["src"] = list(event.src)
    if event.dst:
        config["dst"] = list(event.dst)
    if event.duration:
        config["duration"] = event.duration
    return config


def to_config(spec: ScenarioSpec) -> Dict[str, object]:
    """The JSON-shaped config dict of ``spec`` -- the exact inverse of
    :func:`from_config`, carrying the schema version stamp.

    Defaults are elided, so the dict is as small as the spec is simple --
    exactly what a minimized-repro artifact should look like.
    """
    config: Dict[str, object] = {
        "schema": SCENARIO_SCHEMA_VERSION,
        "name": spec.name,
        "seed": spec.seed,
        "processes": list(spec.processes),
        "groups": [
            {
                "id": group.group_id,
                "members": list(group.members),
                "mode": group.mode.value,
            }
            for group in spec.groups
        ],
        "workload": _workload_to_config(spec.workload),
        "events": [_event_to_config(event) for event in spec.events],
        "drain": spec.drain,
    }
    if spec.load_phases:
        config["load_phases"] = [
            _workload_to_config(phase) for phase in spec.load_phases
        ]
    if spec.protocol:
        config["protocol"] = dict(spec.protocol)
    if spec.batch_window:
        config["batch_window"] = spec.batch_window
    if spec.latency is not None:
        config["latency"] = dict(spec.latency)
    if spec.link_faults is not None:
        config["link_faults"] = dict(spec.link_faults)
    return config
