"""Rolling cross-shard reporting for sharded scenario batches.

A sharded run (:func:`repro.scenarios.run_scenarios` with ``parallel=N``)
streams each :class:`~repro.scenarios.engine.ScenarioResult` back as its
worker finishes.  A :class:`RollingReport` is the consumer for that stream:
pass one as the ``progress`` callback and it maintains the batch-wide
aggregates *while the batch runs* -- shards done, pass/fail tallies,
event/delivery/message totals, and one merged
:class:`~repro.stats.LatencyReservoir` -- instead of recomputing everything
from the full result list afterwards.

The latency merge is the point: every result carries its shard's actual
reservoir (:attr:`ScenarioResult.latency_reservoir`), so the cross-shard
percentiles come from merging real sample pools, not from reconstructing
sketches out of count/mean/min/max moments.  When every shard pool is
exact (under the reservoir capacity), the merged percentiles are exact
too; :attr:`RollingReport.latency` exposes the merged reservoir for
callers that want to keep folding (e.g. across *batches*).

Serial runs use the same hook -- ``run_scenarios`` invokes ``progress``
after each scenario either way -- so one report object covers both
execution modes::

    report = RollingReport(expected=len(configs), printer=print)
    results = run_scenarios(configs, parallel=8, analysis="online",
                            progress=report)
    assert report.all_passed
    print(report.summary()["latency"])     # exact cross-shard percentiles
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.scenarios.engine import ScenarioResult
from repro.stats import LatencyReservoir

#: How many violation strings the report retains across the whole batch.
VIOLATION_LIMIT = 10


class RollingReport:
    """Streaming aggregate over a batch of scenario results.

    Parameters
    ----------
    expected:
        Total number of scenarios in the batch (for ``k/N`` progress
        lines); ``None`` if unknown.
    printer:
        Optional line consumer (e.g. ``print``) called with one progress
        line per completed shard.  Parallel batches complete out of input
        order; the line names the scenario, so the stream stays readable.
    capacity:
        Sample capacity of the merged latency reservoir.
    """

    def __init__(
        self,
        expected: Optional[int] = None,
        printer: Optional[Callable[[str], None]] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self.expected = expected
        self.printer = printer
        self.completed = 0
        self.passed = 0
        self.failed = 0
        self.violations: List[str] = []
        self.events_processed = 0
        self.deliveries = 0
        self.messages_sent = 0
        self.trace_events = 0
        self.trace_events_stored = 0
        self.latency = (
            LatencyReservoir(capacity=capacity)
            if capacity is not None
            else LatencyReservoir()
        )
        #: Shards that carried no latency reservoir (offline closed-loop
        #: runs) -- their deliveries are absent from :attr:`latency`.
        self.shards_without_latency = 0

    # ------------------------------------------------------------------
    # The progress hook
    # ------------------------------------------------------------------
    def add(self, result: ScenarioResult) -> None:
        """Fold one completed scenario in (the ``progress`` callback)."""
        self.completed += 1
        if result.passed:
            self.passed += 1
        else:
            self.failed += 1
            room = VIOLATION_LIMIT - len(self.violations)
            if room > 0:
                self.violations.extend(
                    f"{result.name}: {violation}"
                    for violation in result.checks.violations[:room]
                )
        self.events_processed += result.events_processed
        self.deliveries += result.deliveries
        self.messages_sent += result.messages_sent
        self.trace_events += result.trace_events
        self.trace_events_stored += result.trace_events_stored
        if result.latency_reservoir is not None:
            self.latency.merge(result.latency_reservoir)
        else:
            self.shards_without_latency += 1
        if self.printer is not None:
            self.printer(self.line(result))

    #: ``run_scenarios(progress=report)`` calls the report directly.
    __call__ = add

    def line(self, result: ScenarioResult) -> str:
        """One progress line for a just-completed shard."""
        total = f"/{self.expected}" if self.expected is not None else ""
        verdict = "ok" if result.passed else "FAIL"
        return (
            f"[shard {self.completed:4d}{total}] {result.name}: {verdict} "
            f"events={result.events_processed} deliveries={result.deliveries} "
            f"({result.analysis}, {result.trace_events_stored} stored)"
        )

    # ------------------------------------------------------------------
    # Batch-wide views
    # ------------------------------------------------------------------
    @property
    def all_passed(self) -> bool:
        """Whether every folded-in scenario passed (vacuously true empty)."""
        return self.failed == 0

    def summary(self) -> Dict[str, object]:
        """JSON-shaped batch aggregate (the shape benchmark emitters store)."""
        return {
            "shards": self.completed,
            "passed": self.all_passed,
            "failures": self.failed,
            "violations": list(self.violations),
            "events_processed": self.events_processed,
            "deliveries": self.deliveries,
            "messages_sent": self.messages_sent,
            "trace_events": self.trace_events,
            "trace_events_stored": self.trace_events_stored,
            "latency": self.latency.summary(),
            "latency_exact": self.latency.is_exact,
            "shards_without_latency": self.shards_without_latency,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = f"/{self.expected}" if self.expected is not None else ""
        return (
            f"RollingReport({self.completed}{total} shards, "
            f"failed={self.failed}, latency_count={self.latency.count})"
        )
