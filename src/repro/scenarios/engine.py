"""The scenario engine: run a declarative spec, verify the guarantees.

The engine turns a :class:`~repro.scenarios.spec.ScenarioSpec` into a
running :class:`~repro.core.cluster.NewtopCluster`: it installs the groups,
drives the background workload, applies the timed fault/membership events
(including dynamic ``form_group`` formations), samples the simulator's
health (heap occupancy) while running, and finally evaluates the paper's
correctness predicates.

Two analysis modes select how the predicates are evaluated:

``analysis="offline"`` (default)
    The full trace is materialized and the post-hoc checkers of
    :mod:`repro.analysis.checkers` run at the end -- exact but quadratic,
    right for paper-sized runs and debugging.
``analysis="online"``
    The recorder streams into an
    :class:`~repro.analysis.online.OnlineCheckSuite` and a rolling
    :class:`~repro.net.trace.MetricsSink`; **no event is retained**
    (``keep_events=False``), so memory stays flat and 1000-process churn
    runs verify in one pass.  Extra sinks (e.g. a
    :class:`~repro.net.trace.JsonlSink`) can be attached in either mode.

Checking under churn needs care: after partitions (real or induced by drop
windows) only processes that were never separated -- the scenario's *stable
core* -- are required to agree on view sequences (VC1 quantifies over
processes that never suspect each other).  The engine derives the expected
agreement set per group from the event list alone, so scenario authors get
the right checks without hand-writing them; total order (MD4/MD4') is
checked over every process unconditionally, exactly as the paper states it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.checkers import CheckResult, check_all
from repro.analysis.online import OnlineCheckSuite
from repro.core.cluster import NewtopCluster
from repro.core.config import NewtopConfig
from repro.net.latency import LatencyModel
from repro.net.trace import MetricsSink, TraceRecorder, TraceSink
from repro.scenarios.spec import (
    FORMATION_WORKLOAD_GRACE,
    ScenarioEvent,
    ScenarioSpec,
    from_config,
)

#: Protocol defaults for scenario runs: fast time-silence and suspicion so
#: membership events settle within short simulated horizons, with enough
#: slack over the default latency model that healthy, connected processes
#: never suspect each other.
SCENARIO_PROTOCOL_DEFAULTS: Mapping[str, object] = {
    "omega": 1.5,
    "suspicion_timeout": 6.0,
    "suspector_check_interval": 0.5,
}

#: Simulated-time spacing of runtime health samples.
SAMPLE_INTERVAL = 2.0


@dataclass
class RuntimeSample:
    """One periodic snapshot of simulator health while a scenario runs."""

    time: float
    pending_events: int
    live_pending_events: int


@dataclass
class ScenarioResult:
    """Everything a scenario run produced: verdicts plus runtime metrics."""

    name: str
    checks: CheckResult
    agreement_sets: Dict[str, List[str]]
    sim_time: float
    events_processed: int
    deliveries: int
    messages_sent: int
    delivery_events: int
    compactions: int
    peak_pending_events: int
    peak_live_pending_events: int
    samples: List[RuntimeSample] = field(default_factory=list)
    #: Which verification pipeline produced :attr:`checks`.
    analysis: str = "offline"
    #: Total trace events recorded (streamed or stored).
    trace_events: int = 0
    #: Trace events still held in memory at the end (0 in online mode).
    trace_events_stored: int = 0
    #: Rolling aggregates from the online MetricsSink (online mode only).
    metrics: Optional[Dict[str, object]] = None

    @property
    def passed(self) -> bool:
        """Whether every checked guarantee held."""
        return self.checks.passed

    def summary(self) -> List[str]:
        """Human-readable result rows (used by the benchmark report)."""
        batching = (
            f"{self.messages_sent / self.delivery_events:.1f} msgs/event"
            if self.delivery_events
            else "n/a"
        )
        return [
            f"checks: {'PASS' if self.passed else 'FAIL ' + '; '.join(self.checks.violations[:2])}"
            f" ({self.analysis}; {self.trace_events} trace events, "
            f"{self.trace_events_stored} stored)",
            f"simulated time {self.sim_time:.1f}, events processed {self.events_processed}",
            f"messages sent {self.messages_sent}, app deliveries {self.deliveries}, "
            f"delivery batching {batching}",
            f"heap: peak pending {self.peak_pending_events} "
            f"(live {self.peak_live_pending_events}), compactions {self.compactions}",
        ]


class ScenarioEngine:
    """Runs one scenario spec on a fresh simulated cluster."""

    def __init__(
        self,
        spec: ScenarioSpec,
        latency_model: Optional[LatencyModel] = None,
        analysis: str = "offline",
        sinks: Optional[List[TraceSink]] = None,
    ) -> None:
        if analysis not in ("offline", "online"):
            raise ValueError(f"unknown analysis mode {analysis!r}")
        self.spec = spec
        self.analysis = analysis
        self._agreement_sets = self.expected_agreement_sets()
        extra_sinks = list(sinks or ())
        self.suite: Optional[OnlineCheckSuite] = None
        self.metrics_sink: Optional[MetricsSink] = None
        if analysis == "online":
            # Streaming verification: checkers and metrics consume events as
            # they are recorded; the full trace is never materialized.
            self.suite = OnlineCheckSuite(view_agreement_sets=self._agreement_sets)
            self.metrics_sink = MetricsSink()
            recorder = TraceRecorder(
                sinks=[self.suite, self.metrics_sink, *extra_sinks],
                keep_events=False,
            )
        else:
            recorder = TraceRecorder(sinks=extra_sinks)
        overrides = dict(SCENARIO_PROTOCOL_DEFAULTS)
        overrides.update(spec.protocol)
        self.cluster = NewtopCluster(
            list(spec.processes),
            config=NewtopConfig(**overrides),
            latency_model=latency_model,
            seed=spec.seed,
            recorder=recorder,
        )
        self.cluster.network.config.batch_window = spec.batch_window
        self.samples: List[RuntimeSample] = []
        self._installed = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _install(self) -> None:
        if self._installed:
            return
        self._installed = True
        for group in self.spec.groups:
            for member in group.members:
                self.cluster.processes[member].create_group(
                    group.group_id, group.members, mode=group.mode
                )
        self._schedule_workload()
        for event in self.spec.events:
            self.cluster.sim.schedule_at(
                event.time, self._apply_event, event, label=f"scenario:{event.kind}"
            )
        self._schedule_sample()

    def _schedule_workload(self) -> None:
        workload = self.spec.workload
        for group in self.spec.groups:
            self._schedule_group_sends(
                group.group_id, group.members, start=workload.start
            )
        # Dynamically formed groups get the same workload shape, starting a
        # grace period after formation so the §5.3 voting and start-number
        # agreement can complete first (early sends are skipped harmlessly
        # by the membership guard in :meth:`_send`).
        for event in self.spec.events:
            if event.kind == "form_group":
                self._schedule_group_sends(
                    event.group,
                    event.targets,
                    start=event.time + FORMATION_WORKLOAD_GRACE,
                )

    def _schedule_group_sends(
        self, group_id: str, members: Sequence[str], start: float
    ) -> None:
        workload = self.spec.workload
        senders = (
            members[: workload.senders_per_group]
            if workload.senders_per_group > 0
            else members
        )
        for round_index in range(workload.messages_per_sender):
            send_time = start + round_index * workload.gap
            for sender in senders:
                self.cluster.sim.schedule_at(
                    send_time,
                    self._send,
                    sender,
                    group_id,
                    f"{group_id}:{sender}:{round_index}",
                    label="scenario:send",
                )

    def _send(self, sender: str, group_id: str, payload: str) -> None:
        process = self.cluster.processes[sender]
        # Senders drop out of the workload when the scenario crashed or
        # departed them; that is scenario-intended, not an error.
        if process.crashed or not process.is_member(group_id):
            return
        process.multicast(group_id, payload)

    def _apply_event(self, event: ScenarioEvent) -> None:
        cluster = self.cluster
        if event.kind == "crash":
            for target in event.targets:
                cluster.processes[target].crash()
        elif event.kind == "leave":
            for target in event.targets:
                process = cluster.processes[target]
                if not process.crashed and process.is_member(event.group):
                    process.leave_group(event.group)
        elif event.kind == "partition":
            cluster.injector.partition_now([list(side) for side in event.components])
        elif event.kind == "heal":
            cluster.injector.heal_now()
        elif event.kind == "isolate":
            cluster.network.partitions.partition(
                [[target] for target in event.targets], at_time=cluster.sim.now
            )
        elif event.kind == "form_group":
            # §5.3: the first listed (live) target initiates formation with
            # every live target as an intended member.  Crashed targets are
            # dropped up front -- inviting one can only veto the formation
            # by timeout, which is scenario noise, not a protocol exercise.
            members = [
                target
                for target in event.targets
                if not cluster.processes[target].crashed
            ]
            if len(members) >= 2:
                cluster.processes[members[0]].form_group(event.group, members)
        elif event.kind == "drop":
            src_nodes, dst_nodes = set(event.src), set(event.dst)

            def drop_filter(src: str, dst: str, payload: object) -> bool:
                return not (src in src_nodes and dst in dst_nodes)

            cluster.network.add_filter(drop_filter)
            cluster.sim.schedule(
                event.duration,
                cluster.network.remove_filter,
                drop_filter,
                label="scenario:drop-end",
            )
        else:  # pragma: no cover - spec parsing rejects unknown kinds
            raise ValueError(f"unknown scenario event kind {event.kind!r}")

    def _schedule_sample(self) -> None:
        sim = self.cluster.sim
        self.samples.append(
            RuntimeSample(
                time=sim.now,
                pending_events=sim.pending_events,
                live_pending_events=sim.live_pending_events,
            )
        )
        if sim.now < self.spec.horizon():
            sim.schedule(SAMPLE_INTERVAL, self._schedule_sample, label="scenario:sample")

    # ------------------------------------------------------------------
    # Expected agreement sets (the scenario's stable core)
    # ------------------------------------------------------------------
    def expected_agreement_sets(self) -> Dict[str, List[str]]:
        """Per group, the processes required to agree on view sequences.

        The *stable core* starts as every process and shrinks on each event
        that can separate processes' perceptions: crashed/isolated targets
        drop out, a partition keeps only the component that retains the
        most of the current core (ties break deterministically towards the
        lexicographically smallest component), and drop windows remove the
        affected endpoints conservatively.  Group leavers are additionally
        excluded from that group's agreement set.  Dynamically formed
        groups (``form_group`` events) are held to the same agreement as
        static ones, over their intended members.
        """
        core: Set[str] = set(self.spec.processes)
        leavers: Dict[str, Set[str]] = {}
        memberships: List[Tuple[str, Tuple[str, ...]]] = [
            (group.group_id, group.members) for group in self.spec.groups
        ]
        for event in self.spec.events:
            if event.kind in ("crash", "isolate"):
                core -= set(event.targets)
            elif event.kind == "form_group":
                memberships.append((event.group, event.targets))
            elif event.kind == "leave":
                leavers.setdefault(event.group, set()).update(event.targets)
            elif event.kind == "partition":
                listed: Set[str] = set()
                components = [set(side) for side in event.components]
                for side in components:
                    listed |= side
                leftover = set(self.spec.processes) - listed
                if leftover:
                    components.append(leftover)
                core &= min(
                    components,
                    key=lambda side: (-len(side & core), tuple(sorted(side))),
                )
            elif event.kind == "drop":
                # A lossy window can trigger genuine (if one-sided) mutual
                # suspicion; be conservative about who must still agree.
                core -= set(event.src) | set(event.dst)
        return {
            group_id: sorted(
                member
                for member in members
                if member in core and member not in leavers.get(group_id, set())
            )
            for group_id, members in memberships
        }

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        """Install, run to the horizon, and evaluate the checkers.

        In offline mode the post-hoc checkers run over the materialized
        trace; in online mode the verdict is read from the streaming suite
        that consumed every event as it was recorded.
        """
        agreement_sets = self._agreement_sets
        recorder = self.cluster.recorder
        try:
            self._install()
            sim = self.cluster.sim
            sim.run(until=self.spec.horizon())
            if self.suite is not None:
                checks = self.suite.result()
            else:
                checks = check_all(
                    self.cluster.trace(), view_agreement_sets=agreement_sets
                )
        finally:
            # Sinks (e.g. a JsonlSink) must be flushed even when the run or
            # a checker raises -- that is exactly when the dump matters.
            recorder.close()
        deliveries = sum(
            len(process.delivered) for process in self.cluster.processes.values()
        )
        stats = self.cluster.network.stats
        return ScenarioResult(
            name=self.spec.name,
            checks=checks,
            agreement_sets=agreement_sets,
            sim_time=sim.now,
            events_processed=sim.events_processed,
            deliveries=deliveries,
            messages_sent=stats.messages_sent,
            delivery_events=stats.delivery_events,
            compactions=sim.compactions,
            peak_pending_events=max(sample.pending_events for sample in self.samples),
            peak_live_pending_events=max(
                sample.live_pending_events for sample in self.samples
            ),
            samples=list(self.samples),
            analysis=self.analysis,
            trace_events=recorder.events_recorded,
            trace_events_stored=recorder.stored_events,
            metrics=(
                self.metrics_sink.snapshot() if self.metrics_sink is not None else None
            ),
        )


def run_scenario(
    config: Mapping,
    latency_model: Optional[LatencyModel] = None,
    analysis: str = "offline",
    sinks: Optional[List[TraceSink]] = None,
) -> ScenarioResult:
    """Parse a scenario config dict, run it, and return the result."""
    spec = config if isinstance(config, ScenarioSpec) else from_config(config)
    return ScenarioEngine(
        spec, latency_model=latency_model, analysis=analysis, sinks=sinks
    ).run()
