"""The scenario engine: run a declarative spec, verify the guarantees.

The engine turns a :class:`~repro.scenarios.spec.ScenarioSpec` into a
running :class:`~repro.core.cluster.NewtopCluster`: it installs the groups,
drives the background workload, applies the timed fault/membership events,
samples the simulator's health (heap occupancy) while running, and finally
evaluates the paper's correctness predicates over the recorded trace.

Checking under churn needs care: after partitions (real or induced by drop
windows) only processes that were never separated -- the scenario's *stable
core* -- are required to agree on view sequences (VC1 quantifies over
processes that never suspect each other).  The engine derives the expected
agreement set per group from the event list alone, so scenario authors get
the right checks without hand-writing them; total order (MD4/MD4') is
checked over every process unconditionally, exactly as the paper states it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.checkers import CheckResult, check_all
from repro.core.cluster import NewtopCluster
from repro.core.config import NewtopConfig
from repro.net.latency import LatencyModel
from repro.scenarios.spec import ScenarioEvent, ScenarioSpec, from_config

#: Protocol defaults for scenario runs: fast time-silence and suspicion so
#: membership events settle within short simulated horizons, with enough
#: slack over the default latency model that healthy, connected processes
#: never suspect each other.
SCENARIO_PROTOCOL_DEFAULTS: Mapping[str, object] = {
    "omega": 1.5,
    "suspicion_timeout": 6.0,
    "suspector_check_interval": 0.5,
}

#: Simulated-time spacing of runtime health samples.
SAMPLE_INTERVAL = 2.0


@dataclass
class RuntimeSample:
    """One periodic snapshot of simulator health while a scenario runs."""

    time: float
    pending_events: int
    live_pending_events: int


@dataclass
class ScenarioResult:
    """Everything a scenario run produced: verdicts plus runtime metrics."""

    name: str
    checks: CheckResult
    agreement_sets: Dict[str, List[str]]
    sim_time: float
    events_processed: int
    deliveries: int
    messages_sent: int
    delivery_events: int
    compactions: int
    peak_pending_events: int
    peak_live_pending_events: int
    samples: List[RuntimeSample] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every checked guarantee held."""
        return self.checks.passed

    def summary(self) -> List[str]:
        """Human-readable result rows (used by the benchmark report)."""
        batching = (
            f"{self.messages_sent / self.delivery_events:.1f} msgs/event"
            if self.delivery_events
            else "n/a"
        )
        return [
            f"checks: {'PASS' if self.passed else 'FAIL ' + '; '.join(self.checks.violations[:2])}",
            f"simulated time {self.sim_time:.1f}, events processed {self.events_processed}",
            f"messages sent {self.messages_sent}, app deliveries {self.deliveries}, "
            f"delivery batching {batching}",
            f"heap: peak pending {self.peak_pending_events} "
            f"(live {self.peak_live_pending_events}), compactions {self.compactions}",
        ]


class ScenarioEngine:
    """Runs one scenario spec on a fresh simulated cluster."""

    def __init__(
        self,
        spec: ScenarioSpec,
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        self.spec = spec
        overrides = dict(SCENARIO_PROTOCOL_DEFAULTS)
        overrides.update(spec.protocol)
        self.cluster = NewtopCluster(
            list(spec.processes),
            config=NewtopConfig(**overrides),
            latency_model=latency_model,
            seed=spec.seed,
        )
        self.cluster.network.config.batch_window = spec.batch_window
        self.samples: List[RuntimeSample] = []
        self._installed = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _install(self) -> None:
        if self._installed:
            return
        self._installed = True
        for group in self.spec.groups:
            for member in group.members:
                self.cluster.processes[member].create_group(
                    group.group_id, group.members, mode=group.mode
                )
        self._schedule_workload()
        for event in self.spec.events:
            self.cluster.sim.schedule_at(
                event.time, self._apply_event, event, label=f"scenario:{event.kind}"
            )
        self._schedule_sample()

    def _schedule_workload(self) -> None:
        workload = self.spec.workload
        for group in self.spec.groups:
            senders = (
                group.members[: workload.senders_per_group]
                if workload.senders_per_group > 0
                else group.members
            )
            for round_index in range(workload.messages_per_sender):
                send_time = workload.start + round_index * workload.gap
                for sender in senders:
                    self.cluster.sim.schedule_at(
                        send_time,
                        self._send,
                        sender,
                        group.group_id,
                        f"{group.group_id}:{sender}:{round_index}",
                        label="scenario:send",
                    )

    def _send(self, sender: str, group_id: str, payload: str) -> None:
        process = self.cluster.processes[sender]
        # Senders drop out of the workload when the scenario crashed or
        # departed them; that is scenario-intended, not an error.
        if process.crashed or not process.is_member(group_id):
            return
        process.multicast(group_id, payload)

    def _apply_event(self, event: ScenarioEvent) -> None:
        cluster = self.cluster
        if event.kind == "crash":
            for target in event.targets:
                cluster.processes[target].crash()
        elif event.kind == "leave":
            for target in event.targets:
                process = cluster.processes[target]
                if not process.crashed and process.is_member(event.group):
                    process.leave_group(event.group)
        elif event.kind == "partition":
            cluster.injector.partition_now([list(side) for side in event.components])
        elif event.kind == "heal":
            cluster.injector.heal_now()
        elif event.kind == "isolate":
            cluster.network.partitions.partition(
                [[target] for target in event.targets], at_time=cluster.sim.now
            )
        elif event.kind == "drop":
            src_nodes, dst_nodes = set(event.src), set(event.dst)

            def drop_filter(src: str, dst: str, payload: object) -> bool:
                return not (src in src_nodes and dst in dst_nodes)

            cluster.network.add_filter(drop_filter)
            cluster.sim.schedule(
                event.duration,
                cluster.network.remove_filter,
                drop_filter,
                label="scenario:drop-end",
            )
        else:  # pragma: no cover - spec parsing rejects unknown kinds
            raise ValueError(f"unknown scenario event kind {event.kind!r}")

    def _schedule_sample(self) -> None:
        sim = self.cluster.sim
        self.samples.append(
            RuntimeSample(
                time=sim.now,
                pending_events=sim.pending_events,
                live_pending_events=sim.live_pending_events,
            )
        )
        if sim.now < self.spec.horizon():
            sim.schedule(SAMPLE_INTERVAL, self._schedule_sample, label="scenario:sample")

    # ------------------------------------------------------------------
    # Expected agreement sets (the scenario's stable core)
    # ------------------------------------------------------------------
    def expected_agreement_sets(self) -> Dict[str, List[str]]:
        """Per group, the processes required to agree on view sequences.

        The *stable core* starts as every process and shrinks on each event
        that can separate processes' perceptions: crashed/isolated targets
        drop out, a partition keeps only the component that retains the
        most of the current core (ties break deterministically towards the
        lexicographically smallest component), and drop windows remove the
        affected endpoints conservatively.  Group leavers are additionally
        excluded from that group's agreement set.
        """
        core: Set[str] = set(self.spec.processes)
        leavers: Dict[str, Set[str]] = {}
        for event in self.spec.events:
            if event.kind in ("crash", "isolate"):
                core -= set(event.targets)
            elif event.kind == "leave":
                leavers.setdefault(event.group, set()).update(event.targets)
            elif event.kind == "partition":
                listed: Set[str] = set()
                components = [set(side) for side in event.components]
                for side in components:
                    listed |= side
                leftover = set(self.spec.processes) - listed
                if leftover:
                    components.append(leftover)
                core &= min(
                    components,
                    key=lambda side: (-len(side & core), tuple(sorted(side))),
                )
            elif event.kind == "drop":
                # A lossy window can trigger genuine (if one-sided) mutual
                # suspicion; be conservative about who must still agree.
                core -= set(event.src) | set(event.dst)
        return {
            group.group_id: sorted(
                member
                for member in group.members
                if member in core and member not in leavers.get(group.group_id, set())
            )
            for group in self.spec.groups
        }

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        """Install, run to the horizon, and evaluate the trace checkers."""
        self._install()
        sim = self.cluster.sim
        sim.run(until=self.spec.horizon())
        agreement_sets = self.expected_agreement_sets()
        checks = check_all(self.cluster.trace(), view_agreement_sets=agreement_sets)
        deliveries = sum(
            len(process.delivered) for process in self.cluster.processes.values()
        )
        stats = self.cluster.network.stats
        return ScenarioResult(
            name=self.spec.name,
            checks=checks,
            agreement_sets=agreement_sets,
            sim_time=sim.now,
            events_processed=sim.events_processed,
            deliveries=deliveries,
            messages_sent=stats.messages_sent,
            delivery_events=stats.delivery_events,
            compactions=sim.compactions,
            peak_pending_events=max(sample.pending_events for sample in self.samples),
            peak_live_pending_events=max(
                sample.live_pending_events for sample in self.samples
            ),
            samples=list(self.samples),
        )


def run_scenario(
    config: Mapping,
    latency_model: Optional[LatencyModel] = None,
) -> ScenarioResult:
    """Parse a scenario config dict, run it, and return the result."""
    spec = config if isinstance(config, ScenarioSpec) else from_config(config)
    return ScenarioEngine(spec, latency_model=latency_model).run()
