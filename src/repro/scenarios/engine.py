"""The scenario engine: run a declarative spec on any protocol stack.

The engine turns a :class:`~repro.scenarios.spec.ScenarioSpec` into a
running :class:`~repro.api.Session`: it installs the groups, drives the
background workload, applies the timed fault/membership events (including
dynamic ``form_group`` formations), samples the simulator's health (heap
occupancy) while running, and finally evaluates the correctness predicates
the selected stack's guarantees claim.

``stack`` selects the protocol (default ``"newtop"`` -- the paper's
protocol with each group's spec-declared ordering mode); any registry name
or :class:`~repro.api.ProtocolStack` instance from :mod:`repro.api` works,
which is how one churn scenario compares Newtop against the fixed
sequencer, ISIS, Lamport all-ack and Psync under identical conditions
(benchmark E20).  Scenario events are mapped onto the stack's declared
capability flags: an event the stack has no capability for (e.g.
``form_group`` on a single-group baseline) raises a clear
:class:`~repro.api.UnsupportedScenarioEvent` up front, or -- with
``on_unsupported="skip"`` -- is dropped with a recorded warning in
:attr:`ScenarioResult.skipped_events`, never an ``AttributeError``
mid-run.

Two analysis modes select how the predicates are evaluated:

``analysis="offline"`` (default)
    The full trace is materialized and the stack's post-hoc checkers run
    at the end (for Newtop, the exact MD/VC checkers of
    :mod:`repro.analysis.checkers`) -- right for paper-sized runs and
    debugging.
``analysis="online"``
    The recorder streams into the stack's
    :class:`~repro.analysis.online.OnlineCheckSuite` (scoped per group for
    single-group baselines) and a rolling
    :class:`~repro.net.trace.MetricsSink`; **no event is retained**
    (``keep_events=False``), so memory stays flat and 1000-process churn
    runs verify in one pass.  Extra sinks (e.g. a
    :class:`~repro.net.trace.JsonlSink`) can be attached in either mode.

Checking under churn needs care: after partitions (real or induced by drop
windows) only processes that were never separated -- the scenario's *stable
core* -- are required to agree on view sequences (VC1 quantifies over
processes that never suspect each other).  The engine derives the expected
agreement set per group from the event list alone, so scenario authors get
the right checks without hand-writing them; total order (MD4/MD4') is
checked over every process unconditionally, exactly as the paper states it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.analysis.checkers import CheckResult
from repro.api import (
    EVENT_CAPABILITIES,
    ProtocolStack,
    Session,
    UnsupportedScenarioEvent,
)
from repro.core.messages import reset_message_counter
from repro.net.faults import LinkFaultModel
from repro.net.latency import LatencyModel, get_latency_model
from repro.obs import Observation
from repro.parallel import WorkUnit, run_units
from repro.net.trace import TraceSink
from repro.scenarios.spec import (
    FORMATION_WORKLOAD_GRACE,
    ScenarioEvent,
    ScenarioSpec,
    WorkloadSpec,
    from_config,
    to_config,
)
from repro.workloads.client import LatencyReservoir, OpenLoopClient, aggregate_counters
from repro.workloads.profiles import get_profile

#: Protocol defaults for scenario runs: fast time-silence and suspicion so
#: membership events settle within short simulated horizons, with enough
#: slack over the default latency model that healthy, connected processes
#: never suspect each other.  (Stacks without these knobs ignore them.)
SCENARIO_PROTOCOL_DEFAULTS: Mapping[str, object] = {
    "omega": 1.5,
    "suspicion_timeout": 6.0,
    "suspector_check_interval": 0.5,
}

#: Simulated-time spacing of runtime health samples.
SAMPLE_INTERVAL = 2.0


@dataclass
class RuntimeSample:
    """One periodic snapshot of simulator health while a scenario runs."""

    time: float
    pending_events: int
    live_pending_events: int


@dataclass
class ScenarioResult:
    """Everything a scenario run produced: verdicts plus runtime metrics."""

    name: str
    checks: CheckResult
    agreement_sets: Dict[str, List[str]]
    sim_time: float
    events_processed: int
    deliveries: int
    messages_sent: int
    delivery_events: int
    compactions: int
    peak_pending_events: int
    peak_live_pending_events: int
    samples: List[RuntimeSample] = field(default_factory=list)
    #: Which verification pipeline produced :attr:`checks`.
    analysis: str = "offline"
    #: Total trace events recorded (streamed or stored).
    trace_events: int = 0
    #: Trace events still held in memory at the end (0 in online mode).
    trace_events_stored: int = 0
    #: Rolling aggregates from the online MetricsSink (online mode only).
    metrics: Optional[Dict[str, object]] = None
    #: Name of the protocol stack the scenario ran on.
    stack: str = "newtop"
    #: Warnings for events dropped under ``on_unsupported="skip"``.
    skipped_events: List[str] = field(default_factory=list)
    #: Open-loop workload accounting (aggregated over the per-group
    #: clients) when the spec selected a profile; ``None`` otherwise.
    workload: Optional[Dict[str, object]] = None
    #: Exact delivery-latency statistics merged over the per-group clients
    #: (profile workloads only).  Carrying the *reservoir* -- not just its
    #: summary -- is what lets a sharded batch merge percentiles exactly:
    #: the object is picklable and rides back from pool workers intact.
    latency_reservoir: Optional[LatencyReservoir] = None
    #: Observation snapshot (``observe=`` was given), else ``None``.
    obs: Optional[Dict[str, object]] = None
    #: Trace sinks detached after raising mid-run (fails :attr:`passed`).
    sink_errors: List[Dict[str, object]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every checked guarantee held and no sink was detached."""
        return self.checks.passed and not self.sink_errors

    def summary(self) -> List[str]:
        """Human-readable result rows (used by the benchmark report)."""
        batching = (
            f"{self.messages_sent / self.delivery_events:.1f} msgs/event"
            if self.delivery_events
            else "n/a"
        )
        rows = [
            f"stack: {self.stack}",
            f"checks: {'PASS' if self.passed else 'FAIL ' + '; '.join(self.checks.violations[:2])}"
            f" ({self.analysis}; {self.trace_events} trace events, "
            f"{self.trace_events_stored} stored)",
            f"simulated time {self.sim_time:.1f}, events processed {self.events_processed}",
            f"messages sent {self.messages_sent}, app deliveries {self.deliveries}, "
            f"delivery batching {batching}",
            f"heap: peak pending {self.peak_pending_events} "
            f"(live {self.peak_live_pending_events}), compactions {self.compactions}",
        ]
        if self.skipped_events:
            rows.append(
                f"skipped {len(self.skipped_events)} event(s) unsupported by the stack"
            )
        return rows


class ScenarioEngine:
    """Runs one scenario spec on a fresh session over the chosen stack."""

    def __init__(
        self,
        spec: ScenarioSpec,
        latency_model: Optional[LatencyModel] = None,
        analysis: str = "offline",
        sinks: Optional[List[TraceSink]] = None,
        stack: Union[str, ProtocolStack] = "newtop",
        on_unsupported: str = "raise",
        observe: object = None,
    ) -> None:
        if analysis not in ("offline", "online"):
            raise ValueError(f"unknown analysis mode {analysis!r}")
        if on_unsupported not in ("raise", "skip"):
            raise ValueError(f"unknown on_unsupported policy {on_unsupported!r}")
        # One engine = one self-contained simulation; restarting message-id
        # numbering here makes a scenario's result independent of whatever
        # ran earlier in this interpreter -- the property that lets
        # :func:`run_scenarios` shard a batch across worker processes and
        # still match a serial run byte-for-byte.
        reset_message_counter()
        self.spec = spec
        self.analysis = analysis
        self._agreement_sets = self.expected_agreement_sets()
        overrides = dict(SCENARIO_PROTOCOL_DEFAULTS)
        overrides.update(spec.protocol)
        # "timer_wheel" is a simulator knob, not a protocol parameter; it
        # rides in the protocol dict so scenario configs (and the
        # equivalence tests) can toggle it declaratively.
        timer_wheel = bool(overrides.pop("timer_wheel", True))
        # A spec-declared latency model ("latency": {"model": ...}) applies
        # when the caller did not pass one explicitly -- an explicit
        # ``latency_model`` argument (e.g. a sweep cell) wins, so a batch
        # can still sweep a latency axis over latency-declaring specs.
        if latency_model is None and spec.latency is not None:
            options = {
                key: value for key, value in spec.latency.items() if key != "model"
            }
            latency_model = get_latency_model(spec.latency["model"], **options)
        self.session = Session(
            stack,
            config=overrides,
            seed=spec.seed,
            latency_model=latency_model,
            batch_window=spec.batch_window,
            link_faults=spec.link_faults,
            sinks=sinks,
            analysis=analysis,
            view_agreement_sets=self._agreement_sets,
            timer_wheel=timer_wheel,
            observe=observe,
        )
        self.stack = self.session.stack
        self.skipped_events: List[str] = []
        self._events = self._supported_events(on_unsupported)
        self.session.spawn(spec.processes)
        self.samples: List[RuntimeSample] = []
        #: Open-loop clients (one per group) when the spec names a profile.
        self.clients: List[OpenLoopClient] = []
        self._installed = False
        # The network's PartitionManager holds a single layout (installing
        # a new one replaces the old), but scenario events compose: an
        # isolate landing while a partition is up must not silently reheal
        # the partition.  The engine therefore tracks the composed fault
        # topology and reinstalls the combined layout on every change.
        self._partition_components: List[Set[str]] = []
        self._isolated: Set[str] = set()

    @property
    def cluster(self) -> Session:
        """The running session (kept under the historical attribute name)."""
        return self.session

    @property
    def suite(self):
        """The streaming check suite (online mode only)."""
        return self.session.suite

    @property
    def metrics_sink(self):
        """The rolling metrics sink (online mode only)."""
        return self.session.metrics_sink

    # ------------------------------------------------------------------
    # Capability mapping
    # ------------------------------------------------------------------
    def _supported_events(self, on_unsupported: str) -> Tuple[ScenarioEvent, ...]:
        """Events the stack can apply; the rest raise or are recorded."""
        supported: List[ScenarioEvent] = []
        for event in self.spec.events:
            capability = EVENT_CAPABILITIES.get(event.kind)
            if capability is None:
                raise ValueError(f"unknown scenario event kind {event.kind!r}")
            if self.stack.supports(capability):
                supported.append(event)
                continue
            message = (
                f"scenario {self.spec.name!r} event {event.kind!r} at "
                f"t={event.time} needs capability {capability!r} which stack "
                f"{self.stack.name!r} does not declare"
            )
            if on_unsupported == "raise":
                raise UnsupportedScenarioEvent(message)
            self.skipped_events.append(message + " -- skipped")
        return tuple(supported)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _install(self) -> None:
        if self._installed:
            return
        self._installed = True
        for group in self.spec.groups:
            self.session.group(group.group_id, group.members, mode=group.mode)
        self._schedule_workload()
        for event in self._events:
            self.session.sim.schedule_at(
                event.time, self._apply_event, event, label=f"scenario:{event.kind}"
            )
        self._schedule_sample()

    def _schedule_workload(self) -> None:
        # Every phase -- the primary workload plus each entry of
        # ``load_phases`` -- is driven through every group over its own
        # (validated non-overlapping) time window.  Open-loop phases
        # (``profile`` set) attach one reactive client per group per
        # phase, arrivals scheduled inside sim time -- the crash/membership
        # guards live in the client itself.  Closed-loop phases keep the
        # historical fixed rounds.  Dynamically formed groups get the
        # *primary* workload shape, starting a grace period after formation
        # so the §5.3 voting and start-number agreement can complete first
        # (early sends are skipped harmlessly by the membership guards).
        # Formations the stack cannot perform were filtered with their
        # events.
        for phase_index, workload in enumerate(self.spec.phases()):
            if workload.profile is not None:
                for group in self.spec.groups:
                    self._attach_client(
                        group.group_id,
                        group.members,
                        start=workload.start,
                        workload=workload,
                        phase_index=phase_index,
                    )
            else:
                for group in self.spec.groups:
                    self._schedule_group_sends(
                        group.group_id,
                        group.members,
                        start=workload.start,
                        workload=workload,
                        phase_index=phase_index,
                    )
        primary = self.spec.workload
        for event in self._events:
            if event.kind != "form_group":
                continue
            start = event.time + FORMATION_WORKLOAD_GRACE
            if primary.profile is not None:
                self._attach_client(
                    event.group, event.targets, start=start, workload=primary,
                    phase_index=0,
                )
            else:
                self._schedule_group_sends(
                    event.group, event.targets, start=start, workload=primary,
                    phase_index=0,
                )

    def _attach_client(
        self,
        group_id: str,
        members: Sequence[str],
        start: float,
        workload: WorkloadSpec,
        phase_index: int,
    ) -> None:
        senders = (
            list(members[: workload.senders_per_group])
            if workload.senders_per_group > 0
            else list(members)
        )
        profile = get_profile(
            workload.profile,
            rate=workload.rate,
            payload_bytes=workload.payload_bytes,
            **dict(workload.profile_options),
        )
        # Phase 0 keeps the historical "<group>-client" name (and the
        # seed derivation below keeps phase-0-only specs byte-identical to
        # the pre-load_phases engine: seeds follow attachment order).
        name = (
            f"{group_id}-client"
            if phase_index == 0
            else f"{group_id}-client-p{phase_index}"
        )
        client = self.session.attach_client(
            OpenLoopClient(
                profile,
                senders,
                [group_id],
                seed=self.spec.seed * 9973 + len(self.clients),
                start=start,
                duration=workload.duration,
                name=name,
            )
        )
        client.start()
        self.clients.append(client)

    def _schedule_group_sends(
        self,
        group_id: str,
        members: Sequence[str],
        start: float,
        workload: WorkloadSpec,
        phase_index: int,
    ) -> None:
        senders = (
            members[: workload.senders_per_group]
            if workload.senders_per_group > 0
            else members
        )
        # Phase 0 keeps the historical payload tag; later phases are
        # prefixed so payload strings stay unique across phases.
        tag = "" if phase_index == 0 else f"p{phase_index}:"
        for round_index in range(workload.messages_per_sender):
            send_time = start + round_index * workload.gap
            for sender in senders:
                self.session.sim.schedule_at(
                    send_time,
                    self._send,
                    sender,
                    group_id,
                    f"{tag}{group_id}:{sender}:{round_index}",
                    label="scenario:send",
                )

    def _send(self, sender: str, group_id: str, payload: str) -> None:
        # Senders drop out of the workload when the scenario crashed or
        # departed them; that is scenario-intended, not an error.
        if self.stack.is_crashed(sender) or not self.stack.is_member(sender, group_id):
            return
        self.session.multicast(sender, group_id, payload)

    def _apply_event(self, event: ScenarioEvent) -> None:
        session = self.session
        if event.kind == "crash":
            for target in event.targets:
                session.crash(target)
        elif event.kind == "leave":
            for target in event.targets:
                if not self.stack.is_crashed(target) and self.stack.is_member(
                    target, event.group
                ):
                    session.leave(target, event.group)
        elif event.kind == "partition":
            self._partition_components = [set(side) for side in event.components]
            self._install_topology()
        elif event.kind == "heal":
            self._partition_components = []
            self._isolated = set()
            session.heal()
        elif event.kind == "isolate":
            self._isolated.update(event.targets)
            self._install_topology()
        elif event.kind == "form_group":
            # §5.3: the first listed (live) target initiates formation with
            # every live target as an intended member.  Crashed targets are
            # dropped up front -- inviting one can only veto the formation
            # by timeout, which is scenario noise, not a protocol exercise.
            members = [
                target
                for target in event.targets
                if not self.stack.is_crashed(target)
            ]
            if len(members) >= 2:
                session.form_group(event.group, members)
        elif event.kind == "drop":
            src_nodes, dst_nodes = set(event.src), set(event.dst)

            def drop_filter(src: str, dst: str, payload: object) -> bool:
                return not (src in src_nodes and dst in dst_nodes)

            session.network.add_filter(drop_filter)
            session.sim.schedule(
                event.duration,
                session.network.remove_filter,
                drop_filter,
                label="scenario:drop-end",
            )
        else:  # pragma: no cover - spec parsing rejects unknown kinds
            raise ValueError(f"unknown scenario event kind {event.kind!r}")

    def _install_topology(self) -> None:
        """Install the composed fault topology (partition + isolations).

        Components listed by the active partition event lose their isolated
        members; every isolated process becomes a singleton component; the
        remaining processes form the implicit leftover component.
        """
        components = [
            side - self._isolated for side in self._partition_components
        ]
        components = [side for side in components if side]
        components.extend({name} for name in sorted(self._isolated))
        self.session.partition([sorted(side) for side in components])

    def _schedule_sample(self) -> None:
        sim = self.session.sim
        self.samples.append(
            RuntimeSample(
                time=sim.now,
                pending_events=sim.pending_events,
                live_pending_events=sim.live_pending_events,
            )
        )
        if sim.now < self.spec.horizon():
            sim.schedule(SAMPLE_INTERVAL, self._schedule_sample, label="scenario:sample")

    # ------------------------------------------------------------------
    # Expected agreement sets (the scenario's stable core)
    # ------------------------------------------------------------------
    def expected_agreement_sets(self) -> Dict[str, List[str]]:
        """Per group, the processes required to agree on view sequences.

        The *stable core* starts as every process and shrinks on each event
        that can separate processes' perceptions: crashed/isolated targets
        drop out, a partition keeps only the component that retains the
        most of the current core (ties break deterministically towards the
        lexicographically smallest component), and drop windows remove the
        affected endpoints conservatively.  Group leavers are additionally
        excluded from that group's agreement set.  Dynamically formed
        groups (``form_group`` events) are held to the same agreement as
        static ones, over their intended members.

        Probabilistic link faults shrink the core the same way: processes
        on the endpoints of disruptive (drop/reorder) fault links can
        suffer genuine one-sided suspicion, so they are excluded up front;
        a globally disruptive model conservatively empties the core
        (delivery-level checks still run over every process).  Duplicate
        faults never perturb the protocol (the sequenced transport absorbs
        them) and cost nothing here.
        """
        core: Set[str] = set(self.spec.processes)
        if self.spec.link_faults is not None:
            model = LinkFaultModel.from_config(self.spec.link_faults)
            core -= model.disruptive_processes(self.spec.processes)
        leavers: Dict[str, Set[str]] = {}
        memberships: List[Tuple[str, Tuple[str, ...]]] = [
            (group.group_id, group.members) for group in self.spec.groups
        ]
        for event in self.spec.events:
            if event.kind in ("crash", "isolate"):
                core -= set(event.targets)
            elif event.kind == "form_group":
                memberships.append((event.group, event.targets))
            elif event.kind == "leave":
                leavers.setdefault(event.group, set()).update(event.targets)
            elif event.kind == "partition":
                listed: Set[str] = set()
                components = [set(side) for side in event.components]
                for side in components:
                    listed |= side
                leftover = set(self.spec.processes) - listed
                if leftover:
                    components.append(leftover)
                core &= min(
                    components,
                    key=lambda side: (-len(side & core), tuple(sorted(side))),
                )
            elif event.kind == "drop":
                # A lossy window can trigger genuine (if one-sided) mutual
                # suspicion; be conservative about who must still agree.
                core -= set(event.src) | set(event.dst)
        return {
            group_id: sorted(
                member
                for member in members
                if member in core and member not in leavers.get(group_id, set())
            )
            for group_id, members in memberships
        }

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        """Install, run to the horizon, and evaluate the checkers.

        In offline mode the stack's post-hoc checkers run over the
        materialized trace; in online mode the verdict is read from the
        streaming suite that consumed every event as it was recorded.
        """
        session = self.session
        try:
            self._install()
            sim = session.sim
            if session.observation is not None:
                session.observation.ensure_sampling()
            sim.run(until=self.spec.horizon())
            session_result = session.result()
        finally:
            # Sinks (e.g. a JsonlSink) must be flushed even when the run or
            # a checker raises -- that is exactly when the dump matters.
            session.close()
        return ScenarioResult(
            name=self.spec.name,
            checks=session_result.checks,
            agreement_sets=self._agreement_sets,
            sim_time=session_result.sim_time,
            events_processed=session.sim.events_processed,
            deliveries=session_result.deliveries,
            messages_sent=session_result.messages_sent,
            delivery_events=session_result.delivery_events,
            compactions=session.sim.compactions,
            peak_pending_events=max(sample.pending_events for sample in self.samples),
            peak_live_pending_events=max(
                sample.live_pending_events for sample in self.samples
            ),
            samples=list(self.samples),
            analysis=self.analysis,
            trace_events=session_result.trace_events,
            trace_events_stored=session_result.trace_events_stored,
            metrics=session_result.metrics,
            stack=self.stack.name,
            skipped_events=list(self.skipped_events),
            workload=self._workload_stats(),
            latency_reservoir=self._latency_reservoir(),
            obs=session_result.obs,
            sink_errors=session_result.sink_errors,
        )

    def _latency_reservoir(self) -> Optional[LatencyReservoir]:
        """The run's exact delivery-latency reservoir.

        Profile workloads merge the per-group clients' reservoirs (each is
        exact over that client's admitted messages).  Closed-loop runs fall
        back to the online MetricsSink's reservoir, which samples every
        delivery; offline closed-loop runs have no streaming aggregate and
        return ``None``.
        """
        if self.clients:
            return LatencyReservoir.merged(client.latency for client in self.clients)
        sink = self.session.metrics_sink
        return sink.latency if sink is not None else None

    def _workload_stats(self) -> Optional[Dict[str, object]]:
        if not self.clients:
            return None
        stats: Dict[str, object] = dict(aggregate_counters(self.clients))
        stats["profile"] = self.spec.workload.profile
        stats["rate_per_group"] = self.spec.workload.rate
        # With extra load phases a group can host several clients; its
        # per_group entry then aggregates them (a single client keeps its
        # exact counters dict, preserving the historical shape).
        by_group: Dict[str, List[OpenLoopClient]] = {}
        for client in self.clients:
            by_group.setdefault(client.groups[0], []).append(client)
        stats["per_group"] = {
            group_id: (
                clients[0].counters()
                if len(clients) == 1
                else dict(aggregate_counters(clients))
            )
            for group_id, clients in by_group.items()
        }
        return stats


def run_scenario(
    config: Mapping,
    latency_model: Optional[LatencyModel] = None,
    analysis: str = "offline",
    sinks: Optional[List[TraceSink]] = None,
    stack: Union[str, ProtocolStack] = "newtop",
    on_unsupported: str = "raise",
    observe: object = None,
) -> ScenarioResult:
    """Parse a scenario config dict, run it on ``stack``, and return the
    result.  See :class:`ScenarioEngine` for the knobs."""
    spec = config if isinstance(config, ScenarioSpec) else from_config(config)
    return ScenarioEngine(
        spec,
        latency_model=latency_model,
        analysis=analysis,
        sinks=sinks,
        stack=stack,
        on_unsupported=on_unsupported,
        observe=observe,
    ).run()


def run_scenarios(
    configs: Sequence[Mapping],
    parallel: Optional[int] = None,
    timeout: Optional[float] = None,
    latency_model: Optional[LatencyModel] = None,
    analysis: str = "offline",
    stack: Union[str, ProtocolStack] = "newtop",
    on_unsupported: str = "raise",
    progress=None,
    observe: object = None,
) -> List[ScenarioResult]:
    """Run a batch of scenarios, optionally sharded across worker processes.

    Results come back in input order, one per config.  ``parallel=N``
    (N > 1) distributes the scenarios over a
    :class:`repro.parallel.ParallelExecutor` pool -- each scenario is an
    independent simulation whose randomness derives entirely from its
    spec's seed, so the batch's results are identical to a serial run
    (``progress``, if given, then observes completion order).  In pool
    mode ``stack`` must be a registry name (worker processes build their
    own instances) and ``timeout`` bounds each scenario's wall clock.

    A scenario whose worker crashes or times out raises
    :class:`ScenarioExecutionError` naming the casualty -- a batch is a
    unit of verification, and a silently missing shard would make "all
    checks passed" a lie.
    """
    configs = list(configs)
    if (parallel or 1) <= 1:
        results = []
        for config in configs:
            result = run_scenario(
                config,
                latency_model=latency_model,
                analysis=analysis,
                stack=stack,
                on_unsupported=on_unsupported,
                observe=observe,
            )
            results.append(result)
            if progress is not None:
                progress(result)
        return results
    if not isinstance(stack, str):
        raise ValueError(
            "parallel scenario batches need a stack registry name, not an instance"
        )

    def on_event(kind, unit_id, worker, payload) -> None:
        if kind == "done" and progress is not None and payload.ok:
            progress(payload.value)

    units = [
        WorkUnit(
            unit_id=f"scenario-{index:04d}",
            fn=run_scenario,
            args=(config,),
            kwargs={
                "latency_model": latency_model,
                "analysis": analysis,
                "stack": stack,
                "on_unsupported": on_unsupported,
                # Shipped as the raw coercible value (bool/str/dict): an
                # Observation instance holds simulator-bound callables and
                # would not survive the pickle boundary.
                "observe": observe if not isinstance(observe, Observation) else "full",
            },
        )
        for index, config in enumerate(configs)
    ]
    outcomes = run_units(units, parallel=parallel, timeout=timeout, on_event=on_event)
    bad = [
        (index, outcome) for index, outcome in enumerate(outcomes) if not outcome.ok
    ]
    if bad:
        failures = []
        for index, outcome in bad:
            config = configs[index]
            spec = config if isinstance(config, ScenarioSpec) else None
            if spec is None:
                try:
                    spec = from_config(config)
                except Exception:  # replay info is best-effort on bad configs
                    spec = None
            if spec is not None:
                name, seed = spec.name, spec.seed
            elif isinstance(config, Mapping):
                # The config would not even parse; salvage whatever identity
                # it carries so the failure row still names its replay seed.
                raw_name, raw_seed = config.get("name"), config.get("seed")
                name = str(raw_name) if raw_name is not None else None
                seed = raw_seed if isinstance(raw_seed, int) else None
            else:
                name = seed = None
            failures.append(
                ScenarioFailure(
                    unit_id=outcome.unit_id,
                    status=outcome.status,
                    error=str(outcome.error),
                    index=index,
                    name=name,
                    seed=seed,
                    config=to_config(spec) if spec is not None else config,
                )
            )
        worst = failures[0]
        raise ScenarioExecutionError(
            f"{len(failures)} of {len(outcomes)} scenarios did not complete; "
            f"first: {worst.unit_id} {worst.status}: {worst.error} "
            f"[name={worst.name!r} seed={worst.seed!r}; replay standalone with "
            f"repro.scenarios.run_scenario(failure.config)]",
            failures=failures,
        )
    return [outcome.value for outcome in outcomes]


@dataclass(frozen=True)
class ScenarioFailure:
    """One casualty of a parallel scenario batch, with everything needed to
    replay it standalone: ``run_scenario(failure.config)`` reproduces the
    exact simulation (the config carries the seed)."""

    unit_id: str
    status: str
    error: str
    #: Position of the scenario in the submitted batch.
    index: int
    name: Optional[str]
    seed: Optional[int]
    #: The scenario's canonical config dict (or the raw submitted config
    #: when it failed to parse).
    config: Mapping


class ScenarioExecutionError(RuntimeError):
    """A scenario in a parallel batch crashed, timed out or errored.

    :attr:`failures` lists every casualty as a :class:`ScenarioFailure`,
    each carrying the exact ``(seed, config)`` for standalone replay.
    """

    def __init__(self, message: str, failures: Sequence[ScenarioFailure] = ()) -> None:
        super().__init__(message)
        self.failures: List[ScenarioFailure] = list(failures)
