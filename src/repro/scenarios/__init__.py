"""Declarative large-scale scenario engine.

This package turns config dicts into verified simulation runs: a scenario
names its processes, its (possibly overlapping, possibly mixed-mode)
groups, a background workload, and a timed list of fault and membership
events -- churn, cascading partitions, merge storms, lossy windows,
sequencer migration.  The engine runs the scenario on a fresh
:class:`repro.api.Session` over any protocol stack, samples the runtime's
health while it runs, and evaluates the correctness predicates the stack's
guarantees claim (for Newtop: total order, view agreement, virtual
synchrony), deriving the per-group agreement sets from the event list
automatically.  Events the stack has no capability for raise
:class:`repro.api.UnsupportedScenarioEvent` (or are skipped with a
recorded warning under ``on_unsupported="skip"``).

Quick start::

    from repro.scenarios import churn_scenario, run_scenario

    result = run_scenario(churn_scenario(n_processes=100, n_groups=10))
    assert result.passed, result.checks.violations

    # The same scenario on a §6 baseline, verified per its own guarantees:
    result = run_scenario(
        churn_scenario(n_processes=100, n_groups=10),
        stack="fixed_sequencer", analysis="online", on_unsupported="skip",
    )

See :mod:`repro.scenarios.spec` for the config-dict format and
:mod:`repro.scenarios.library` for the ready-made scenario generators.
"""

from repro.scenarios.engine import (
    SCENARIO_PROTOCOL_DEFAULTS,
    RuntimeSample,
    ScenarioEngine,
    ScenarioExecutionError,
    ScenarioFailure,
    ScenarioResult,
    run_scenario,
    run_scenarios,
)
from repro.scenarios.report import VIOLATION_LIMIT, RollingReport
from repro.scenarios.library import (
    cascading_partitions_scenario,
    churn_scenario,
    merge_storm_scenario,
    migration_under_load_scenario,
    mixed_modes_scenario,
    ring_overlap_groups,
)
from repro.scenarios.spec import (
    FORMATION_WORKLOAD_GRACE,
    SCENARIO_SCHEMA_VERSION,
    GroupSpec,
    InvalidScenarioSpec,
    ScenarioConfigError,
    ScenarioEvent,
    ScenarioSpec,
    WorkloadSpec,
    from_config,
    to_config,
)

__all__ = [
    "FORMATION_WORKLOAD_GRACE",
    "SCENARIO_PROTOCOL_DEFAULTS",
    "SCENARIO_SCHEMA_VERSION",
    "RuntimeSample",
    "ScenarioEngine",
    "ScenarioExecutionError",
    "ScenarioFailure",
    "ScenarioResult",
    "RollingReport",
    "VIOLATION_LIMIT",
    "run_scenario",
    "run_scenarios",
    "cascading_partitions_scenario",
    "churn_scenario",
    "merge_storm_scenario",
    "migration_under_load_scenario",
    "mixed_modes_scenario",
    "ring_overlap_groups",
    "GroupSpec",
    "InvalidScenarioSpec",
    "ScenarioConfigError",
    "ScenarioEvent",
    "ScenarioSpec",
    "WorkloadSpec",
    "from_config",
    "to_config",
]
