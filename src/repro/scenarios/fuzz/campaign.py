"""The campaign runner: fan a seeded corpus across workers and tally.

:func:`run_campaign` runs corpus entries ``0..count-1`` of
``corpus_seed`` -- each regenerated *inside* its work unit from
``(corpus_seed, index)`` alone (cheap, deterministic, nothing big crosses
the pickle boundary) -- over :func:`repro.parallel.run_units`, with a
per-unit wall-clock timeout.  Outcomes stream into a
:class:`~repro.obs.metrics.MetricsRegistry` as they land (counters
``fuzz.pass`` / ``fuzz.violation`` / ``fuzz.stall`` / ``fuzz.crashed`` /
``fuzz.timeout``), so a long campaign's progress is observable while it
runs; the final :class:`CampaignReport` carries the same tallies plus
per-spec rows and full replay information for every failure.

A *violation* is a completed run whose checkers failed -- the signal the
fuzzer hunts.  A *stall* is a completed, checker-clean run that delivered
nothing despite offering traffic (liveness smoke, tracked separately: the
paper's guarantees are safety properties and some generated scenarios
legitimately stall a group).  *Crashed* / *timeout* are execution
casualties, reported with the same replay info -- an engine crash on a
generated spec is a bug worth a repro too.

Every failure is replayable standalone::

    python -m repro.scenarios.fuzz gen --seed S --index I | tail -1 > spec.json
    python -m repro.scenarios.fuzz replay spec.json

and with ``shrink_failures=True`` the campaign delta-debugs each
violation down to a locally-minimal config (see
:mod:`repro.scenarios.fuzz.shrink`) and -- when ``artifact_dir`` is set --
writes a replayable JSON artifact per casualty.
"""

from __future__ import annotations

import json
import os
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry
from repro.parallel import WorkUnit, run_units
from repro.scenarios.engine import run_scenario
from repro.scenarios.fuzz.generator import (
    GeneratorTuning,
    generate_config,
    generate_spec,
)
from repro.scenarios.fuzz.shrink import classify_violations, shrink_config

#: Schema stamp of the minimized-repro artifact JSON.
ARTIFACT_SCHEMA_VERSION = 1

#: Campaign outcome states, in reporting order.
STATUSES = ("pass", "violation", "stall", "crashed", "timeout")


def run_fuzz_unit(
    corpus_seed: int,
    index: int,
    tuning: Optional[Mapping[str, object]] = None,
    stack: str = "newtop",
) -> Dict[str, object]:
    """Run corpus entry ``(corpus_seed, index)`` and return its row.

    Module-level and argument-picklable: this is the function the pool
    workers import and call.  The spec is regenerated here, in the worker.
    """
    spec = generate_spec(corpus_seed, index, GeneratorTuning.from_config(tuning))
    result = run_scenario(spec, stack=stack)
    violations = list(result.checks.violations)
    if violations:
        status = "violation"
    elif result.deliveries == 0 and result.messages_sent > 0:
        status = "stall"
    else:
        status = "pass"
    return {
        "index": index,
        "name": spec.name,
        "seed": spec.seed,
        "status": status,
        "violation_kind": classify_violations(violations),
        "violations": violations[:5],
        "events": len(spec.events),
        "processes": len(spec.processes),
        "groups": len(spec.groups),
        "deliveries": result.deliveries,
        "messages_sent": result.messages_sent,
        "sim_time": round(result.sim_time, 3),
    }


@dataclass
class FuzzFailure:
    """One campaign casualty with everything needed to reproduce it."""

    index: int
    #: ``violation`` / ``stall`` / ``crashed`` / ``timeout``.
    status: str
    #: Checker violations (violations only; first few).
    violations: List[str] = field(default_factory=list)
    violation_kind: Optional[str] = None
    #: Executor diagnosis for crashed/timeout casualties.
    error: Optional[str] = None
    #: The regenerated spec config -- ``run_scenario(failure.config)``
    #: replays the exact simulation.
    config: Dict[str, object] = field(default_factory=dict)
    #: Locally-minimal reproducing config (violations only, when the
    #: campaign ran with ``shrink_failures=True``).
    minimized: Optional[Dict[str, object]] = None
    shrink_runs: int = 0
    #: Full journeys of the messages the violations implicate (the
    #: shrinker's explain-the-violation replay; see
    #: :func:`repro.scenarios.fuzz.shrink.explain_journeys`).
    journeys: List[Dict[str, object]] = field(default_factory=list)
    #: Path of the written artifact JSON (``artifact_dir`` was set).
    artifact: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "index": self.index,
            "status": self.status,
            "violation_kind": self.violation_kind,
            "violations": list(self.violations),
            "error": self.error,
            "config": self.config,
        }
        if self.minimized is not None:
            row["minimized"] = self.minimized
            row["shrink_runs"] = self.shrink_runs
        if self.journeys:
            row["journeys"] = list(self.journeys)
        if self.artifact is not None:
            row["artifact"] = self.artifact
        return row


@dataclass
class CampaignReport:
    """Everything one fuzz campaign produced."""

    corpus_seed: int
    count: int
    tuning: Dict[str, object]
    stack: str
    #: Outcome tallies keyed by :data:`STATUSES`.
    tallies: Dict[str, int]
    #: Per-spec rows in corpus order (casualty rows carry the diagnosis).
    rows: List[Dict[str, object]]
    failures: List[FuzzFailure]
    wall_seconds: float
    #: Campaign throughput at this scale (the ROADMAP's measured number).
    specs_per_minute: float
    #: Snapshot of the streaming campaign counters.
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """Zero violations and zero execution casualties (stalls are
        tracked but do not fail the campaign -- see the module notes)."""
        return all(
            self.tallies[status] == 0 for status in ("violation", "crashed", "timeout")
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": ARTIFACT_SCHEMA_VERSION,
            "corpus_seed": self.corpus_seed,
            "count": self.count,
            "tuning": self.tuning,
            "stack": self.stack,
            "tallies": dict(self.tallies),
            "passed": self.passed,
            "wall_seconds": round(self.wall_seconds, 3),
            "specs_per_minute": round(self.specs_per_minute, 2),
            "failures": [failure.as_dict() for failure in self.failures],
            "rows": self.rows,
            "metrics": self.metrics,
        }


def write_artifact(path: str, failure: FuzzFailure, corpus_seed: int) -> None:
    """Write one casualty's replayable JSON artifact."""
    payload = {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "kind": "fuzz-repro",
        "corpus_seed": corpus_seed,
        "index": failure.index,
        "status": failure.status,
        "violation_kind": failure.violation_kind,
        "violations": list(failure.violations),
        "error": failure.error,
        #: The spec to replay: minimized when the shrinker ran, else the
        #: full generated config.
        "spec": failure.minimized if failure.minimized is not None else failure.config,
        "original": failure.config,
        "shrink_runs": failure.shrink_runs,
        #: Journeys of the messages the violations name: created / sent /
        #: held / sequenced / delivered transitions from the exact replay.
        "journeys": list(failure.journeys),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def run_campaign(
    corpus_seed: int,
    count: int,
    tuning: Optional[GeneratorTuning] = None,
    parallel: Optional[int] = None,
    timeout: Optional[float] = 120.0,
    stack: str = "newtop",
    shrink_failures: bool = True,
    max_shrink: int = 3,
    shrink_budget: int = 120,
    artifact_dir: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> CampaignReport:
    """Run corpus entries ``0..count-1`` of ``corpus_seed`` and tally.

    ``parallel=N`` shards the corpus over a worker pool with ``timeout``
    bounding each unit's wall clock; the report is identical to a serial
    run (every spec regenerates from its ``(corpus_seed, index)``).
    ``progress`` observes each finished row; ``registry`` (or an internal
    one) streams the ``fuzz.*`` tallies while the campaign runs.  Up to
    ``max_shrink`` violations are delta-debugged afterwards
    (``shrink_budget`` scenario runs each); with ``artifact_dir`` every
    casualty gets a replayable artifact JSON.
    """
    tuning = GeneratorTuning.from_config(tuning)
    registry = registry if registry is not None else MetricsRegistry()
    counters = {status: registry.counter(f"fuzz.{status}") for status in STATUSES}
    wall_start = _time.time()
    tuning_config = tuning.to_config()

    def observe_row(row: Dict[str, object]) -> None:
        counters[row["status"]].value += 1
        if progress is not None:
            progress(row)

    def on_event(kind, unit_id, worker, payload) -> None:
        if kind == "done" and payload.ok:
            observe_row(payload.value)

    units = [
        WorkUnit(
            unit_id=f"fuzz-{corpus_seed}-{index:05d}",
            fn=run_fuzz_unit,
            args=(corpus_seed, index),
            kwargs={"tuning": tuning_config, "stack": stack},
        )
        for index in range(count)
    ]
    serial = (parallel or 1) <= 1
    outcomes = run_units(
        units,
        parallel=parallel,
        timeout=timeout,
        on_event=None if serial else on_event,
    )

    rows: List[Dict[str, object]] = []
    failures: List[FuzzFailure] = []
    for index, outcome in enumerate(outcomes):
        if outcome.ok:
            row = dict(outcome.value)
            if serial:
                observe_row(row)
            rows.append(row)
            if row["status"] in ("violation", "stall"):
                failures.append(
                    FuzzFailure(
                        index=index,
                        status=row["status"],
                        violations=list(row["violations"]),
                        violation_kind=row["violation_kind"],
                        config=generate_config(corpus_seed, index, tuning),
                    )
                )
            continue
        status = outcome.status if outcome.status in STATUSES else "crashed"
        row = {
            "index": index,
            "status": status,
            "error": outcome.error,
            "violations": [],
            "violation_kind": None,
        }
        if serial:
            observe_row(row)
        else:
            # Pool mode streams only successful units through on_event.
            counters[status].value += 1
            if progress is not None:
                progress(row)
        rows.append(row)
        failures.append(
            FuzzFailure(
                index=index,
                status=status,
                error=outcome.error,
                config=generate_config(corpus_seed, index, tuning),
            )
        )

    if shrink_failures:
        shrunk = 0
        for failure in failures:
            if failure.status != "violation" or shrunk >= max_shrink:
                continue
            result = shrink_config(
                failure.config,
                violation_kind=failure.violation_kind,
                max_runs=shrink_budget,
                stack=stack,
            )
            failure.minimized = result.config
            failure.shrink_runs = result.runs
            if result.violations:
                failure.violations = list(result.violations)
            failure.journeys = list(result.journeys)
            shrunk += 1

    if artifact_dir is not None and failures:
        os.makedirs(artifact_dir, exist_ok=True)
        for failure in failures:
            path = os.path.join(
                artifact_dir,
                f"fuzz-{corpus_seed}-{failure.index:05d}-{failure.status}.json",
            )
            write_artifact(path, failure, corpus_seed)
            failure.artifact = path

    wall = _time.time() - wall_start
    tallies = {status: counters[status].value for status in STATUSES}
    return CampaignReport(
        corpus_seed=corpus_seed,
        count=count,
        tuning=tuning_config,
        stack=stack,
        tallies=tallies,
        rows=rows,
        failures=failures,
        wall_seconds=wall,
        specs_per_minute=(count / wall * 60.0) if wall > 0 else 0.0,
        metrics=registry.snapshot(),
    )


def replay_artifact(path: str, stack: str = "newtop") -> Dict[str, object]:
    """Replay a fuzz artifact (or bare spec config) JSON file.

    Returns a verdict row: the replayed violations, their kind, and --
    for full artifacts -- whether the recorded violation kind reproduced.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, Mapping) and "spec" in payload:
        config = payload["spec"]
        expected = payload.get("violation_kind")
    else:
        config = payload
        expected = None
    result = run_scenario(config, stack=stack)
    violations = list(result.checks.violations)
    kind = classify_violations(violations)
    return {
        "path": path,
        "passed": result.passed,
        "violations": violations[:5],
        "violation_kind": kind,
        "expected_kind": expected,
        #: ``None`` for bare spec configs (nothing was recorded to match).
        "reproduced": (kind == expected) if expected is not None else None,
        "deliveries": result.deliveries,
        "sim_time": round(result.sim_time, 3),
    }
