"""Seeded scenario generation: the fuzzer's input space.

:func:`generate_spec` composes a random-but-valid
:class:`~repro.scenarios.spec.ScenarioSpec` from the full scenario event
vocabulary -- churn (crashes, correlated crash bursts, voluntary leaves),
partitions with delayed heals, permanent isolations, lossy drop windows,
dynamic §5.3 group formations -- plus workload shape (closed-loop rounds
or open-loop profiles, with optional extra load-phase bursts), latency-
model swaps and probabilistic link-fault models.  All randomness derives
from ``random.Random(f"{corpus_seed}:{index}")``, so a spec is
byte-reproducible from the pair ``(corpus_seed, index)`` alone -- the
campaign runner regenerates specs inside pool workers and the shrinker
regenerates them from a failure report, no pickled spec ever travels.

Every generated config goes through the strict
:func:`~repro.scenarios.spec.from_config` validation; generation bugs
surface as :class:`~repro.scenarios.spec.InvalidScenarioSpec`, never as a
mid-run crash that would be indistinguishable from a protocol bug.

The *healthy envelope*
----------------------
The campaign's oracle is "the protocol's own checkers find no violation",
so the generator must stay inside the envelope where a correct stack is
*expected* to pass.  Two rules keep it there (both established
empirically against the unmutated stack):

* A partition heals only after the suspicion machinery has fully resolved
  it (``HEAL_SLACK`` past the suspicion timeout), or never.  Healing
  mid-agreement loses in-flight cross-partition messages while views
  never change -- a *model* violation, not a protocol bug.
* Default latency swaps are bounded-tail (constant / uniform / lognormal
  with small sigma) and scaled so the suspicion timeout keeps healthy
  slack; the unbounded exponential tail would produce false suspicion of
  live processes.

Weights and budgets are tunable via :class:`GeneratorTuning` -- the
mutation-harness tests narrow them to aim the generator at a known bug's
trigger shape, and ``tuning.protocol`` injects protocol overrides (e.g.
disabling the asymmetric view-cut marker) into every generated spec.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scenarios.spec import ScenarioSpec, from_config

#: Relative likelihood of each event kind the generator draws.  ``drop``
#: (the one-directional lossy window) defaults to a small weight: it is in
#: the vocabulary, but long one-sided loss is the most model-hostile event
#: and earns proportionally less of the budget.
DEFAULT_EVENT_WEIGHTS: Mapping[str, float] = {
    "crash": 3.0,
    "correlated_crash": 1.0,
    "leave": 1.5,
    "partition": 1.5,
    "isolate": 1.0,
    "form_group": 1.0,
    "drop": 0.5,
}

#: Extra settling time past the scenario suspicion timeout (6.0) before a
#: partition may heal -- see the healthy-envelope notes above.
HEAL_SLACK = 6.0

#: Bounded-tail latency swap menu: (model, option ranges).  Exponential is
#: deliberately absent (unbounded tail => false suspicion of live
#: processes under the scenario protocol defaults).
_LATENCY_MENU: Tuple[Tuple[str, Mapping[str, Tuple[float, float]]], ...] = (
    ("constant", {"delay": (0.3, 1.2)}),
    ("uniform", {"low": (0.2, 0.6), "high": (1.0, 2.0)}),
    ("lognormal", {"median": (0.5, 1.1), "sigma": (0.15, 0.35)}),
)

_OPEN_LOOP_PROFILES = ("poisson", "bursty", "uniform")


@dataclass(frozen=True)
class GeneratorTuning:
    """Weights and scale budgets for :func:`generate_spec`.

    The defaults describe the *healthy-envelope* smoke corpus (the CI gate
    expects zero violations from it); tests narrow the ranges to target a
    specific bug shape.  The whole object round-trips through
    :meth:`to_config` / :meth:`from_config` so it can ride to pool workers
    as a plain dict.
    """

    #: Process-count budget (inclusive range).
    min_processes: int = 5
    max_processes: int = 10
    #: Static group-count budget (at least 1).
    max_groups: int = 3
    min_group_size: int = 3
    max_group_size: int = 6
    #: Fault/membership event budget per spec (the generator may draw
    #: fewer when the envelope rules run out of eligible targets).
    max_events: int = 6
    #: Relative event-kind likelihoods (missing kinds get weight 0).
    event_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_EVENT_WEIGHTS)
    )
    #: Probability a group is asymmetric (sequencer-based) ordering.
    asymmetric_probability: float = 0.5
    #: Probability the primary workload is an open-loop profile.
    open_loop_probability: float = 0.5
    #: Probability of appending one extra open-loop load-phase burst.
    load_phase_probability: float = 0.3
    #: Probability of swapping the latency model (bounded-tail menu).
    latency_swap_probability: float = 0.25
    #: Probability of attaching a link-fault model.
    link_fault_probability: float = 0.25
    #: Per-message fault-rate ceilings for generated link-fault models.
    #: Drop defaults to 0: message loss outside crash/partition breaks the
    #: paper's reliable-FIFO transport assumption, so the healthy corpus
    #: keeps it off; raise it deliberately to explore out-of-model runs.
    link_fault_drop_max: float = 0.0
    link_fault_reorder_max: float = 0.15
    link_fault_duplicate_max: float = 0.15
    #: Open-loop rate range (multicast attempts / time unit per group).
    rate_range: Tuple[float, float] = (1.0, 4.0)
    #: Open-loop client window range.
    duration_range: Tuple[float, float] = (14.0, 24.0)
    #: Senders per group (inclusive range; closed- and open-loop).
    senders_range: Tuple[int, int] = (2, 3)
    #: Closed-loop rounds per sender (inclusive range).
    rounds_range: Tuple[int, int] = (2, 4)
    #: Time window fault/membership events are drawn from.
    event_window: Tuple[float, float] = (3.0, 10.0)
    #: Settling time after the last send/event before checking.
    drain: float = 40.0
    #: Protocol overrides stamped into every generated spec (merged over
    #: the scenario defaults by the engine).  The mutation harness injects
    #: its bug toggle here.
    protocol: Mapping[str, object] = field(default_factory=dict)

    def to_config(self) -> Dict[str, object]:
        """Plain-dict form (picklable / JSON-shaped)."""
        config = asdict(self)
        config["event_weights"] = dict(self.event_weights)
        config["protocol"] = dict(self.protocol)
        return config

    @classmethod
    def from_config(cls, config: Optional[Mapping[str, object]]) -> "GeneratorTuning":
        if config is None:
            return cls()
        if isinstance(config, cls):
            return config
        kwargs = dict(config)
        for key in ("rate_range", "duration_range", "senders_range",
                    "rounds_range", "event_window"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


def spec_rng(corpus_seed: int, index: int) -> random.Random:
    """The dedicated RNG for corpus entry ``(corpus_seed, index)``."""
    return random.Random(f"{corpus_seed}:{index}")


def _weighted_kind(rng: random.Random, weights: Mapping[str, float]) -> Optional[str]:
    kinds = [kind for kind, weight in sorted(weights.items()) if weight > 0]
    if not kinds:
        return None
    totals = [weights[kind] for kind in kinds]
    return rng.choices(kinds, weights=totals, k=1)[0]


def _groups(
    rng: random.Random, tuning: GeneratorTuning, processes: Sequence[str]
) -> List[Dict[str, object]]:
    count = rng.randint(1, max(1, tuning.max_groups))
    groups: List[Dict[str, object]] = []
    for index in range(count):
        size = rng.randint(
            min(tuning.min_group_size, len(processes)),
            min(tuning.max_group_size, len(processes)),
        )
        members = rng.sample(list(processes), size)
        mode = (
            "asymmetric"
            if rng.random() < tuning.asymmetric_probability
            else "symmetric"
        )
        groups.append({"id": f"g{index:02d}", "members": members, "mode": mode})
    return groups


def _workload(rng: random.Random, tuning: GeneratorTuning) -> Dict[str, object]:
    senders = rng.randint(*tuning.senders_range)
    if rng.random() < tuning.open_loop_probability:
        return {
            "profile": rng.choice(_OPEN_LOOP_PROFILES),
            "rate": round(rng.uniform(*tuning.rate_range), 2),
            "duration": round(rng.uniform(*tuning.duration_range), 1),
            "senders_per_group": senders,
            "start": 1.0,
        }
    return {
        "messages_per_sender": rng.randint(*tuning.rounds_range),
        "senders_per_group": senders,
        "gap": round(rng.uniform(1.5, 2.5), 2),
        "start": 1.0,
    }


def _load_phase(
    rng: random.Random, tuning: GeneratorTuning, after: float
) -> Dict[str, object]:
    return {
        "profile": rng.choice(_OPEN_LOOP_PROFILES),
        "rate": round(rng.uniform(*tuning.rate_range), 2),
        "duration": round(rng.uniform(5.0, 10.0), 1),
        "senders_per_group": rng.randint(*tuning.senders_range),
        "start": round(after + 1.0, 2),
    }


def _latency(rng: random.Random) -> Dict[str, object]:
    model, option_ranges = rng.choice(_LATENCY_MENU)
    config: Dict[str, object] = {"model": model}
    for option, bounds in sorted(option_ranges.items()):
        config[option] = round(rng.uniform(*bounds), 3)
    if model == "uniform" and config["high"] <= config["low"]:
        config["high"] = config["low"] + 0.5
    return config


def _link_faults(
    rng: random.Random, tuning: GeneratorTuning, processes: Sequence[str]
) -> Optional[Dict[str, object]]:
    faults: Dict[str, object] = {"seed": rng.randrange(2**16)}
    if tuning.link_fault_duplicate_max > 0 and rng.random() < 0.8:
        faults["duplicate"] = round(rng.uniform(0.01, tuning.link_fault_duplicate_max), 3)
    if tuning.link_fault_reorder_max > 0 and rng.random() < 0.6:
        faults["reorder"] = round(rng.uniform(0.01, tuning.link_fault_reorder_max), 3)
    if tuning.link_fault_drop_max > 0 and rng.random() < 0.5:
        faults["drop"] = round(rng.uniform(0.005, tuning.link_fault_drop_max), 3)
    if len(faults) == 1:  # seed only -- no rates drawn
        return None
    if rng.random() < 0.3 and len(processes) >= 2:
        # Confine the faults to one directed link instead of the fabric.
        src, dst = rng.sample(list(processes), 2)
        link = {key: faults.pop(key) for key in ("drop", "reorder", "duplicate")
                if key in faults}
        faults["links"] = [{"src": [src], "dst": [dst], **link}]
    return faults


def _events(
    rng: random.Random,
    tuning: GeneratorTuning,
    processes: Sequence[str],
    groups: Sequence[Mapping[str, object]],
) -> List[Dict[str, object]]:
    events: List[Dict[str, object]] = []
    removed: set = set()  # crashed / isolated / departed processes
    #: Cap on removals: keep a majority of the process set alive so every
    #: scenario retains a meaningful stable core.
    removal_budget = max(1, len(processes) // 2)
    partitioned = False
    formed = 0
    count = rng.randint(1, max(1, tuning.max_events))
    for _ in range(count):
        kind = _weighted_kind(rng, tuning.event_weights)
        if kind is None:
            break
        time = round(rng.uniform(*tuning.event_window), 2)
        alive = [name for name in processes if name not in removed]
        if kind in ("crash", "correlated_crash", "isolate", "leave") and (
            len(removed) >= removal_budget or len(alive) <= 3
        ):
            continue
        if kind == "crash":
            target = rng.choice(alive)
            events.append({"time": time, "kind": "crash", "targets": [target]})
            removed.add(target)
        elif kind == "correlated_crash":
            # A correlated failure: several members of one group crash at
            # the same instant (a rack/site loss, not independent churn).
            group = rng.choice(list(groups))
            live_members = [m for m in group["members"] if m not in removed]
            if len(live_members) < 2:
                continue
            burst = rng.sample(
                live_members,
                min(rng.randint(2, 3), len(live_members),
                    removal_budget - len(removed)),
            )
            if len(burst) < 2:
                continue
            events.append({"time": time, "kind": "crash", "targets": sorted(burst)})
            removed.update(burst)
        elif kind == "leave":
            group = rng.choice(list(groups))
            live_members = [m for m in group["members"] if m not in removed]
            if not live_members:
                continue
            target = rng.choice(live_members)
            events.append(
                {"time": time, "kind": "leave", "targets": [target],
                 "group": group["id"]}
            )
        elif kind == "isolate":
            target = rng.choice(alive)
            events.append({"time": time, "kind": "isolate", "targets": [target]})
            removed.add(target)
        elif kind == "partition":
            if partitioned or len(alive) < 4:
                continue  # at most one partition window per spec
            partitioned = True
            minority = rng.sample(alive, rng.randint(1, len(alive) // 2))
            events.append(
                {"time": time, "kind": "partition", "components": [sorted(minority)]}
            )
            # Healthy envelope: heal only after the suspicion machinery has
            # fully resolved the split (or never).
            if rng.random() < 0.6:
                heal_at = time + 6.0 + HEAL_SLACK + rng.uniform(0.0, 4.0)
                events.append({"time": round(heal_at, 2), "kind": "heal"})
        elif kind == "drop":
            if len(alive) < 2:
                continue
            src, dst = rng.sample(alive, 2)
            events.append(
                {"time": time, "kind": "drop", "src": [src], "dst": [dst],
                 "duration": round(6.0 + HEAL_SLACK + rng.uniform(0.0, 4.0), 2)}
            )
        elif kind == "form_group":
            if len(alive) < 2:
                continue
            members = rng.sample(alive, min(rng.randint(2, 4), len(alive)))
            events.append(
                {"time": round(rng.uniform(3.0, 8.0), 2), "kind": "form_group",
                 "group": f"fz{formed}", "targets": sorted(members)}
            )
            formed += 1
    return events


def generate_config(
    corpus_seed: int, index: int, tuning: Optional[GeneratorTuning] = None
) -> Dict[str, object]:
    """Generate corpus entry ``(corpus_seed, index)`` as a config dict."""
    tuning = GeneratorTuning.from_config(tuning)
    rng = spec_rng(corpus_seed, index)
    process_count = rng.randint(tuning.min_processes, tuning.max_processes)
    processes = [f"P{position:03d}" for position in range(1, process_count + 1)]
    groups = _groups(rng, tuning, processes)
    workload = _workload(rng, tuning)
    events = _events(rng, tuning, processes, groups)
    config: Dict[str, object] = {
        "schema": 1,
        "name": f"fuzz-{corpus_seed}-{index}",
        "seed": rng.randrange(2**31),
        "processes": processes,
        "groups": groups,
        "workload": workload,
        "events": events,
        "drain": tuning.drain,
    }
    if tuning.protocol:
        config["protocol"] = dict(tuning.protocol)
    if rng.random() < tuning.load_phase_probability:
        # The extra burst starts after the primary window; from_config
        # validates non-overlap, so compute the primary end here.
        spec_so_far = from_config(config)
        config["load_phases"] = [
            _load_phase(rng, tuning, after=spec_so_far.workload.window()[1])
        ]
    if rng.random() < tuning.latency_swap_probability:
        config["latency"] = _latency(rng)
    if rng.random() < tuning.link_fault_probability:
        link_faults = _link_faults(rng, tuning, processes)
        if link_faults is not None:
            config["link_faults"] = link_faults
    return config


def generate_spec(
    corpus_seed: int, index: int, tuning: Optional[GeneratorTuning] = None
) -> ScenarioSpec:
    """Generate and validate corpus entry ``(corpus_seed, index)``."""
    return from_config(generate_config(corpus_seed, index, tuning))
