"""``repro.scenarios.fuzz`` -- checker-oracle scenario fuzzing.

The protocol's correctness predicates (total order MD4/MD4', causality,
view agreement VC1, virtual synchrony) double as a *test oracle*: any
scenario the generator can express is a test case, and "the checkers
found a violation" is a failure -- no expected output needs writing.
This package turns that into a practical fuzzer in three parts:

* :mod:`~repro.scenarios.fuzz.generator` -- seeded composition of valid
  :class:`~repro.scenarios.spec.ScenarioSpec` configs from the full event
  vocabulary (churn, partitions + delayed heals, isolations, drop
  windows, §5.3 formations, open-loop bursts, latency swaps, link
  faults) under tunable :class:`GeneratorTuning` weights and budgets;
  every spec is byte-reproducible from ``(corpus_seed, index)``.
* :mod:`~repro.scenarios.fuzz.campaign` -- fans a corpus across
  :mod:`repro.parallel` workers with per-unit timeouts, streams
  pass/violation/stall/crash/timeout tallies through a
  :class:`~repro.obs.metrics.MetricsRegistry`, and reports every failure
  with full standalone-replay information.
* :mod:`~repro.scenarios.fuzz.shrink` -- delta-debugs a failing config
  (events, processes, groups, load phases) to a locally-minimal repro
  that still violates the *same* checker kind, written as a JSON
  artifact replayable via ``python -m repro.scenarios.fuzz replay``.

Quick start::

    from repro.scenarios.fuzz import run_campaign

    report = run_campaign(corpus_seed=7, count=50, parallel=4)
    assert report.passed, report.failures[0].violations

    # CLI equivalents:
    #   python -m repro.scenarios.fuzz run --seed 7 --count 50 --parallel 4
    #   python -m repro.scenarios.fuzz gen --seed 7 --index 3
    #   python -m repro.scenarios.fuzz replay artifacts/fuzz-7-00003-violation.json
"""

from repro.scenarios.fuzz.campaign import (
    ARTIFACT_SCHEMA_VERSION,
    CampaignReport,
    FuzzFailure,
    replay_artifact,
    run_campaign,
    run_fuzz_unit,
    write_artifact,
)
from repro.scenarios.fuzz.generator import (
    DEFAULT_EVENT_WEIGHTS,
    GeneratorTuning,
    generate_config,
    generate_spec,
    spec_rng,
)
from repro.scenarios.fuzz.shrink import (
    VIOLATION_KINDS,
    ShrinkResult,
    classify_violations,
    explain_journeys,
    implicated_message_ids,
    shrink_config,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "DEFAULT_EVENT_WEIGHTS",
    "VIOLATION_KINDS",
    "CampaignReport",
    "FuzzFailure",
    "GeneratorTuning",
    "ShrinkResult",
    "classify_violations",
    "explain_journeys",
    "generate_config",
    "generate_spec",
    "implicated_message_ids",
    "replay_artifact",
    "run_campaign",
    "run_fuzz_unit",
    "shrink_config",
    "spec_rng",
    "write_artifact",
]
