"""Delta-debugging shrinker: a failing spec down to a locally-minimal repro.

Given a scenario config whose run produced checker violations,
:func:`shrink_config` searches for the smallest config that still
reproduces a violation of the *same kind* (total order, causality,
virtual synchrony, view agreement, view-scoped delivery -- see
:func:`classify_violations`).  Matching on the kind rather than the exact
violation string is what lets the spec shrink at all: removing events
renumbers views and message ids, so the string always changes while the
bug stays the same.

The search runs four reduction passes to a fixpoint under one run budget:

1. **events** -- classic ddmin over the event list (chunked removal with
   progressively finer granularity);
2. **load phases** -- greedy removal;
3. **groups** -- greedy removal (events referencing a removed group are
   dropped with it);
4. **processes** -- greedy removal (the process is scrubbed from group
   memberships, event targets/src/dst/partition components; anything the
   removal invalidates is dropped).

Every candidate is re-validated through the strict
:func:`~repro.scenarios.spec.from_config` before it is run -- an invalid
candidate is simply *not a candidate*, so the shrinker can propose
aggressive cuts without tracking cross-references itself.  Candidate runs
that crash the engine count against the budget but never count as
reproducing.

The result is *locally* minimal: no single remaining event, phase, group
or process can be removed without losing the violation kind.
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scenarios.engine import run_scenario
from repro.scenarios.spec import InvalidScenarioSpec, from_config

#: Violation-kind classification, by distinctive checker-message fragment.
#: Order matters: the first matching fragment names the kind.
VIOLATION_KINDS: Tuple[Tuple[str, str], ...] = (
    ("virtual synchrony violated", "virtual-synchrony"),
    ("view sequences differ", "view-agreement"),
    ("total order violated", "total-order"),
    ("causally preceding", "causality"),
    ("outside its view", "view-delivery"),
)


def classify_violations(violations: Sequence[str]) -> Optional[str]:
    """The kind of the first recognized violation (``None`` when clean)."""
    for violation in violations:
        for fragment, kind in VIOLATION_KINDS:
            if fragment in violation:
                return kind
    return "other" if violations else None


#: Message ids as the checkers print them: ``<sender>#<counter>``.
_MSG_ID_RE = re.compile(r"[A-Za-z_][\w.\-]*#\d+")


def implicated_message_ids(violations: Sequence[str]) -> List[str]:
    """Message ids named by checker violation strings, deduplicated in
    first-mention order (the order the checkers reported them)."""
    seen: List[str] = []
    for violation in violations:
        for msg_id in _MSG_ID_RE.findall(violation):
            if msg_id not in seen:
                seen.append(msg_id)
    return seen


def explain_journeys(
    config: Mapping,
    violations: Sequence[str],
    stack: str = "newtop",
    max_messages: int = 8,
) -> List[Dict[str, object]]:
    """Re-run ``config`` with journey tracing pinned to the messages the
    ``violations`` name, and return their full journeys.

    The replay is deterministic (same spec, same seed), so the journeys
    describe exactly the run that violated -- created / sent / held /
    sequenced / delivered transitions with simulated timestamps.  Returns
    ``[]`` when no violation names a message id, or on replay failure
    (explanations are best-effort evidence, never a second crash).
    """
    force_ids = implicated_message_ids(violations)[:max_messages]
    if not force_ids:
        return []
    try:
        result = run_scenario(
            config,
            stack=stack,
            observe={
                "sampler": False,
                "journeys": True,
                "journey_force_ids": force_ids,
                # Only the pinned ids: 1-in-2^32 background sampling.
                "journey_sample_rate": 1 << 32,
            },
        )
    except Exception:
        return []
    obs = result.obs or {}
    block = obs.get("journeys") or {}
    return list(block.get("forced") or [])


@dataclass
class ShrinkResult:
    """Outcome of one shrink search."""

    #: The locally-minimal reproducing config.
    config: Dict[str, object]
    #: The violation kind every kept candidate reproduced.
    violation_kind: str
    #: Violations of the final minimal run (evidence for the artifact).
    violations: List[str] = field(default_factory=list)
    #: Scenario runs spent (including non-reproducing and crashed ones).
    runs: int = 0
    #: (events, processes, groups, load_phases) before and after.
    original_size: Tuple[int, int, int, int] = (0, 0, 0, 0)
    final_size: Tuple[int, int, int, int] = (0, 0, 0, 0)
    #: True when the run budget expired before reaching a fixpoint.
    budget_exhausted: bool = False
    #: Full journeys of the messages the final violations implicate
    #: (:func:`explain_journeys` over the minimal config; empty when no
    #: violation names a message or a custom oracle ran the search).
    journeys: List[Dict[str, object]] = field(default_factory=list)


def _size(config: Mapping) -> Tuple[int, int, int, int]:
    return (
        len(config.get("events", ())),
        len(config.get("processes", ())),
        len(config.get("groups", ())),
        len(config.get("load_phases", ())),
    )


def _without_group(config: Dict, group_id: str) -> Dict:
    candidate = copy.deepcopy(config)
    candidate["groups"] = [
        group for group in candidate["groups"] if group["id"] != group_id
    ]
    candidate["events"] = [
        event for event in candidate.get("events", ())
        if event.get("group") != group_id
    ]
    return candidate


def _without_process(config: Dict, name: str) -> Dict:
    candidate = copy.deepcopy(config)
    candidate["processes"] = [p for p in candidate["processes"] if p != name]
    groups = []
    for group in candidate["groups"]:
        members = [m for m in group["members"] if m != name]
        if len(members) >= 2:
            groups.append({**group, "members": members})
    candidate["groups"] = groups
    kept_groups = {group["id"] for group in groups}
    events = []
    for event in candidate.get("events", ()):
        event = dict(event)
        for key in ("targets", "src", "dst"):
            if key in event:
                event[key] = [p for p in event[key] if p != name]
        if "components" in event:
            components = [
                [p for p in side if p != name] for side in event["components"]
            ]
            event["components"] = [side for side in components if side]
        kind = event["kind"]
        if kind in ("crash", "isolate", "leave") and not event.get("targets"):
            continue
        if kind == "leave" and event.get("group") not in kept_groups | {
            e.get("group") for e in candidate.get("events", ())
            if e.get("kind") == "form_group"
        }:
            continue
        if kind == "form_group" and len(event.get("targets", ())) < 2:
            continue
        if kind == "partition" and not event.get("components"):
            continue
        if kind == "drop" and (not event.get("src") or not event.get("dst")):
            continue
        events.append(event)
    candidate["events"] = events
    return candidate


def shrink_config(
    config: Mapping,
    violation_kind: Optional[str] = None,
    max_runs: int = 120,
    run: Optional[Callable[[Mapping], Sequence[str]]] = None,
    stack: str = "newtop",
) -> ShrinkResult:
    """Shrink ``config`` while a violation of ``violation_kind`` persists.

    ``violation_kind`` defaults to whatever one initial run of ``config``
    produces (raising ``ValueError`` if that run is clean -- there is
    nothing to shrink).  ``run`` overrides the oracle (tests use it to
    count invocations); the default runs the scenario on ``stack`` and
    returns its checker violations.
    """
    state = {"runs": 0, "exhausted": False}

    def oracle(candidate: Mapping) -> Sequence[str]:
        state["runs"] += 1
        if run is not None:
            return run(candidate)
        return run_scenario(candidate, stack=stack).checks.violations

    def reproduces(candidate: Mapping) -> Tuple[bool, List[str]]:
        if state["runs"] >= max_runs:
            state["exhausted"] = True
            return False, []
        try:
            from_config(candidate)
        except InvalidScenarioSpec:
            return False, []
        try:
            violations = list(oracle(candidate))
        except Exception:
            return False, []
        return classify_violations(violations) == violation_kind, violations

    current: Dict[str, object] = copy.deepcopy(dict(config))
    if violation_kind is None:
        initial = list(oracle(current))
        violation_kind = classify_violations(initial)
        if violation_kind is None:
            raise ValueError("config runs clean; nothing to shrink")
        best_violations = initial
    else:
        best_violations = []
    original_size = _size(current)

    def try_keep(candidate: Dict[str, object]) -> bool:
        nonlocal current, best_violations
        ok, violations = reproduces(candidate)
        if ok:
            current = candidate
            best_violations = list(violations)
        return ok

    def ddmin_events() -> bool:
        """One ddmin sweep over the event list; True if anything shrank."""
        shrank = False
        granularity = 2
        while len(current.get("events", ())) >= 2 and not state["exhausted"]:
            events = list(current["events"])
            chunk = max(1, len(events) // granularity)
            removed_any = False
            start = 0
            while start < len(events) and not state["exhausted"]:
                candidate = copy.deepcopy(current)
                candidate["events"] = events[:start] + events[start + chunk:]
                if try_keep(candidate):
                    events = list(current["events"])
                    shrank = removed_any = True
                    # Stay at this granularity; the list just got shorter.
                    chunk = max(1, len(events) // granularity)
                else:
                    start += chunk
            if removed_any:
                granularity = max(2, granularity - 1)
                continue
            if chunk == 1:
                break
            granularity = min(len(events), granularity * 2)
        # A final single-event pass (ddmin's complement step at chunk 1
        # already covers this unless the budget cut the loop short).
        for index in range(len(current.get("events", ())) - 1, -1, -1):
            if state["exhausted"] or index >= len(current["events"]):
                continue
            candidate = copy.deepcopy(current)
            del candidate["events"][index]
            shrank |= try_keep(candidate)
        return shrank

    def greedy(items: Callable[[], List], remove: Callable[[object], Dict]) -> bool:
        shrank = False
        progress = True
        while progress and not state["exhausted"]:
            progress = False
            for item in items():
                if try_keep(remove(item)):
                    shrank = progress = True
                    break
        return shrank

    progress = True
    while progress and not state["exhausted"]:
        progress = False
        progress |= ddmin_events()
        progress |= greedy(
            lambda: list(range(len(current.get("load_phases", ())))),
            lambda index: {
                **copy.deepcopy(current),
                "load_phases": [
                    phase for position, phase
                    in enumerate(current.get("load_phases", ()))
                    if position != index
                ],
            },
        )
        progress |= greedy(
            lambda: [group["id"] for group in current.get("groups", ())],
            lambda group_id: _without_group(current, group_id),
        )
        progress |= greedy(
            lambda: list(current.get("processes", ())),
            lambda name: _without_process(current, name),
        )

    if not best_violations:
        # The caller supplied violation_kind; record the minimal run's
        # evidence (one extra run, best-effort under the budget).
        ok, violations = reproduces(current)
        if ok:
            best_violations = violations
    journeys: List[Dict[str, object]] = []
    if run is None and best_violations:
        # Explain the violation: replay the minimal config with journey
        # tracing pinned to the implicated messages (skipped under a
        # custom oracle, whose candidates may not be runnable scenarios).
        journeys = explain_journeys(current, best_violations, stack=stack)
    return ShrinkResult(
        config=current,
        violation_kind=violation_kind,
        violations=list(best_violations)[:5],
        runs=state["runs"],
        original_size=original_size,
        final_size=_size(current),
        budget_exhausted=state["exhausted"],
        journeys=journeys,
    )
