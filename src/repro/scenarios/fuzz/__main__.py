"""CLI for the scenario fuzzer.

Subcommands::

    python -m repro.scenarios.fuzz run --seed 7 --count 50 --parallel 4 \\
        --artifact-dir artifacts --json campaign.json
    python -m repro.scenarios.fuzz gen --seed 7 --index 3
    python -m repro.scenarios.fuzz replay artifacts/fuzz-7-00003-violation.json

``run`` exits non-zero when the campaign found violations or execution
casualties (the CI smoke gate); ``replay`` exits non-zero when a full
artifact's recorded violation kind fails to reproduce.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.scenarios.fuzz.campaign import replay_artifact, run_campaign
from repro.scenarios.fuzz.generator import GeneratorTuning, generate_config


def _add_tuning_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-events", type=int, default=None,
                        help="event budget per generated spec")
    parser.add_argument("--max-processes", type=int, default=None,
                        help="process-count ceiling per generated spec")
    parser.add_argument("--protocol", type=str, default=None,
                        help="JSON protocol overrides stamped into every spec")


def _tuning(args: argparse.Namespace) -> GeneratorTuning:
    overrides = {}
    if args.max_events is not None:
        overrides["max_events"] = args.max_events
    if args.max_processes is not None:
        overrides["max_processes"] = args.max_processes
    if args.protocol is not None:
        overrides["protocol"] = json.loads(args.protocol)
    return GeneratorTuning.from_config({**GeneratorTuning().to_config(), **overrides})


def _cmd_run(args: argparse.Namespace) -> int:
    def progress(row) -> None:
        status = row["status"]
        marker = "." if status == "pass" else status[0].upper()
        sys.stdout.write(marker)
        sys.stdout.flush()

    report = run_campaign(
        corpus_seed=args.seed,
        count=args.count,
        tuning=_tuning(args),
        parallel=args.parallel,
        timeout=args.timeout,
        stack=args.stack,
        shrink_failures=not args.no_shrink,
        max_shrink=args.max_shrink,
        artifact_dir=args.artifact_dir,
        progress=progress,
    )
    print()
    tallies = " ".join(f"{k}={v}" for k, v in report.tallies.items())
    print(
        f"fuzz campaign seed={report.corpus_seed} count={report.count}: {tallies} "
        f"({report.specs_per_minute:.1f} specs/min, {report.wall_seconds:.1f}s)"
    )
    for failure in report.failures:
        head = failure.violations[0] if failure.violations else failure.error
        print(f"  [{failure.status}] index={failure.index} "
              f"kind={failure.violation_kind}: {head}")
        if failure.artifact:
            print(f"    artifact: {failure.artifact}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.json}")
    return 0 if report.passed else 1


def _cmd_gen(args: argparse.Namespace) -> int:
    config = generate_config(args.seed, args.index, _tuning(args))
    print(json.dumps(config, indent=2, sort_keys=True))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    verdict = replay_artifact(args.artifact, stack=args.stack)
    print(json.dumps(verdict, indent=2, sort_keys=True))
    if verdict["reproduced"] is None:
        return 0 if verdict["passed"] else 1
    return 0 if verdict["reproduced"] else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.fuzz",
        description="Checker-oracle scenario fuzzing with automatic shrinking.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="run a fuzz campaign")
    run_parser.add_argument("--seed", type=int, default=7, help="corpus seed")
    run_parser.add_argument("--count", type=int, default=50,
                            help="number of corpus entries to run")
    run_parser.add_argument("--parallel", type=int, default=1,
                            help="worker pool size (1 = serial)")
    run_parser.add_argument("--timeout", type=float, default=120.0,
                            help="per-spec wall-clock timeout (seconds)")
    run_parser.add_argument("--stack", default="newtop")
    run_parser.add_argument("--artifact-dir", default=None,
                            help="write replayable artifacts for failures here")
    run_parser.add_argument("--json", default=None,
                            help="write the campaign report JSON here")
    run_parser.add_argument("--no-shrink", action="store_true",
                            help="skip delta-debugging violations")
    run_parser.add_argument("--max-shrink", type=int, default=3,
                            help="violations to shrink at most")
    _add_tuning_arguments(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    gen_parser = commands.add_parser(
        "gen", help="print the spec config for one corpus entry")
    gen_parser.add_argument("--seed", type=int, required=True)
    gen_parser.add_argument("--index", type=int, required=True)
    _add_tuning_arguments(gen_parser)
    gen_parser.set_defaults(handler=_cmd_gen)

    replay_parser = commands.add_parser(
        "replay", help="replay an artifact (or bare spec config) JSON")
    replay_parser.add_argument("artifact")
    replay_parser.add_argument("--stack", default="newtop")
    replay_parser.set_defaults(handler=_cmd_replay)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
