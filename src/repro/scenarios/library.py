"""Scenario generators: churn, partition cascades, merge storms and more.

Each function here builds a plain config dict (the input format of
:func:`repro.scenarios.engine.run_scenario`) from a handful of scale knobs,
deterministically from its ``seed``.  They encode the workload shapes the
ROADMAP asks for beyond the paper's hand-sized examples:

* :func:`churn_scenario` -- many overlapping groups under continuous
  join-era traffic while members crash, voluntarily leave, and (optionally)
  dynamically form fresh groups mid-run (§5.3 ``form_group`` events);
* :func:`cascading_partitions_scenario` -- successive partitions that each
  split another slice off the main component, then heal;
* :func:`merge_storm_scenario` -- rapid partition/heal cycles stressing
  repeated suspicion, refutation and view agreement;
* :func:`migration_under_load_scenario` -- an asymmetric group whose
  sequencer crashes mid-traffic, forcing a live sequencer migration;
* :func:`mixed_modes_scenario` -- symmetric and asymmetric groups sharing
  members, exercising the mixed-mode blocking rules under faults.

The group topology is a ring of overlapping blocks: group ``i`` covers
``group_size`` processes starting at ``i * stride`` (wrapping around), so
adjacent groups share ``group_size - stride`` members and total order must
hold *across* group boundaries (MD4'), not just within each group.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.scenarios.spec import default_process_names


def ring_overlap_groups(
    processes: Sequence[str],
    n_groups: int,
    group_size: int,
    mode: str = "symmetric",
) -> List[Dict]:
    """Group dicts for a ring of overlapping member blocks."""
    if group_size > len(processes):
        raise ValueError("group_size cannot exceed the number of processes")
    stride = max(1, len(processes) // n_groups)
    groups = []
    for index in range(n_groups):
        start = index * stride
        members = [
            processes[(start + offset) % len(processes)] for offset in range(group_size)
        ]
        groups.append({"id": f"g{index:02d}", "members": members, "mode": mode})
    return groups


def churn_scenario(
    n_processes: int = 100,
    n_groups: int = 10,
    group_size: int = 12,
    crashes: int = 3,
    leaves: int = 3,
    formations: int = 0,
    messages_per_sender: int = 2,
    seed: int = 7,
    batch_window: float = 0.25,
) -> Dict:
    """Join/leave/crash churn across many overlapping groups.

    Crash and leave targets are picked deterministically from ``seed``,
    spread over distinct groups so several view agreements run
    concurrently; the workload keeps flowing throughout.  With
    ``formations > 0``, that many fresh groups are dynamically formed
    mid-run (§5.3 ``form_group`` events) from processes untouched by the
    churn, so formation voting and start-number agreement run concurrently
    with crash/leave view agreements.
    """
    rng = random.Random(seed)
    processes = list(default_process_names(n_processes))
    groups = ring_overlap_groups(processes, n_groups, group_size)

    events: List[Dict] = []
    # Crash targets: one member out of `crashes` distinct groups, never the
    # first two members (they carry the workload of their group).
    crash_groups = rng.sample(range(len(groups)), min(crashes, len(groups)))
    crashed: List[str] = []
    for offset, group_index in enumerate(crash_groups):
        candidates = [m for m in groups[group_index]["members"][2:] if m not in crashed]
        if not candidates:
            continue
        target = rng.choice(candidates)
        crashed.append(target)
        events.append({"time": 6.0 + 2.0 * offset, "kind": "crash", "targets": [target]})
    # Voluntary departures from further distinct groups.
    leavers: List[str] = []
    leave_groups = [i for i in range(len(groups)) if i not in crash_groups]
    rng.shuffle(leave_groups)
    for offset, group_index in enumerate(leave_groups[:leaves]):
        group = groups[group_index]
        candidates = [m for m in group["members"][2:] if m not in crashed]
        if not candidates:
            continue
        target = rng.choice(candidates)
        leavers.append(target)
        events.append(
            {
                "time": 8.0 + 2.0 * offset,
                "kind": "leave",
                "targets": [target],
                "group": group["id"],
            }
        )

    # Dynamic formations: fresh groups over processes the churn leaves
    # alone, initiated while crash/leave agreements are still in flight.
    touched = set(crashed) | set(leavers)
    quiet = [process for process in processes if process not in touched]
    formation_size = max(2, min(group_size // 2, 5))
    for index in range(formations):
        if len(quiet) < formation_size:
            break
        members = [
            quiet[(index * formation_size + offset) % len(quiet)]
            for offset in range(formation_size)
        ]
        if len(set(members)) < 2:
            break
        events.append(
            {
                "time": 9.0 + 2.0 * index,
                "kind": "form_group",
                "group": f"fg{index:02d}",
                "targets": sorted(set(members)),
            }
        )

    return {
        "name": f"churn {n_processes}p/{n_groups}g",
        "seed": seed,
        "processes": processes,
        "groups": groups,
        "workload": {"messages_per_sender": messages_per_sender, "senders_per_group": 2, "gap": 3.0},
        "events": events,
        "drain": 30.0,
        "batch_window": batch_window,
    }


def cascading_partitions_scenario(
    n_processes: int = 12,
    n_groups: int = 3,
    group_size: int = 6,
    slices: int = 2,
    slice_size: int = 2,
    seed: int = 11,
) -> Dict:
    """Partitions that successively split slices off the main component.

    Slice ``k`` (the last ``slice_size`` processes not yet split off) is
    separated at ``t_k``; everything heals at the end and the run drains,
    so the surviving core must agree on having excluded every slice.
    """
    processes = list(default_process_names(n_processes))
    groups = ring_overlap_groups(processes, n_groups, group_size)
    events: List[Dict] = []
    separated: List[str] = []
    for index in range(slices):
        start = n_processes - (index + 1) * slice_size
        if start <= 2:
            break
        new_slice = processes[start : start + slice_size]
        separated = new_slice + separated
        # Each cascade re-installs the full layout: every slice split so
        # far is its own island (the partition manager holds one layout at
        # a time).
        components = [processes[:start]] + [
            separated[i : i + slice_size] for i in range(0, len(separated), slice_size)
        ]
        events.append(
            {"time": 8.0 + 10.0 * index, "kind": "partition", "components": components}
        )
    events.append({"time": 8.0 + 10.0 * slices + 8.0, "kind": "heal"})
    return {
        "name": f"cascading partitions {n_processes}p/{slices} slices",
        "seed": seed,
        "processes": processes,
        "groups": groups,
        "workload": {"messages_per_sender": 3, "senders_per_group": 2, "gap": 4.0},
        "events": events,
        "drain": 40.0,
    }


def merge_storm_scenario(
    n_processes: int = 8,
    n_groups: int = 2,
    group_size: int = 5,
    cycles: int = 3,
    cycle_gap: float = 9.0,
    seed: int = 13,
) -> Dict:
    """Rapid partition/heal cycles (a merge storm).

    Every cycle splits the same minority off and heals again before the
    next one; each heal floods the majority with the minority's buffered
    suspicions and refutations, stressing repeated view agreement.
    """
    processes = list(default_process_names(n_processes))
    groups = ring_overlap_groups(processes, n_groups, group_size)
    minority = processes[-2:]
    majority = processes[:-2]
    events: List[Dict] = []
    for cycle in range(cycles):
        start = 6.0 + cycle * cycle_gap
        events.append(
            {"time": start, "kind": "partition", "components": [majority, minority]}
        )
        events.append({"time": start + cycle_gap * 0.5, "kind": "heal"})
    return {
        "name": f"merge storm {n_processes}p x{cycles}",
        "seed": seed,
        "processes": processes,
        "groups": groups,
        "workload": {"messages_per_sender": 4, "senders_per_group": 2, "gap": 3.0},
        "events": events,
        "drain": 45.0,
    }


def migration_under_load_scenario(
    n_processes: int = 6,
    messages_per_sender: int = 4,
    seed: int = 17,
) -> Dict:
    """An asymmetric group loses its sequencer mid-traffic.

    The deterministic sequencer-succession rule must migrate sequencing to
    the next member while application traffic keeps flowing -- the moving
    parts behind the paper's Fig. 1 server-migration application.
    """
    processes = list(default_process_names(n_processes))
    return {
        "name": f"sequencer migration {n_processes}p",
        "seed": seed,
        "processes": processes,
        "groups": [
            {"id": "service", "members": processes, "mode": "asymmetric"},
            # An overlapping symmetric control group keeps cross-group
            # ordering (MD4') in play during the failover.
            {"id": "control", "members": processes[: max(3, n_processes // 2)]},
        ],
        "workload": {"messages_per_sender": messages_per_sender, "senders_per_group": 3, "gap": 3.0},
        # The initial sequencer is the smallest member id.
        "events": [{"time": 7.0, "kind": "crash", "targets": [processes[0]]}],
        "drain": 40.0,
    }


def mixed_modes_scenario(
    n_processes: int = 9,
    seed: int = 19,
) -> Dict:
    """Symmetric and asymmetric groups with shared members, plus one crash.

    Shared members exercise the mixed-mode blocking rule (§4.3) while a
    crash in the asymmetric group forces the membership machinery to run
    in both modes at once.
    """
    processes = list(default_process_names(n_processes))
    third = n_processes // 3
    sym_members = processes[: 2 * third]
    asym_members = processes[third:]
    return {
        "name": f"mixed modes {n_processes}p",
        "seed": seed,
        "processes": processes,
        "groups": [
            {"id": "sym", "members": sym_members, "mode": "symmetric"},
            {"id": "asym", "members": asym_members, "mode": "asymmetric"},
        ],
        "workload": {"messages_per_sender": 3, "senders_per_group": 2, "gap": 3.0},
        # Crash a member of both groups (the overlap region), so the
        # exclusion must be agreed in the two modes independently.
        "events": [{"time": 9.0, "kind": "crash", "targets": [processes[2 * third - 1]]}],
        "drain": 35.0,
    }
