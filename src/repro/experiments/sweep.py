"""The sweep runner: grids of (stack x profile x load x fault) sessions.

One :class:`SweepSpec` describes a family of load/availability experiments:
a shared overlapping-group topology, a set of protocol stacks, a set of
workload profiles, a set of offered-load points, and a set of fault
patterns.  :func:`run_sweep` executes every cell of the grid as an
independent online-verified :class:`~repro.api.Session` driven by
:class:`~repro.workloads.client.OpenLoopClient` traffic, and aggregates
the per-cell results into one JSON-shaped :class:`SweepReport` -- the
offered-load vs goodput/latency curves and availability-under-partition
tables of benchmark E21.

Every cell runs in three equal *phases* of the client window:

``pre``
    Fault-free warm-up third; every stack should keep up here.
``fault``
    The middle third.  Under ``fault="crash"`` one non-leader member of
    the first group crash-stops at the phase boundary (one victim total;
    overlapping groups containing it are affected, the rest act as the
    fault-free control); under ``fault="partition"`` the process set
    splits into a majority and a minority component (healed at the phase
    end).  Under ``fault="none"`` nothing happens.
``recovery``
    The final third, long enough past the fault that a membership-capable
    protocol has excluded the crashed member (the sweep's protocol
    defaults resolve suspicion well within one third).  *Stall detection*
    lives here: a group whose client still offers load but sees zero
    deliveries is stalled -- the all-ack baseline after a crash, never
    Newtop.

The *availability* of a fault cell is the fraction of offered sends that
were admitted during the fault phase -- the E16 contrast: a
primary-partition policy refuses the minority's sends, Newtop admits on
both sides of the split.

Per-cell consistency invariant (asserted by the test suite over every
report): ``offered >= admitted >= delivered_unique``, where
``delivered_unique`` counts distinct admitted messages delivered by at
least one process.
"""

from __future__ import annotations

import time as _time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api import Session
from repro.core.messages import reset_message_counter
from repro.net.latency import get_latency_model
from repro.parallel import WorkUnit, run_units
from repro.scenarios.spec import default_process_names
from repro.workloads.client import LatencyReservoir, OpenLoopClient, aggregate_counters
from repro.workloads.profiles import get_profile

#: Protocol defaults: fast time-silence and suspicion, as in the scenario
#: engine, so membership events resolve within one sweep phase.
SWEEP_PROTOCOL_DEFAULTS: Mapping[str, object] = {
    "omega": 1.5,
    "suspicion_timeout": 6.0,
    "suspector_check_interval": 0.5,
}

#: Fault patterns a sweep cell understands.
FAULT_PATTERNS = ("none", "crash", "partition")


@dataclass(frozen=True)
class SweepSpec:
    """One grid of load/availability experiments."""

    stacks: Tuple[str, ...] = ("newtop",)
    profiles: Tuple[str, ...] = ("poisson",)
    #: Aggregate offered load points (multicast attempts per time unit,
    #: summed over all groups) -- one curve point per entry.
    loads: Tuple[float, ...] = (1.0,)
    faults: Tuple[str, ...] = ("none",)
    processes: int = 8
    groups: int = 2
    group_size: int = 5
    #: Senders per group (first k members); 0 means every member sends.
    senders_per_group: int = 0
    #: Client window; the three phases are equal thirds of it.
    duration: float = 24.0
    start: float = 1.0
    #: Settling time after the client window before checking.
    drain: float = 30.0
    seed: int = 7
    payload_bytes: int = 64
    #: Overrides merged over :data:`SWEEP_PROTOCOL_DEFAULTS` (e.g.
    #: ``{"flow_control_window": 4}`` to exercise backpressure).
    protocol: Mapping[str, object] = field(default_factory=dict)
    #: Extra options forwarded to :func:`repro.workloads.get_profile`.
    profile_options: Mapping[str, object] = field(default_factory=dict)
    #: Network latency model by registry name (see
    #: :data:`repro.net.latency.LATENCY_MODELS`); ``None`` keeps the
    #: network default.  Named, not an object, so specs stay JSON-shaped
    #: and picklable across the worker pool.
    latency_model: Optional[str] = None
    #: Constructor options for :attr:`latency_model` (e.g.
    #: ``{"median": 2.0, "sigma": 0.8}`` for ``"lognormal"``).
    latency_options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = [fault for fault in self.faults if fault not in FAULT_PATTERNS]
        if unknown:
            raise ValueError(f"unknown fault patterns {unknown}; expected {FAULT_PATTERNS}")
        if self.group_size > self.processes:
            raise ValueError("group_size cannot exceed the process count")
        if self.duration <= 0 or self.drain < 0:
            raise ValueError("duration must be > 0 and drain >= 0")
        if self.latency_model is not None:
            # Fail on typos at spec construction, not mid-sweep in a worker.
            get_latency_model(self.latency_model, **dict(self.latency_options))

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def topology(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """Ring-overlapping groups over the process set (same shape as the
        scenario library's churn generator)."""
        names = default_process_names(self.processes)
        offset = max(1, self.processes // self.groups)
        groups = []
        for index in range(self.groups):
            members = tuple(
                names[(index * offset + position) % self.processes]
                for position in range(self.group_size)
            )
            groups.append((f"g{index:02d}", members))
        return groups

    def partition_components(self) -> List[List[str]]:
        """The majority/minority split used by ``fault="partition"``."""
        names = list(default_process_names(self.processes))
        minority = max(1, self.processes // 3)
        return [names[: self.processes - minority], names[self.processes - minority :]]

    def crash_targets(self) -> List[str]:
        """The single crash victim: the last member of the first group that
        leads no group.

        A group's first member is its sequencer in the asymmetric / fixed-
        sequencer stacks, so crashing a non-leader isolates the phenomenon
        the crash cells measure -- membership-capable protocols exclude the
        victim and keep delivering, an all-ack protocol can never complete
        an acknowledgement round again -- from sequencer-failover dynamics
        (covered by its own benchmarks).
        """
        topology = self.topology()
        leaders = {members[0] for _, members in topology}
        first_group = topology[0][1]
        for member in reversed(first_group):
            if member not in leaders:
                return [member]
        return [first_group[-1]]

    def describe(self) -> Dict[str, object]:
        """JSON-shaped spec summary for the report header."""
        return {
            "stacks": list(self.stacks),
            "profiles": list(self.profiles),
            "loads": list(self.loads),
            "faults": list(self.faults),
            "processes": self.processes,
            "groups": self.groups,
            "group_size": self.group_size,
            "senders_per_group": self.senders_per_group,
            "duration": self.duration,
            "drain": self.drain,
            "seed": self.seed,
            "payload_bytes": self.payload_bytes,
            "protocol": dict(self.protocol),
            "latency_model": self.latency_model,
            "latency_options": dict(self.latency_options),
        }


def _merged_latency(clients: Sequence[OpenLoopClient]) -> Dict[str, Optional[float]]:
    """Exact count/mean/min/max plus percentiles over merged reservoirs."""
    return LatencyReservoir.merged(client.latency for client in clients).summary()


def _phase_delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    return {key: after[key] - before[key] for key in after}


def _agreement_sets(
    spec: SweepSpec,
    topology: Sequence[Tuple[str, Tuple[str, ...]]],
    fault: str,
) -> Dict[str, List[str]]:
    """Per-group view-agreement sets for the cell's fault pattern.

    Mirrors the scenario engine's *stable core* rule: crashed members drop
    out, a partition keeps the majority component (processes never
    separated from it are the only ones required to agree on view
    sequences).
    """
    excluded: set = set()
    if fault == "crash":
        excluded = set(spec.crash_targets())
    elif fault == "partition":
        majority = set(spec.partition_components()[0])
        excluded = set(default_process_names(spec.processes)) - majority
    return {
        group_id: [member for member in members if member not in excluded]
        for group_id, members in topology
    }


def run_cell(
    spec: SweepSpec,
    stack: str,
    profile_name: str,
    load: float,
    fault: str = "none",
    observe: object = None,
) -> Dict[str, object]:
    """Run one (stack, profile, load, fault) cell and return its row.

    Cells are self-contained: every random draw derives from the spec's
    seeds and the interpreter's message-id counter is reset up front, so a
    cell's row is identical whether it runs first or five-hundredth, in
    this process or on a :mod:`repro.parallel` worker.  ``observe``
    attaches a :mod:`repro.obs` observation to the cell's session and adds
    its snapshot to the row as ``"obs"`` (observation never changes the
    numbers, only adds to the row).
    """
    wall_start = _time.time()
    reset_message_counter()
    topology = spec.topology()
    agreement_sets = _agreement_sets(spec, topology, fault)
    overrides = dict(SWEEP_PROTOCOL_DEFAULTS)
    overrides.update(spec.protocol)
    session = Session(
        stack,
        config=overrides,
        seed=spec.seed,
        analysis="online",
        latency_model=(
            get_latency_model(spec.latency_model, **dict(spec.latency_options))
            if spec.latency_model is not None
            else None
        ),
        view_agreement_sets=agreement_sets,
        observe=observe,
    )
    session.spawn(default_process_names(spec.processes))
    for group_id, members in topology:
        session.group(group_id, members)

    clients: List[OpenLoopClient] = []
    per_group_rate = load / max(1, len(topology))
    for index, (group_id, members) in enumerate(topology):
        senders = (
            list(members[: spec.senders_per_group])
            if spec.senders_per_group > 0
            else list(members)
        )
        profile = get_profile(
            profile_name, rate=per_group_rate,
            payload_bytes=spec.payload_bytes, **dict(spec.profile_options),
        )
        client = session.attach_client(
            OpenLoopClient(
                profile, senders, [group_id],
                seed=spec.seed * 9973 + index,
                start=spec.start, duration=spec.duration,
                name=f"{group_id}-client",
            )
        )
        client.start()
        clients.append(client)

    # Three equal phases: pre-fault, fault window, recovery.
    third = spec.duration / 3.0
    fault_time = spec.start + third
    fault_end = spec.start + 2 * third
    window_end = spec.start + spec.duration

    session.sim.run(until=fault_time)
    at_fault = aggregate_counters(clients)
    fault_marks = {client.name: client.counters() for client in clients}
    if fault == "crash":
        for victim in spec.crash_targets():
            session.crash(victim)
    elif fault == "partition":
        session.partition(spec.partition_components())
    session.sim.run(until=fault_end)
    at_recovery = aggregate_counters(clients)
    recovery_marks = {client.name: client.counters() for client in clients}
    if fault == "partition":
        session.heal()
    session.sim.run(until=window_end)
    at_end = aggregate_counters(clients)
    end_marks = {client.name: client.counters() for client in clients}
    session.run(spec.drain)
    result = session.result()

    totals = aggregate_counters(clients)
    phases = {
        "pre": at_fault,
        "fault": _phase_delta(at_recovery, at_fault),
        "recovery": _phase_delta(at_end, at_recovery),
        "drain": _phase_delta(totals, at_end),
    }
    # Per-group phase deltas: the aggregate hides a single stalled group
    # behind its healthy siblings, so availability tooling (outage-window
    # extraction in the E21/E26 benchmarks) needs the per-client split.
    group_phases = {
        client.name: {
            "pre": fault_marks[client.name],
            "fault": _phase_delta(recovery_marks[client.name], fault_marks[client.name]),
            "recovery": _phase_delta(end_marks[client.name], recovery_marks[client.name]),
            "drain": _phase_delta(client.counters(), end_marks[client.name]),
        }
        for client in clients
    }
    phase_bounds = {
        "pre": (spec.start, fault_time),
        "fault": (fault_time, fault_end),
        "recovery": (fault_end, window_end),
        "drain": (window_end, window_end + spec.drain),
    }
    fault_phase = phases["fault"]
    stalled_groups = 0
    if fault != "none":
        for client in clients:
            # Per-group stall: load still offered after the fault settled
            # (recovery phase onwards), but not a single delivery of this
            # group's messages anywhere -- including the final drain, so a
            # slow-but-live protocol is not misread as stalled.
            delta = _phase_delta(client.counters(), recovery_marks[client.name])
            stalled_groups += int(delta["offered"] > 0 and delta["delivered_events"] == 0)
    availability = (
        round(fault_phase["admitted"] / fault_phase["offered"], 4)
        if fault != "none" and fault_phase["offered"]
        else None
    )
    row: Dict[str, object] = {
        "stack": session.stack.name,
        "profile": profile_name,
        "offered_load": load,
        "fault": fault,
        "passed": result.passed,
        "violations": (
            list(result.checks.violations[:3]) if result.checks is not None else []
        ),
        **totals,
        "goodput": round(totals["delivered_unique"] / spec.duration, 4),
        "delivery_ratio": (
            round(totals["delivered_unique"] / totals["admitted"], 4)
            if totals["admitted"] else None
        ),
        "latency": _merged_latency(clients),
        "phases": phases,
        "group_phases": group_phases,
        "phase_bounds": phase_bounds,
        "availability": availability,
        "stalled_groups": stalled_groups if fault != "none" else 0,
        "messages_sent": result.messages_sent,
        "delivery_events": result.delivery_events,
        "trace_events": result.trace_events,
        "trace_events_stored": result.trace_events_stored,
        "sim_time": round(result.sim_time, 3),
        "wall_seconds": round(_time.time() - wall_start, 3),
    }
    if result.obs is not None:
        row["obs"] = result.obs
    return row


@dataclass
class SweepReport:
    """Everything one sweep produced, JSON-shaped."""

    spec: Dict[str, object]
    cells: List[Dict[str, object]]

    def curves(self) -> Dict[str, Dict[str, List[Dict[str, object]]]]:
        """Per (stack, profile): offered load vs goodput/latency points
        over the fault-free cells, sorted by load."""
        table: Dict[str, Dict[str, List[Dict[str, object]]]] = {}
        for cell in self.cells:
            # Crashed/timed-out cells keep their coordinates but have no
            # metrics; they surface through `passed`, not the curves.
            if cell["fault"] != "none" or "goodput" not in cell:
                continue
            point = {
                "offered_load": cell["offered_load"],
                "goodput": cell["goodput"],
                "admitted": cell["admitted"],
                "offered": cell["offered"],
                "latency_mean": cell["latency"]["mean"],
                "latency_p50": cell["latency"]["p50"],
                "latency_p99": cell["latency"]["p99"],
            }
            table.setdefault(cell["stack"], {}).setdefault(cell["profile"], []).append(point)
        for stack_rows in table.values():
            for points in stack_rows.values():
                points.sort(key=lambda point: point["offered_load"])
        return table

    def cell(self, stack: str, profile: str, load: float, fault: str = "none") -> Dict[str, object]:
        """Look up one cell row (raises ``KeyError`` when absent)."""
        for row in self.cells:
            if (row["stack"], row["profile"], row["offered_load"], row["fault"]) == (
                stack, profile, load, fault,
            ):
                return row
        raise KeyError((stack, profile, load, fault))

    @property
    def passed(self) -> bool:
        """Whether every cell's selected checks held."""
        return all(cell["passed"] for cell in self.cells)

    def as_dict(self) -> Dict[str, object]:
        return {"spec": self.spec, "cells": self.cells, "curves": self.curves()}


def _grid(spec: SweepSpec) -> List[Tuple[str, str, float, str]]:
    """The cell coordinates of the grid, in canonical (report) order."""
    return [
        (stack, profile_name, load, fault)
        for fault in spec.faults
        for profile_name in spec.profiles
        for load in spec.loads
        for stack in spec.stacks
    ]


def _failed_cell_row(
    spec: SweepSpec, stack: str, profile_name: str, load: float, fault: str,
    status: str, error: Optional[str],
) -> Dict[str, object]:
    """Row for a cell whose worker crashed or timed out: the grid position
    survives (so lookups work) with ``passed=False``, the diagnosis, and a
    ``replay`` block carrying the exact seed and constructor kwargs --
    ``run_cell(SweepSpec(**row["replay"]["spec"]), stack, profile, load,
    fault)`` reproduces the casualty standalone, outside the pool."""
    return {
        "stack": stack,
        "profile": profile_name,
        "offered_load": load,
        "fault": fault,
        "passed": False,
        "violations": [f"cell {status}: {error or 'no diagnostic'}"],
        "execution_status": status,
        "replay": {
            "seed": spec.seed,
            "spec": asdict(spec),
            "cell": {
                "stack": stack,
                "profile": profile_name,
                "offered_load": load,
                "fault": fault,
            },
            "how": (
                "repro.experiments.run_cell(SweepSpec(**replay['spec']), "
                "cell['stack'], cell['profile'], cell['offered_load'], "
                "cell['fault'])"
            ),
        },
    }


def run_sweep(
    spec: SweepSpec,
    progress=None,
    parallel: Optional[int] = None,
    timeout: Optional[float] = None,
) -> SweepReport:
    """Execute every cell of the grid; ``progress`` (if given) is called
    with each finished row (CLI feedback for long sweeps).

    ``parallel=N`` (N > 1) shards the cells across a
    :class:`repro.parallel.ParallelExecutor` pool of N worker processes.
    Cell seeds derive from the spec -- never from shard order -- so the
    report is identical to the serial one apart from ``wall_seconds``
    (pinned by ``tests/test_parallel.py``); ``progress`` then observes
    completion order rather than grid order.  ``timeout`` bounds each
    cell's wall clock (pool mode only); a crashed or timed-out cell
    yields a ``passed=False`` row with its diagnosis instead of killing
    the sweep.
    """
    grid = _grid(spec)
    cells: List[Dict[str, object]] = []
    if (parallel or 1) <= 1:
        for stack, profile_name, load, fault in grid:
            row = run_cell(spec, stack, profile_name, load, fault)
            cells.append(row)
            if progress is not None:
                progress(row)
        return SweepReport(spec=spec.describe(), cells=cells)

    def on_event(kind, unit_id, worker, payload) -> None:
        if kind == "done" and progress is not None and payload.ok:
            progress(payload.value)

    units = [
        WorkUnit(
            unit_id=f"{stack}|{profile_name}|{load}|{fault}",
            fn=run_cell,
            args=(spec, stack, profile_name, load, fault),
        )
        for stack, profile_name, load, fault in grid
    ]
    results = run_units(units, parallel=parallel, timeout=timeout, on_event=on_event)
    for coordinates, result in zip(grid, results):
        if result.ok:
            cells.append(result.value)
        else:
            row = _failed_cell_row(spec, *coordinates, result.status, result.error)
            cells.append(row)
            if progress is not None:
                progress(row)
    return SweepReport(spec=spec.describe(), cells=cells)
