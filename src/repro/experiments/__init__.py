"""repro.experiments: declarative load and availability sweeps.

Where :mod:`repro.workloads` generates open-loop traffic and
:mod:`repro.api` runs one protocol session, this package runs *grids* of
sessions: a :class:`~repro.experiments.sweep.SweepSpec` crosses protocol
stacks with workload profiles, offered-load points and fault patterns, and
:func:`~repro.experiments.sweep.run_sweep` executes every cell online
(streaming verification, zero stored trace events) and aggregates one
JSON-shaped :class:`~repro.experiments.sweep.SweepReport`::

    from repro.experiments import SweepSpec, run_sweep

    report = run_sweep(SweepSpec(
        stacks=("newtop-symmetric", "lamport_ack"),
        profiles=("poisson", "bursty"),
        loads=(0.5, 1.0, 2.0),
        faults=("none", "crash"),
    ))
    assert report.passed
    print(report.curves()["newtop-symmetric"]["poisson"])   # load vs goodput

The report carries per-cell offered/admitted/delivered counts (the
``offered >= admitted >= delivered_unique`` invariant), goodput, latency
percentiles, per-phase deltas, availability during the fault window, and
per-group stall detection -- the raw material of benchmark E21
(``bench_workload_sweep.py``).
"""

from repro.experiments.sweep import (
    FAULT_PATTERNS,
    SWEEP_PROTOCOL_DEFAULTS,
    SweepReport,
    SweepSpec,
    run_cell,
    run_sweep,
)

__all__ = [
    "FAULT_PATTERNS",
    "SWEEP_PROTOCOL_DEFAULTS",
    "SweepReport",
    "SweepSpec",
    "run_cell",
    "run_sweep",
]
