"""A replicated key-value store built on the replicated state machine.

.. note::
   This store is the **single-shard special case** of the sharded store
   in :mod:`repro.apps.kv`: one group, no ring, no rebalancing.  Both run
   the *same* transition function
   (:func:`repro.apps.kv.commands.apply_kv_command`), so there is exactly
   one KV implementation in this repository.  New code that needs
   sharding, failover, rebalancing or the consistency oracle should use
   :class:`repro.apps.kv.ShardedKV`; this class remains the lightweight
   front-end for single-group scenarios and the quickstart.

The store supports ``set``, ``delete`` and ``increment`` operations; every
operation is a command multicast in the store's replica group and applied
in Newtop's total delivery order, so all replicas converge to the same map
without any further coordination.  Reads are served locally (they reflect
the replica's applied prefix -- the usual RSM read semantics; linearizable
reads would be issued as commands too, which `read_via_multicast` does).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.kv.commands import apply_kv_command
from repro.apps.replicated_state_machine import ReplicatedStateMachine
from repro.core.process import NewtopProcess

#: Backwards-compatible alias: the transition function now lives in
#: :mod:`repro.apps.kv.commands` and is shared with the sharded store.
_apply_store_command = apply_kv_command


class ReplicatedStore:
    """One replica of the key-value store."""

    def __init__(self, process: NewtopProcess, group_id: str) -> None:
        self.process = process
        self.group_id = group_id
        self.rsm = ReplicatedStateMachine(
            process, group_id, initial_state={}, apply_function=_apply_store_command
        )

    # ------------------------------------------------------------------
    # Mutations (multicast as commands)
    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> Optional[str]:
        """Replicate ``key = value``."""
        return self.rsm.submit(("set", key, value))

    def delete(self, key: str) -> Optional[str]:
        """Replicate deletion of ``key``."""
        return self.rsm.submit(("delete", key))

    def increment(self, key: str, amount: int = 1) -> Optional[str]:
        """Replicate an increment of the integer at ``key``."""
        return self.rsm.submit(("increment", key, amount))

    def read_via_multicast(self, key: str) -> Optional[str]:
        """Issue a no-op command; once it is applied locally, a local read
        of ``key`` reflects every write ordered before it (a simple way to
        get an ordered read without a separate read protocol)."""
        return self.rsm.submit(("noop",))

    # ------------------------------------------------------------------
    # Local reads
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Read ``key`` from the locally applied state."""
        return self.rsm.state.get(key, default)

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the locally applied state."""
        return dict(self.rsm.state)

    def applied_operations(self) -> int:
        """Number of operations applied locally so far."""
        return len(self.rsm.applied_log)

    # ------------------------------------------------------------------
    # Convergence helpers
    # ------------------------------------------------------------------
    @staticmethod
    def converged(stores: List["ReplicatedStore"]) -> bool:
        """Whether every replica that applied the same number of operations
        holds an identical map (and logs are prefix-consistent)."""
        return ReplicatedStateMachine.replicas_agree([store.rsm for store in stores])
