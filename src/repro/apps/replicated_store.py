"""A replicated key-value store built on the replicated state machine.

The store supports ``set``, ``delete`` and ``increment`` operations; every
operation is a command multicast in the store's replica group and applied
in Newtop's total delivery order, so all replicas converge to the same map
without any further coordination.  Reads are served locally (they reflect
the replica's applied prefix -- the usual RSM read semantics; linearizable
reads would be issued as commands too, which `read_via_multicast` does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.replicated_state_machine import ReplicatedStateMachine
from repro.core.process import NewtopProcess


def _apply_store_command(state: Dict[str, Any], command: Tuple) -> Dict[str, Any]:
    """Pure transition function for the key-value store.

    Commands are tuples: ``("set", key, value)``, ``("delete", key)``,
    ``("increment", key, amount)`` and ``("noop",)``.  Unknown commands are
    ignored (forward compatibility), mirroring how a production store would
    skip unknown-but-committed entries rather than diverge.
    """
    new_state = dict(state)
    if not command:
        return new_state
    operation = command[0]
    if operation == "set" and len(command) == 3:
        new_state[command[1]] = command[2]
    elif operation == "delete" and len(command) == 2:
        new_state.pop(command[1], None)
    elif operation == "increment" and len(command) == 3:
        new_state[command[1]] = new_state.get(command[1], 0) + command[2]
    elif operation == "noop":
        pass
    return new_state


class ReplicatedStore:
    """One replica of the key-value store."""

    def __init__(self, process: NewtopProcess, group_id: str) -> None:
        self.process = process
        self.group_id = group_id
        self.rsm = ReplicatedStateMachine(
            process, group_id, initial_state={}, apply_function=_apply_store_command
        )

    # ------------------------------------------------------------------
    # Mutations (multicast as commands)
    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> Optional[str]:
        """Replicate ``key = value``."""
        return self.rsm.submit(("set", key, value))

    def delete(self, key: str) -> Optional[str]:
        """Replicate deletion of ``key``."""
        return self.rsm.submit(("delete", key))

    def increment(self, key: str, amount: int = 1) -> Optional[str]:
        """Replicate an increment of the integer at ``key``."""
        return self.rsm.submit(("increment", key, amount))

    def read_via_multicast(self, key: str) -> Optional[str]:
        """Issue a no-op command; once it is applied locally, a local read
        of ``key`` reflects every write ordered before it (a simple way to
        get an ordered read without a separate read protocol)."""
        return self.rsm.submit(("noop",))

    # ------------------------------------------------------------------
    # Local reads
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Read ``key`` from the locally applied state."""
        return self.rsm.state.get(key, default)

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the locally applied state."""
        return dict(self.rsm.state)

    def applied_operations(self) -> int:
        """Number of operations applied locally so far."""
        return len(self.rsm.applied_log)

    # ------------------------------------------------------------------
    # Convergence helpers
    # ------------------------------------------------------------------
    @staticmethod
    def converged(stores: List["ReplicatedStore"]) -> bool:
        """Whether every replica that applied the same number of operations
        holds an identical map (and logs are prefix-consistent)."""
        return ReplicatedStateMachine.replicas_agree([store.rsm for store in stores])
