"""Replicated state machines on Newtop total-order multicast.

The classic use of a total-order protocol (§2 of the paper): every replica
starts from the same initial state, commands are multicast in the replica
group, and each replica applies commands in its (identical) delivery order,
so all replicas move through the same sequence of states.

Two pieces:

* :class:`ReplicatedStateMachine` -- the application-facing handle for one
  replica: ``submit(command)`` multicasts a command, ``state`` exposes the
  current state, ``applied_log`` the sequence of applied commands.
* :class:`StateMachineReplica` -- glue registered as the Newtop delivery
  callback; separated out so tests can drive it directly.

The state machine is deliberately generic: the caller supplies an
``apply(state, command) -> state`` function (pure, deterministic), which is
all determinism requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.process import NewtopProcess

#: A pure transition function: (state, command) -> new state.
ApplyFunction = Callable[[Any, Any], Any]


@dataclass
class AppliedCommand:
    """One command applied by a replica, with its provenance."""

    command: Any
    sender: str
    msg_id: str
    resulting_state_digest: str


def _digest(state: Any) -> str:
    """A cheap deterministic digest of a state, for replica comparison."""
    return repr(state)


class StateMachineReplica:
    """Applies delivered commands of one group to a local state."""

    def __init__(self, initial_state: Any, apply_function: ApplyFunction, group_id: str) -> None:
        self.group_id = group_id
        self.state = initial_state
        self.apply_function = apply_function
        self.applied_log: List[AppliedCommand] = []

    def on_delivery(self, group: str, sender: str, payload: object, msg_id: str) -> None:
        """Newtop delivery callback: apply commands for our group only."""
        if group != self.group_id:
            return
        self.state = self.apply_function(self.state, payload)
        self.applied_log.append(
            AppliedCommand(
                command=payload,
                sender=sender,
                msg_id=msg_id,
                resulting_state_digest=_digest(self.state),
            )
        )

    @property
    def state_digest(self) -> str:
        """Digest of the current state (equal digests => equal states)."""
        return _digest(self.state)

    def applied_ids(self) -> List[str]:
        """Message ids applied so far, in application order."""
        return [entry.msg_id for entry in self.applied_log]


class ReplicatedStateMachine:
    """One replica of a replicated state machine, bound to a Newtop process.

    Example::

        rsm = ReplicatedStateMachine(
            process, "bank", initial_state=0,
            apply_function=lambda balance, delta: balance + delta,
        )
        rsm.submit(+100)
    """

    def __init__(
        self,
        process: NewtopProcess,
        group_id: str,
        initial_state: Any,
        apply_function: ApplyFunction,
    ) -> None:
        self.process = process
        self.group_id = group_id
        self.replica = StateMachineReplica(initial_state, apply_function, group_id)
        process.add_delivery_callback(self.replica.on_delivery)

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------
    def submit(self, command: Any) -> Optional[str]:
        """Multicast a command to all replicas; it is applied everywhere in
        the same total order (returns the message id, or ``None`` if the
        send was deferred by the protocol)."""
        return self.process.multicast(self.group_id, command)

    @property
    def state(self) -> Any:
        """The replica's current state."""
        return self.replica.state

    @property
    def state_digest(self) -> str:
        """Digest of the current state, for cross-replica comparison."""
        return self.replica.state_digest

    @property
    def applied_log(self) -> List[AppliedCommand]:
        """Commands applied so far, in application order."""
        return self.replica.applied_log

    def applied_ids(self) -> List[str]:
        """Message ids applied so far, in application order."""
        return self.replica.applied_ids()

    # ------------------------------------------------------------------
    # Convenience for tests and benchmarks
    # ------------------------------------------------------------------
    @staticmethod
    def replicas_agree(replicas: List["ReplicatedStateMachine"]) -> bool:
        """Whether all replicas that applied the same number of commands are
        in identical states, and shorter logs are prefixes of longer ones."""
        logs = sorted((replica.applied_ids() for replica in replicas), key=len)
        for shorter, longer in zip(logs, logs[1:]):
            if longer[: len(shorter)] != shorter:
                return False
        by_length: Dict[int, str] = {}
        for replica in replicas:
            length = len(replica.applied_log)
            digest = replica.state_digest
            if length in by_length and by_length[length] != digest:
                return False
            by_length[length] = digest
        return True
