"""Deterministic consistent-hash ring: key space -> shard identifiers.

The ring is the *routing artifact* of the sharded KV store: an immutable,
versioned mapping from keys to logical shard ids.  Clients cache a ring
and route with it; the authoritative copy lives at the store
(:class:`repro.apps.kv.store.ShardedKV`), which bumps the version whenever
a rebalance changes key ownership.  A client holding a stale ring is not
an error -- its requests are rejected with ``"stale_ring"`` plus the
current ring, and it retries.  That retry loop is the availability cost of
rebalancing, and experiment E26 measures it.

Properties:

* **Deterministic** -- placement depends only on ``(shards, vnodes)`` via
  BLAKE2b, never on process ids, interpreter hash seeds or run order; two
  rings built from the same parameters agree byte-for-byte across runs
  and across OS processes (the :mod:`repro.parallel` sharding contract).
* **Consistent** -- each shard owns ``vnodes`` pseudo-random points on a
  64-bit circle; a key belongs to the shard owning the first point at or
  after its hash.  Adding one shard to an ``n``-shard ring moves roughly
  ``1/(n+1)`` of the key space and nothing else.
* **Versioned** -- :meth:`HashRing.with_shard` / :meth:`HashRing.without_shard`
  return a *new* ring with ``version + 1``; rings are value objects and
  never mutate, so "is this client stale?" is one integer comparison.

Note the ring maps keys to *shard ids*, not to protocol groups: a shard's
current group (which changes generation when its replica set is moved) is
the store's business, so replica moves do not invalidate client rings --
only ownership changes (splits/merges) do.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def stable_hash(text: str) -> int:
    """A 64-bit deterministic hash of ``text`` (BLAKE2b, seed-free).

    ``hash()`` is salted per interpreter; this is not, which is what makes
    ring placement reproducible across runs and parallel workers.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@lru_cache(maxsize=64)
def _ring_points(shards: Tuple[str, ...], vnodes: int) -> Tuple[Tuple[int, ...], Tuple[str, ...]]:
    """Sorted virtual-node points for a shard set (cached: rebalances are
    rare but lookups run per client operation)."""
    points: List[Tuple[int, str]] = []
    for shard in shards:
        for vnode in range(vnodes):
            points.append((stable_hash(f"{shard}#{vnode}"), shard))
    points.sort()
    return tuple(p for p, _ in points), tuple(s for _, s in points)


@dataclass(frozen=True)
class HashRing:
    """One immutable version of the key -> shard mapping."""

    version: int
    shards: Tuple[str, ...]
    #: Virtual nodes per shard; more vnodes = smoother balance, slower
    #: ring construction (lookups stay O(log(shards * vnodes))).
    vnodes: int = 64
    #: Ordered ``(parent, child)`` split lineage.  A child shard owns a
    #: pseudo-random half of its *parent's* arcs and nothing else -- the
    #: shard-split contract: splitting ``s2`` into ``s3`` must never move
    #: a key that ``s0`` owned, because only ``s2`` gets fenced and
    #: migrated.  Splits apply in order, so lineages nest (a child may be
    #: split again, or the same parent split repeatedly).
    splits: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError(f"ring version must be >= 1, got {self.version}")
        if not self.shards:
            raise ValueError("a ring needs at least one shard")
        if len(set(self.shards)) != len(self.shards):
            raise ValueError(f"duplicate shard ids in {self.shards}")
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        splits = tuple((parent, child) for parent, child in self.splits)
        children = [child for _, child in splits]
        if len(set(children)) != len(children):
            raise ValueError(f"duplicate split children in {splits}")
        for parent, child in splits:
            if parent == child or parent not in self.shards or child not in self.shards:
                raise ValueError(f"invalid split pair {(parent, child)}")
        if not [s for s in self.shards if s not in children]:
            raise ValueError("every shard is a split child; no ring roots left")
        # Canonicalize so rings built from differently-ordered shard lists
        # are equal value objects with identical placement.  Split order is
        # semantic (lineages nest) and is preserved as given.
        object.__setattr__(self, "shards", tuple(sorted(self.shards)))
        object.__setattr__(self, "splits", splits)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> str:
        """The shard id owning ``key`` under this ring version."""
        children = {child for _, child in self.splits}
        roots = tuple(s for s in self.shards if s not in children)
        owner = self._arc_owner(roots, key)
        # Descend the split lineage: each split subdivides only its
        # parent's arcs, deciding parent-vs-child on a two-shard sub-ring.
        for parent, child in self.splits:
            if owner == parent:
                owner = self._arc_owner(tuple(sorted((parent, child))), key)
        return owner

    def _arc_owner(self, shards: Tuple[str, ...], key: str) -> str:
        hashes, owners = _ring_points(shards, self.vnodes)
        index = bisect.bisect_left(hashes, stable_hash(key))
        if index == len(hashes):  # wrap around the circle
            index = 0
        return owners[index]

    def owners(self, keys: Iterable[str]) -> Dict[str, str]:
        """Batch :meth:`lookup` (rebalance planning)."""
        return {key: self.lookup(key) for key in keys}

    # ------------------------------------------------------------------
    # Evolution (always a new ring, version + 1)
    # ------------------------------------------------------------------
    def with_shard(self, shard_id: str, split_from: Optional[str] = None) -> "HashRing":
        """A new ring version that also owns ``shard_id``.

        With ``split_from``, the new shard takes over a pseudo-random half
        of *that shard's* key space and nothing else -- the shard-split
        form, where exactly one existing shard needs fencing and
        migration.  Without it, the new shard claims arcs from every
        existing shard (elastic scale-out; every shard must then migrate
        its moved keys).
        """
        if shard_id in self.shards:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        splits = self.splits
        if split_from is not None:
            if split_from not in self.shards:
                raise ValueError(f"split source {split_from!r} is not on the ring")
            splits = splits + ((split_from, shard_id),)
        return HashRing(
            self.version + 1, self.shards + (shard_id,), self.vnodes, splits
        )

    def without_shard(self, shard_id: str) -> "HashRing":
        """A new ring version without ``shard_id`` (shard merge/retire).

        A split child merges back into its parent; a shard that still has
        split children cannot be removed (merge leaf-first).
        """
        if shard_id not in self.shards:
            raise ValueError(f"shard {shard_id!r} is not on the ring")
        if any(parent == shard_id for parent, _ in self.splits):
            raise ValueError(
                f"shard {shard_id!r} has split children; merge those first"
            )
        remaining = tuple(s for s in self.shards if s != shard_id)
        splits = tuple(pair for pair in self.splits if pair[1] != shard_id)
        return HashRing(self.version + 1, remaining, self.vnodes, splits)

    def moved_keys(self, keys: Iterable[str], new_ring: "HashRing") -> List[str]:
        """Keys whose owner differs between this ring and ``new_ring``,
        in sorted order (deterministic migration plans)."""
        return sorted(
            key for key in keys if self.lookup(key) != new_ring.lookup(key)
        )

    def describe(self) -> Dict[str, object]:
        """JSON-shaped description (benchmark reports, fence commands)."""
        description: Dict[str, object] = {
            "version": self.version,
            "shards": list(self.shards),
            "vnodes": self.vnodes,
        }
        if self.splits:
            description["splits"] = [list(pair) for pair in self.splits]
        return description

    @staticmethod
    def from_description(description: Dict[str, object]) -> "HashRing":
        """Rebuild a ring from :meth:`describe` output.  Used by the pure
        command-apply path so every replica reconstructs the *identical*
        ring named by a fence command."""
        return HashRing(
            int(description["version"]),
            tuple(description["shards"]),  # type: ignore[arg-type]
            int(description.get("vnodes", 64)),
            tuple(
                (str(parent), str(child))
                for parent, child in description.get("splits", ())  # type: ignore[union-attr]
            ),
        )
