"""KV-aware workload: thousands of logical clients routed through the ring.

:class:`KVWorkload` is the KV counterpart of
:class:`repro.workloads.client.OpenLoopClient`: open-loop arrivals (any
:class:`~repro.workloads.arrivals.ArrivalProcess`) multiplexed over a
population of **logical clients**, except that each arrival draws a *key*
(Zipf-skewed via the same :class:`~repro.workloads.selection.ZipfSenders`
machinery, so hot-key skew concentrates load on whichever shard owns the
hot keys) and routes it through the client's **cached, possibly stale**
:class:`~repro.apps.kv.ring.HashRing`.

Each logical client:

* holds one outstanding operation at a time (an arrival that lands on a
  busy client probes for a free one; if none, it counts as blocked),
* caches a ring and refreshes it from every ``stale_ring`` rejection,
* keeps a per-shard session watermark ``(generation, position)`` for
  read-your-writes + monotonic reads, resetting it when a replica move
  bumps the shard's generation,
* retries ``behind`` / ``unavailable`` / ``rejected_moved`` outcomes
  after ``retry_delay``, rotating to another alive replica -- the
  failover and rebalance client loops E26 measures,
* never times out a submitted write: the acknowledgement instant is
  exactly when its read-your-writes expectation advances, which keeps
  the oracle's obligations aligned with client state.  Writes whose
  coordinator crashed stay pending (reported, and the client stays
  busy -- the honest cost of a crash without client-side dedup).

Per-shard completed-operation time bins feed
:func:`benchmarks.common.unavailability_windows`, which is how the
benchmark turns "shard A stopped serving for 12s during the rebalance"
into a number.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.apps.kv.ring import HashRing
from repro.apps.kv.store import ShardedKV
from repro.stats import LatencyReservoir
from repro.workloads.arrivals import ArrivalProcess, PoissonArrivals
from repro.workloads.selection import ZipfSenders


class _Client:
    """State of one logical client (slots: there are thousands)."""

    __slots__ = ("name", "ring", "marks", "busy", "ops")

    def __init__(self, name: str, ring: HashRing) -> None:
        self.name = name
        self.ring = ring
        #: shard id -> (generation, position) session watermark.
        self.marks: Dict[str, tuple] = {}
        self.busy = False
        self.ops = 0

    def mark(self, shard: str) -> tuple:
        return self.marks.get(shard, (0, 0))

    def advance(self, shard: str, generation: int, position: int) -> None:
        gen, pos = self.mark(shard)
        if generation > gen:
            self.marks[shard] = (generation, position)
        elif generation == gen and position > pos:
            self.marks[shard] = (generation, position)


class KVWorkload:
    """Open-loop KV traffic against one :class:`ShardedKV`."""

    def __init__(
        self,
        store: ShardedKV,
        *,
        clients: int = 1000,
        keys: int = 512,
        read_fraction: float = 0.7,
        zipf_exponent: float = 1.1,
        arrivals: Optional[ArrivalProcess] = None,
        rate: float = 50.0,
        duration: float = 100.0,
        drain: float = 30.0,
        retry_delay: float = 1.0,
        retry_cap: float = 8.0,
        bin_width: float = 5.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.store = store
        self.session = store.session
        self.sim = store.session.sim
        self.keys = [f"k{index}" for index in range(keys)]
        self.selection = ZipfSenders(exponent=zipf_exponent)
        self.read_fraction = read_fraction
        self.arrivals = arrivals or PoissonArrivals(rate=rate)
        self.duration = duration
        self.drain = drain
        self.retry_delay = retry_delay
        self.retry_cap = retry_cap
        self.bin_width = bin_width
        self.rng = random.Random(seed)
        self.clients = [_Client(f"c{index}", store.ring) for index in range(clients)]
        self.read_latency = LatencyReservoir(seed=seed)
        self.write_latency = LatencyReservoir(seed=seed + 1)
        self.counters: Dict[str, int] = {
            "offered": 0,
            "blocked_all_busy": 0,
            "completed_reads": 0,
            "completed_writes": 0,
            "stale_refreshes": 0,
            "moved_retries": 0,
            "behind_retries": 0,
            "failover_redirects": 0,
            "unavailable_retries": 0,
            "abandoned": 0,
        }
        #: shard id -> {bin index -> completed ops} (serving evidence).
        self.completed_bins: Dict[str, Dict[int, int]] = {}
        #: shard id -> {bin index -> routed ops} (demand evidence).
        self.offered_bins: Dict[str, Dict[int, int]] = {}
        self._started_at: Optional[float] = None
        self._stop_at = 0.0
        self._gaps = None

    # ------------------------------------------------------------------
    # Arrival loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started_at = self.sim.now
        self._stop_at = self.sim.now + self.duration
        self._gaps = self.arrivals.gaps(self.rng)
        self.sim.schedule(next(self._gaps), self._on_arrival, label="kv_arrival")

    def _on_arrival(self) -> None:
        if self.sim.now < self._stop_at:
            self.sim.schedule(next(self._gaps), self._on_arrival, label="kv_arrival")
        else:
            return
        client = self._pick_client()
        if client is None:
            self.counters["blocked_all_busy"] += 1
            return
        self.counters["offered"] += 1
        key, _ = self.selection.choose(self.rng, self.keys, ("-",))
        is_read = self.rng.random() < self.read_fraction
        client.busy = True
        client.ops += 1
        self._attempt(client, key, is_read, started=self.sim.now, attempt=0, avoid=None)

    def _pick_client(self) -> Optional[_Client]:
        # A few probes keep this O(1) with thousands of mostly-idle clients.
        for _ in range(8):
            client = self.clients[self.rng.randrange(len(self.clients))]
            if not client.busy:
                return client
        return None

    # ------------------------------------------------------------------
    # One operation, with retries
    # ------------------------------------------------------------------
    def _attempt(
        self,
        client: _Client,
        key: str,
        is_read: bool,
        started: float,
        attempt: int,
        avoid: Optional[str],
    ) -> None:
        if client.busy is False:
            return  # completed by an earlier path
        if self.sim.now > self._stop_at + self.drain:
            self.counters["abandoned"] += 1
            client.busy = False
            return
        shard_id = client.ring.lookup(key)
        via = self._pick_replica(shard_id, client.ring, avoid)
        if via is None:
            # Routed shard unknown/unreachable under this ring: refresh
            # against the authoritative ring and retry.
            client.ring = self.store.ring
            self.counters["unavailable_retries"] += 1
            self._retry(client, key, is_read, started, attempt, None)
            return
        self._note_bin(self.offered_bins, shard_id)
        if is_read:
            self._read_once(client, key, started, attempt, via)
        else:
            self._write_once(client, key, started, attempt, via)

    def _pick_replica(
        self, shard_id: str, ring: HashRing, avoid: Optional[str]
    ) -> Optional[str]:
        shard = self.store.shards.get(shard_id)
        if shard is None:
            return None
        alive = shard.alive_members()
        if not alive:
            return None
        pool = [m for m in alive if m != avoid] or alive
        return pool[self.rng.randrange(len(pool))]

    def _retry(
        self,
        client: _Client,
        key: str,
        is_read: bool,
        started: float,
        attempt: int,
        avoid: Optional[str],
    ) -> None:
        # Exponential backoff: a long outage (crash recovery, a frozen
        # shard mid-rebalance) must not turn every stuck client into a
        # per-second retry storm through the coordinator.
        delay = min(self.retry_delay * (2.0 ** min(attempt, 10)), self.retry_cap)
        self.sim.schedule(
            delay,
            self._attempt,
            client,
            key,
            is_read,
            started,
            attempt + 1,
            avoid,
            label="kv_retry",
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _read_once(
        self, client: _Client, key: str, started: float, attempt: int, via: str
    ) -> None:
        shard_id = client.ring.lookup(key)
        _gen, position = client.mark(shard_id)
        response = self.store.read(
            client=client.name,
            key=key,
            via=via,
            ring=client.ring,
            min_position=position,
        )
        status = response["status"]
        if status == "ok":
            client.advance(shard_id, response["generation"], response["position"])
            client.busy = False
            self.counters["completed_reads"] += 1
            self.read_latency.add(self.sim.now - started)
            self._note_bin(self.completed_bins, response["shard"])
            return
        if status == "behind":
            generation = response.get("generation", 0)
            if generation > client.mark(shard_id)[0]:
                # Replica move bumped the generation: old watermarks are
                # meaningless in the new group's positions.
                client.marks[shard_id] = (generation, 0)
            self.counters["behind_retries"] += 1
            self._retry(client, key, True, started, attempt, via)
            return
        self._handle_reject(client, key, True, started, attempt, via, response)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _write_once(
        self, client: _Client, key: str, started: float, attempt: int, via: str
    ) -> None:
        def on_ack(ack: Dict[str, object]) -> None:
            if ack["status"] == "applied":
                client.advance(ack["shard"], ack["generation"], ack["position"])
                client.busy = False
                self.counters["completed_writes"] += 1
                self.write_latency.add(self.sim.now - started)
                self._note_bin(self.completed_bins, ack["shard"])
            else:  # rejected_moved: the key's shard changed under us
                client.ring = ack["ring"]
                self.counters["moved_retries"] += 1
                self._retry(client, key, False, started, attempt, None)

        response = self.store.submit(
            client=client.name,
            client_op=client.ops * 1_000_000 + attempt,
            op="set",
            key=key,
            value=f"{client.name}:{client.ops}:{attempt}",
            via=via,
            ring=client.ring,
            callback=on_ack,
        )
        if response["status"] == "submitted":
            return  # resolution arrives through on_ack
        self._handle_reject(client, key, False, started, attempt, via, response)

    # ------------------------------------------------------------------
    # Shared rejection handling
    # ------------------------------------------------------------------
    def _handle_reject(
        self,
        client: _Client,
        key: str,
        is_read: bool,
        started: float,
        attempt: int,
        via: str,
        response: Dict[str, object],
    ) -> None:
        status = response["status"]
        if status == "stale_ring":
            client.ring = response["ring"]
            self.counters["stale_refreshes"] += 1
            self._retry(client, key, is_read, started, attempt, None)
        elif status == "frozen":
            # Mid-rebalance freeze: the key's new home is not published
            # yet.  Refresh the ring (it may already be) and back off.
            client.ring = response["ring"]
            self.counters["moved_retries"] += 1
            self._retry(client, key, is_read, started, attempt, None)
        elif status == "unavailable":
            self.counters["failover_redirects"] += 1
            self._retry(client, key, is_read, started, attempt, via)
        else:  # pragma: no cover - store statuses are closed
            raise RuntimeError(f"unexpected store response {response!r}")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _note_bin(self, bins: Dict[str, Dict[int, int]], shard_id: str) -> None:
        index = int(self.sim.now / self.bin_width)
        per_shard = bins.setdefault(shard_id, {})
        per_shard[index] = per_shard.get(index, 0) + 1

    def shard_bins(self, shard_id: str) -> List[tuple]:
        """``(start, end, served, offered)`` series for one shard, covering
        the workload's whole offered window -- the input shape of
        :func:`benchmarks.common.unavailability_windows`."""
        if self._started_at is None:
            return []
        served = self.completed_bins.get(shard_id, {})
        offered = self.offered_bins.get(shard_id, {})
        first = int(self._started_at / self.bin_width)
        last = max([first] + list(served) + list(offered))
        return [
            (
                index * self.bin_width,
                (index + 1) * self.bin_width,
                served.get(index, 0),
                offered.get(index, 0),
            )
            for index in range(first, last + 1)
        ]

    def in_flight(self) -> int:
        return sum(1 for client in self.clients if client.busy)

    def report(self) -> Dict[str, Any]:
        return {
            "clients": len(self.clients),
            "keys": len(self.keys),
            "read_fraction": self.read_fraction,
            "counters": dict(self.counters),
            "in_flight": self.in_flight(),
            "read_latency": self.read_latency.summary(),
            "write_latency": self.write_latency.summary(),
            "per_shard_completed": {
                shard: sum(bins.values())
                for shard, bins in sorted(self.completed_bins.items())
            },
        }
