"""Rebalancing and replica placement as *protocol* events.

The point of this module is that the sharded store needs no external
control plane: splitting a shard and moving a replica set are both the
paper's overlapping-group recipe (§2 / §5.3, the server-migration
scenario) driven entirely through the public protocol API, while client
traffic keeps flowing.

A **shard split** (``split_shard``) moves part of a shard's key space to
a brand-new shard:

1. *form* -- an overlap member of the source shard initiates dynamic
   formation of the new shard's group (the other members vote; the
   start-group messages flush per §5.3);
2. *fence* -- a ``("fence", {"ring": .., "to_shard": ..})`` command is
   multicast in the **source** group.  It occupies one position in the
   shard's total order, so every replica rejects exactly the same suffix
   of mutations on moved keys, and the state at the fence position is a
   deterministic migration snapshot;
3. *migrate* -- the coordinator multicasts one ``migrate_in`` per moved
   key into the new group, each carrying the source digest for the
   oracle's transfer-integrity check;
4. *publish* -- only after every ``migrate_in`` is applied at the
   coordinator does the store publish the new ring (version + 1).  The
   new shard's ``read_floor`` is set to the coordinator's apply position,
   so no replica can serve a read from a prefix missing migrated keys.
   Stale clients now get ``stale_ring`` + the new ring and retry;
5. *drop* -- a ``drop_moved`` command garbage-collects the moved keys
   from the source shard (the fence stays: late stale writes keep being
   rejected deterministically).

A **replica move** (``move_replica``) rehosts a whole shard on a new
member set: same dance with a ``freeze_all`` fence and a full-state
transfer, then the store's shard table swaps to the new generation
(``shard@gN+1``) and the old members *voluntarily depart* their group --
the ring does not change, because the ring maps keys to shard ids, not
to groups.

Everything is event-driven (``sim.schedule`` polls plus apply
acknowledgements), so rebalances overlap live client traffic -- which is
exactly what experiment E26 measures: the availability cost, per shard,
of rebalancing under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.kv.commands import moved_keys, value_digest
from repro.apps.kv.ring import HashRing
from repro.apps.kv.store import Shard, ShardedKV, group_name


@dataclass
class RebalanceReport:
    """Timeline of one rebalance operation (simulated-time stamps)."""

    kind: str  # "split" | "move"
    shard: str
    target: str  # new shard id (split) or new group id (move)
    started_at: float
    formed_at: Optional[float] = None
    fenced_at: Optional[float] = None
    migrated_at: Optional[float] = None
    published_at: Optional[float] = None
    dropped_at: Optional[float] = None
    moved_keys: int = 0
    failed: Optional[str] = None
    #: Ordered (stamp, step) pairs for human-readable reports.
    timeline: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.published_at is not None and self.failed is None

    @property
    def duration(self) -> Optional[float]:
        if self.published_at is None:
            return None
        return self.published_at - self.started_at

    def _mark(self, now: float, step: str) -> None:
        self.timeline.append((now, step))

    def describe(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "shard": self.shard,
            "target": self.target,
            "started_at": self.started_at,
            "formed_at": self.formed_at,
            "fenced_at": self.fenced_at,
            "migrated_at": self.migrated_at,
            "published_at": self.published_at,
            "dropped_at": self.dropped_at,
            "moved_keys": self.moved_keys,
            "duration": self.duration,
            "complete": self.complete,
            "failed": self.failed,
        }


class Rebalancer:
    """Drives splits and replica moves against one :class:`ShardedKV`.

    Both operations return a :class:`RebalanceReport` immediately and
    complete asynchronously as the simulation runs; poll
    ``report.complete`` (e.g. with ``session.run_until``) or just keep
    running the workload -- that is the intended usage.
    """

    #: How often (simulated time) formation progress is polled.
    POLL_INTERVAL = 1.0
    #: Give up on a formation that never completes (partition, crashes).
    FORMATION_TIMEOUT = 300.0

    def __init__(self, store: ShardedKV) -> None:
        self.store = store
        self.session = store.session
        self.reports: List[RebalanceReport] = []

    # ------------------------------------------------------------------
    # Shard split
    # ------------------------------------------------------------------
    def split_shard(
        self,
        source_shard: str,
        new_shard: str,
        members: List[str],
    ) -> RebalanceReport:
        """Split ``source_shard``: create ``new_shard`` on ``members`` and
        migrate the keys the grown ring assigns to it.

        ``members`` must overlap the source shard's alive replicas -- the
        overlap member coordinates (initiates formation, multicasts the
        fence into the old group and the state into the new one), exactly
        the paper's Fig.-1 role of ``P1``.
        """
        if new_shard in self.store.shards:
            raise ValueError(f"shard {new_shard!r} already exists")
        source = self.store.shards[source_shard]
        coordinator = self._pick_coordinator(source, members)
        report = RebalanceReport(
            "split", source_shard, new_shard, self.session.sim.now
        )
        report._mark(report.started_at, f"formation initiated by {coordinator}")
        self.reports.append(report)
        # Split form: the new shard subdivides ONLY the source's key
        # space.  A plain with_shard would steal arcs from every shard,
        # but only the source gets fenced and migrated -- keys moving from
        # any other shard would be silently lost.
        new_ring = self.store.ring.with_shard(new_shard, split_from=source_shard)
        gid = group_name(new_shard, 1)
        self.session[coordinator].form_group(gid, members, mode=self.store.mode)

        def on_formed() -> None:
            report.formed_at = self.session.sim.now
            report._mark(report.formed_at, f"group {gid} formed")
            # Wire the new shard's replicas now -- unreachable by clients
            # until the ring is published, but ready to apply migrations.
            shard = self.store._build_shard(
                new_shard, 1, tuple(members), form=False
            )
            self.store.shards[new_shard] = shard
            self._fence_and_migrate(
                report,
                source,
                shard,
                coordinator,
                fence={"ring": new_ring.describe(), "to_shard": new_shard},
                on_migrated=lambda position: self._publish_split(
                    report, source, shard, coordinator, new_ring, position
                ),
            )

        self._await_formation(report, gid, members, on_formed)
        return report

    def _publish_split(
        self,
        report: RebalanceReport,
        source: Shard,
        shard: Shard,
        coordinator: str,
        new_ring: HashRing,
        floor_position: int,
    ) -> None:
        shard.read_floor = floor_position
        self.store.publish_ring(new_ring)
        report.published_at = self.session.sim.now
        report._mark(report.published_at, f"ring v{new_ring.version} published")
        # The moved keys are now served by the new shard; garbage-collect
        # them from the source (the fence stays installed).
        def on_dropped(ack: Dict[str, object]) -> None:
            report.dropped_at = self.session.sim.now
            report._mark(report.dropped_at, "moved keys dropped at source")

        self.store._submit_control(
            coordinator, source.group_id, ("drop_moved",), on_dropped
        )

    # ------------------------------------------------------------------
    # Replica move
    # ------------------------------------------------------------------
    def move_replica(
        self,
        shard_id: str,
        new_members: List[str],
    ) -> RebalanceReport:
        """Rehost ``shard_id`` on ``new_members`` (next group generation).

        The old generation is frozen (``freeze_all`` fence), its state
        transferred into the freshly formed ``shard@gN+1`` group, the
        store's shard table swapped, and the old members depart their
        group voluntarily.  The ring is untouched: ownership of keys did
        not change, only placement."""
        old = self.store.shards[shard_id]
        coordinator = self._pick_coordinator(old, new_members)
        generation = old.generation + 1
        gid = group_name(shard_id, generation)
        report = RebalanceReport("move", shard_id, gid, self.session.sim.now)
        report._mark(report.started_at, f"formation initiated by {coordinator}")
        self.reports.append(report)
        self.session[coordinator].form_group(gid, new_members, mode=self.store.mode)

        def on_formed() -> None:
            report.formed_at = self.session.sim.now
            report._mark(report.formed_at, f"group {gid} formed")
            shard = self.store._build_shard(
                shard_id, generation, tuple(new_members), form=False
            )
            # NOT yet in store.shards: the old generation keeps serving
            # until the transfer completes.
            self._fence_and_migrate(
                report,
                old,
                shard,
                coordinator,
                fence={"freeze_all": True},
                on_migrated=lambda position: self._swap_generation(
                    report, old, shard, position
                ),
            )

        self._await_formation(report, gid, new_members, on_formed)
        return report

    def _swap_generation(
        self,
        report: RebalanceReport,
        old: Shard,
        shard: Shard,
        floor_position: int,
    ) -> None:
        shard.read_floor = floor_position
        self.store.shards[shard.shard_id] = shard
        old.retired = True
        report.published_at = self.session.sim.now
        report._mark(
            report.published_at, f"shard table swapped to generation {shard.generation}"
        )
        # Old members depart voluntarily; remaining ones agree on the
        # shrinking views until the old group winds down (§5.2).
        for member in old.members:
            if old.replicas[member].alive:
                self.session.leave(member, old.group_id)
        report._mark(self.session.sim.now, f"old group {old.group_id} departed")

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------
    def _pick_coordinator(self, source: Shard, members: List[str]) -> str:
        overlap = [m for m in members if m in source.replicas and source.replicas[m].alive]
        if not overlap:
            raise ValueError(
                f"new members {members} must overlap shard {source.shard_id!r}'s "
                f"alive replicas {source.alive_members()}"
            )
        return overlap[0]

    def _await_formation(self, report, gid, members, on_formed) -> None:
        """Poll until every member activated the group and left the §5.3
        step-5 formation wait, then fire ``on_formed`` exactly once."""
        sim = self.session.sim
        deadline = sim.now + self.FORMATION_TIMEOUT

        def poll() -> None:
            if report.failed is not None:
                return
            ready = all(
                self.session[m].is_member(gid)
                and not self.session[m].endpoint(gid).in_formation_wait
                for m in members
                if not self.session[m].crashed
            ) and any(not self.session[m].crashed for m in members)
            if ready:
                on_formed()
                return
            if sim.now >= deadline:
                report.failed = f"formation of {gid} timed out"
                report._mark(sim.now, report.failed)
                return
            sim.schedule(self.POLL_INTERVAL, poll, label="kv_rebalance_poll")

        sim.schedule(self.POLL_INTERVAL, poll, label="kv_rebalance_poll")

    def _fence_and_migrate(
        self,
        report: RebalanceReport,
        source: Shard,
        target: Shard,
        coordinator: str,
        fence: Dict[str, object],
        on_migrated,
    ) -> None:
        """Fence the source group, snapshot the fenced-out keys at the
        coordinator's apply position, stream them into the target group,
        and call ``on_migrated(coordinator_target_position)`` once every
        transfer is applied at the coordinator."""

        def on_fenced(ack: Dict[str, object]) -> None:
            report.fenced_at = self.session.sim.now
            report._mark(report.fenced_at, f"fence applied at position {ack['position']}")
            state = source.replicas[coordinator].state
            if fence.get("freeze_all"):
                plan = sorted(k for k in source.replicas[coordinator].snapshot())
            else:
                plan = moved_keys(state)
            report.moved_keys = len(plan)
            remaining = {"count": len(plan)}

            def finish() -> None:
                report.migrated_at = self.session.sim.now
                report._mark(
                    report.migrated_at, f"{report.moved_keys} keys migrated"
                )
                on_migrated(target.replicas[coordinator].position)

            if not plan:
                finish()
                return

            def on_one_migrated(ack: Dict[str, object]) -> None:
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    finish()

            frozen = source.replicas[coordinator].state
            for key in plan:
                meta = {
                    "from_shard": source.shard_id,
                    "from_position": ack["position"],
                    "digest": value_digest(frozen[key]),
                }
                self.store._submit_control(
                    coordinator,
                    target.group_id,
                    ("migrate_in", key, frozen[key], meta),
                    on_one_migrated,
                )

        self.store._submit_control(
            coordinator, source.group_id, ("fence", dict(fence)), on_fenced
        )
