"""repro.apps.kv: a sharded, replicated key-value store on Newtop groups.

The production-shaped application of the paper's protocol: the key space
is split over shards by a deterministic consistent-hash ring, **each
shard is one Newtop group** running the replicated-state-machine
pattern, rebalancing and failover are protocol events (overlapping group
formation, state transfer, voluntary departure, membership exclusion),
and an online oracle checks per-shard linearizable writes plus
read-your-writes across the ring with zero stored trace events.

Modules:

* :mod:`~repro.apps.kv.ring` -- versioned consistent-hash routing;
* :mod:`~repro.apps.kv.commands` -- the command vocabulary and the single
  pure apply function (also used by the single-shard
  :class:`repro.apps.replicated_store.ReplicatedStore`);
* :mod:`~repro.apps.kv.store` -- replicas, shards, and the store front-end;
* :mod:`~repro.apps.kv.rebalance` -- splits and replica moves as
  overlapping-group dances;
* :mod:`~repro.apps.kv.oracle` -- the streaming consistency checker;
* :mod:`~repro.apps.kv.workload` -- thousands of ring-routed logical
  clients with Zipf key skew.

Experiment E26 (``benchmarks/bench_kv_shards.py``) drives all of it:
churn plus a live shard split under load, measuring per-shard goodput,
rebalance-induced unavailability windows, and tail latency.
"""

from repro.apps.kv.commands import (
    META_KEY,
    MUTATING_OPS,
    apply_kv_command,
    command_info,
    fence_of,
    fence_rejects,
    moved_keys,
    value_digest,
)
from repro.apps.kv.oracle import KVOracle
from repro.apps.kv.rebalance import RebalanceReport, Rebalancer
from repro.apps.kv.ring import HashRing, stable_hash
from repro.apps.kv.store import (
    KVReplica,
    REBALANCE_CLIENT,
    Shard,
    ShardedKV,
    group_name,
)
from repro.apps.kv.workload import KVWorkload

__all__ = [
    "HashRing",
    "KVOracle",
    "KVReplica",
    "KVWorkload",
    "META_KEY",
    "MUTATING_OPS",
    "REBALANCE_CLIENT",
    "RebalanceReport",
    "Rebalancer",
    "Shard",
    "ShardedKV",
    "apply_kv_command",
    "command_info",
    "fence_of",
    "fence_rejects",
    "group_name",
    "moved_keys",
    "stable_hash",
    "value_digest",
]
