"""Online KV consistency oracle: a :class:`~repro.net.trace.TraceSink`.

The oracle consumes the stream of :data:`~repro.net.trace.KV_APPLY` and
:data:`~repro.net.trace.KV_READ` events the store emits and checks, with
bounded memory and **zero stored trace events**, the guarantees the
sharded store claims:

**Per-shard order agreement** (linearizable writes within a shard).
  The first replica to apply position ``p`` of a group becomes the
  arbiter for ``p``; every other replica must apply the *same message
  with the same outcome and resulting digest* at ``p``, and each
  replica's positions must be gapless and monotone.  This is per-key
  linearizability within a shard made checkable: one agreed total order
  of applied writes.

**Read prefix-consistency** (reads serve the agreed order).
  A read served at replica position ``p`` must return exactly the value
  of the key's last agreed write at or before ``p`` -- same writer
  message, same digest; a key with no write in the prefix must read as
  absent.

**Read-your-writes across the ring.**
  When a client's write is acknowledged (applied at its coordinator, at
  position ``p`` of group ``G``), every later read of that key by that
  client served from ``G`` must be at position ``>= p``.  Reads served
  from a *different* group (the key migrated, or the shard's replica set
  moved) are covered by the transfer-integrity check plus the store's
  ``read_floor`` and re-enter this check after the client's next write.

**Monotonic reads.**
  Per client and group, served read positions never decrease.

**State-transfer integrity.**
  A ``migrate_in`` applied into a fresh key must produce exactly the
  digest the coordinator captured from the source shard's fenced state.

Memory is bounded by a sliding window per group (``window`` positions of
arbiter history; per-key history keeps everything in the window plus the
latest older write) and one small tuple per (client, key) obligation.
A replica lagging more than ``window`` positions behind the front is
checked only for gaplessness, not re-checked against pruned arbiter
entries -- the honest cost of online checking.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.net.trace import KV_APPLY, KV_READ, TraceEvent, TraceSink

#: Write-like ops that produce a per-key history entry when applied.
_WRITE_OPS = frozenset({"set", "increment", "delete", "migrate_in"})


class KVOracle(TraceSink):
    """Streaming consistency checker for :class:`repro.apps.kv`."""

    def __init__(self, *, window: int = 10_000, max_violations: int = 50) -> None:
        self.window = window
        self.max_violations = max_violations
        #: group -> position -> (msg_id, outcome, key, digest).
        self._arbiter: Dict[str, Dict[int, Tuple[str, str, Optional[str], Optional[str]]]] = {}
        #: group -> process -> applied position (gapless monotone check).
        self._progress: Dict[str, Dict[str, int]] = {}
        #: group -> highest position seen (prune cursor).
        self._front: Dict[str, int] = {}
        #: (group, key) -> list of (position, msg_id, digest), pruned.
        self._history: Dict[Tuple[str, str], List[Tuple[int, str, Optional[str]]]] = {}
        #: (client, key) -> (group, position) of the last acked write.
        self._obligations: Dict[Tuple[str, str], Tuple[str, int]] = {}
        #: (client, group) -> highest served read position.
        self._read_floor: Dict[Tuple[str, str], int] = {}
        self.violations: List[Dict[str, Any]] = []
        self.violation_count = 0
        self.applies_checked = 0
        self.reads_checked = 0

    # ------------------------------------------------------------------
    # Sink interface
    # ------------------------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        if event.kind == KV_APPLY:
            self._on_apply(event)
        elif event.kind == KV_READ:
            self._on_read(event)

    @property
    def passed(self) -> bool:
        return self.violation_count == 0

    def summary(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "violations": self.violation_count,
            "first_violations": list(self.violations[:5]),
            "applies_checked": self.applies_checked,
            "reads_checked": self.reads_checked,
            "groups": len(self._progress),
            "open_obligations": len(self._obligations),
        }

    def _violate(self, check: str, event: TraceEvent, **detail: Any) -> None:
        self.violation_count += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(
                {
                    "check": check,
                    "time": event.time,
                    "process": event.process,
                    "group": event.group,
                    **detail,
                }
            )

    # ------------------------------------------------------------------
    # Applies
    # ------------------------------------------------------------------
    def _on_apply(self, event: TraceEvent) -> None:
        self.applies_checked += 1
        group = event.group or ""
        position = event.detail("position")
        op = event.detail("op")
        key = event.detail("key")
        outcome = event.detail("outcome")
        digest = event.detail("digest")
        msg_id = event.message_id or ""

        # Gapless, monotone per-replica progress.
        progress = self._progress.setdefault(group, {})
        previous = progress.get(event.process, 0)
        if position != previous + 1:
            self._violate(
                "apply_gap",
                event,
                position=position,
                expected=previous + 1,
            )
        progress[event.process] = position

        # Order agreement against the arbiter (first replica to apply p).
        arbiter = self._arbiter.setdefault(group, {})
        entry = arbiter.get(position)
        if entry is None:
            front = self._front.get(group, 0)
            if position <= front - self.window:
                # The arbiter entry was pruned: a replica lagging beyond
                # the window is checked for gaplessness only.
                return
            arbiter[position] = (msg_id, outcome, key, digest)
            if position > front:
                self._front[group] = position
                self._prune(group, position)
            first = True
        else:
            first = False
            if entry[0] != msg_id:
                self._violate(
                    "order_divergence",
                    event,
                    position=position,
                    arbiter_message=entry[0],
                    message=msg_id,
                )
            elif entry[1] != outcome or entry[3] != digest:
                self._violate(
                    "state_divergence",
                    event,
                    position=position,
                    arbiter=(entry[1], entry[3]),
                    replica=(outcome, digest),
                )

        client = event.detail("client")
        via = event.detail("via")
        if (
            client is not None
            and key is not None
            and outcome == "applied"
            and via == event.process
            and op in ("set", "increment", "delete")
        ):
            # The coordinator's apply is the acknowledgement instant: from
            # here on the client must see this write (or a later one).
            self._obligations[(client, key)] = (group, position)

        if not first:
            return

        # Arbiter-side bookkeeping: history and transfer integrity.
        if key is not None and outcome == "applied" and op in _WRITE_OPS:
            history = self._history.setdefault((group, key), [])
            if op == "migrate_in":
                from_digest = event.detail("from_digest")
                if not history and digest != from_digest:
                    self._violate(
                        "transfer_integrity",
                        event,
                        key=key,
                        expected=from_digest,
                        got=digest,
                    )
            history.append((position, msg_id, digest))

    def _prune(self, group: str, front: int) -> None:
        """Drop arbiter entries and history below the sliding window."""
        cut = front - self.window
        if cut <= 0:
            return
        arbiter = self._arbiter[group]
        if len(arbiter) > self.window + 64:
            for position in [p for p in arbiter if p < cut]:
                del arbiter[position]
        # History pruning is lazy (per read) to avoid scanning every key.

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _on_read(self, event: TraceEvent) -> None:
        self.reads_checked += 1
        group = event.group or ""
        key = event.detail("key")
        position = event.detail("position")
        required = event.detail("required") or 0
        digest = event.detail("digest")
        writer = event.message_id
        client = event.detail("client")

        if position < required:
            self._violate(
                "watermark_ignored", event, position=position, required=required
            )

        # Prefix consistency: the read must serve the last agreed write
        # at or before the replica's position.
        history = self._history.get((group, key))
        entry = None
        if history:
            for candidate in reversed(history):
                if candidate[0] <= position:
                    entry = candidate
                    break
            # Lazy prune: keep the newest entry at/below the window cut.
            cut = self._front.get(group, 0) - self.window
            if cut > 0 and len(history) > 1:
                keep = [e for e in history if e[0] > cut]
                older = [e for e in history if e[0] <= cut]
                if older:
                    keep.insert(0, older[-1])
                if len(keep) < len(history):
                    history[:] = keep
        if entry is None:
            if digest is not None:
                self._violate(
                    "phantom_read", event, key=key, position=position, digest=digest
                )
        else:
            if digest != entry[2] or (digest is not None and writer != entry[1]):
                self._violate(
                    "stale_or_divergent_read",
                    event,
                    key=key,
                    position=position,
                    expected=(entry[1], entry[2]),
                    got=(writer, digest),
                )

        if client is None:
            return

        # Read-your-writes (same group; cross-group is covered by the
        # transfer-integrity check + the store's read_floor).
        obligation = self._obligations.get((client, key))
        if obligation is not None and obligation[0] == group and position < obligation[1]:
            self._violate(
                "read_your_writes",
                event,
                key=key,
                position=position,
                obliged=obligation[1],
            )

        # Monotonic reads per (client, group).
        floor_key = (client, group)
        floor = self._read_floor.get(floor_key, 0)
        if position < floor:
            self._violate(
                "monotonic_reads", event, position=position, floor=floor
            )
        else:
            self._read_floor[floor_key] = position
