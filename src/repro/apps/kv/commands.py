"""The KV command vocabulary and its pure, deterministic apply function.

Every mutation of a shard is a command tuple multicast in the shard's
Newtop group and applied by each replica in the group's total delivery
order.  :func:`apply_kv_command` is the *single* transition function for
every store in this repository: the sharded store applies it per shard,
and :class:`repro.apps.replicated_store.ReplicatedStore` -- the
single-shard special case -- applies the very same function, so there is
one KV implementation, not two.

Commands (tuples, JSON-able; an optional trailing ``origin`` dict carries
``{"client", "op", "via"}`` provenance for acknowledgement and the
consistency oracle -- the apply result never depends on it):

``("set", key, value[, origin])``
    Bind ``key`` to ``value``.
``("delete", key[, origin])``
    Remove ``key`` (no-op when absent).
``("increment", key, amount[, origin])``
    Add ``amount`` to the integer at ``key`` (default 0).
``("noop"[, origin])``
    Advance the applied position without touching data (ordered reads).
``("fence", fence[, origin])``
    Install a rebalance fence.  ``fence`` is either
    ``{"ring": <HashRing.describe()>, "to_shard": shard_id}`` -- reject
    every later mutation of keys the named ring assigns to ``to_shard``
    (shard split) -- or ``{"freeze_all": true}`` -- reject every later
    mutation (whole-shard replica move).  Because the fence sits in the
    same total order as the writes it guards, all replicas reject exactly
    the same suffix, and the migration snapshot at the fence position is
    deterministic.
``("migrate_in", key, value, meta[, origin])``
    State transfer into a new shard: bind ``key`` unless already present
    (first-writer-wins belt-and-braces; migrations complete before the
    ring that exposes the shard is published).  ``meta`` carries
    ``{"from_shard", "from_position", "digest"}`` so the oracle can check
    the transferred value against the source shard's frozen state.
``("drop_moved"[, origin])``
    Garbage-collect every fenced-out key from the old shard (issued after
    the new ring is published; the fence stays, so late stale writes keep
    being rejected).

Unknown commands and malformed arities leave the state unchanged (but
still occupy a position in the order) -- the forward-compatibility rule a
production store follows rather than diverging on unknown-but-committed
entries.

State shape: a flat ``dict`` of user keys, plus one reserved entry
(:data:`META_KEY`) holding the fence once installed.  Single-shard stores
never issue fences, so their state stays a plain user-key dict --
byte-identical digests with the pre-KV ``ReplicatedStore``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.apps.kv.ring import HashRing

#: Reserved state key holding the installed fence (absent until fenced).
META_KEY = "__kv_fence__"

#: Ops that mutate one user key and are subject to the fence.
MUTATING_OPS = frozenset({"set", "delete", "increment"})


def value_digest(value: Any) -> str:
    """Cheap deterministic digest of a stored value (replica comparison
    and oracle checks; equal digests => equal values for JSON-able data)."""
    return repr(value)


#: Base tuple length of each op *without* the optional trailing origin.
_BASE_ARITY = {
    "set": 3,
    "delete": 2,
    "increment": 3,
    "noop": 1,
    "fence": 2,
    "migrate_in": 4,
    "drop_moved": 1,
}


def command_info(command: Any) -> Tuple[Optional[str], Optional[str], Optional[Dict]]:
    """``(op, key, origin)`` of a command tuple (``None``s when absent).

    The origin is recognized by *arity*: exactly one element beyond the
    op's base tuple length, and a dict carrying ``"client"`` -- so a user
    value that merely looks like provenance is never misparsed.
    Malformed commands yield ``(None, None, None)`` and apply as no-ops.
    """
    if not isinstance(command, tuple) or not command:
        return None, None, None
    op = command[0]
    base = _BASE_ARITY.get(op)
    if base is None or len(command) not in (base, base + 1):
        return None, None, None
    origin: Optional[Dict] = None
    if len(command) == base + 1:
        tail = command[-1]
        if not (isinstance(tail, dict) and "client" in tail):
            return None, None, None
        origin = tail
    key: Optional[str] = None
    if op in MUTATING_OPS or op == "migrate_in":
        if not isinstance(command[1], str):
            return None, None, None
        key = command[1]
    return op, key, origin


def fence_of(state: Dict[str, Any]) -> Optional[Dict]:
    """The installed fence, or ``None``."""
    fence = state.get(META_KEY)
    return fence if isinstance(fence, dict) else None


def fence_rejects(state: Dict[str, Any], key: Optional[str]) -> bool:
    """Whether the installed fence rejects a mutation of ``key``."""
    fence = fence_of(state)
    if fence is None or key is None:
        return False
    if fence.get("freeze_all"):
        return True
    ring = HashRing.from_description(fence["ring"])
    return ring.lookup(key) == fence["to_shard"]


def moved_keys(state: Dict[str, Any]) -> List[str]:
    """User keys of ``state`` the installed fence has moved away, sorted
    (the deterministic migration snapshot at the fence position)."""
    return sorted(
        key for key in state if key != META_KEY and fence_rejects(state, key)
    )


def apply_kv_command(state: Dict[str, Any], command: Any) -> Dict[str, Any]:
    """Pure transition function: ``(state, command) -> new state``.

    Deterministic, side-effect free, and total: anything unrecognized
    returns an unchanged copy.
    """
    new_state = dict(state)
    op, key, _origin = command_info(command)
    if op is None:
        return new_state
    if op in MUTATING_OPS:
        if key is None or fence_rejects(state, key):
            return new_state
        if op == "set":
            new_state[key] = command[2]
        elif op == "delete":
            new_state.pop(key, None)
        elif op == "increment":
            new_state[key] = new_state.get(key, 0) + command[2]
        return new_state
    if op == "fence":
        fence = command[1] if len(command) > 1 and isinstance(command[1], dict) else None
        if fence is not None and ("freeze_all" in fence or ("ring" in fence and "to_shard" in fence)):
            new_state[META_KEY] = fence
        return new_state
    if op == "migrate_in":
        if key is not None and len(command) >= 4 and key not in new_state:
            new_state[key] = command[2]
        return new_state
    if op == "drop_moved":
        for moved in moved_keys(state):
            new_state.pop(moved, None)
        return new_state
    return new_state  # "noop" and anything future
