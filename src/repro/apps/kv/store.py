"""The sharded replicated KV store: one Newtop group per shard.

This is the production-shaped application the paper's §2 motivates total
order for: a key-space-sharded store in which **every shard is a group**
running the replicated-state-machine pattern, so

* writes to one shard are totally ordered by the protocol (no external
  consensus, no primary election -- the order *is* the delivery order),
* replica failure is the protocol's own membership problem (the suspector
  excludes the dead replica, asymmetric shards migrate their sequencer),
* rebalancing is group formation: a shard split or replica move is an
  overlapping-group dance (:mod:`repro.apps.kv.rebalance`), not an
  external control plane.

Layering::

    KVWorkload / clients        (repro.apps.kv.workload)
        |  route via HashRing   (repro.apps.kv.ring)
        v
    ShardedKV  -- shard table, submit/read, acknowledgements
        |  one group per shard generation
        v
    KVReplica  -- applies commands in delivery order  (this module)
        |
    Session / ProtocolStack / Newtop

Reads are served from *any* replica's locally applied prefix; clients get
read-your-writes and monotonic reads by passing ``min_position`` (their
session watermark for the shard's current generation).  A replica that has
not caught up answers ``"behind"`` and the client retries, possibly at a
different replica.  Each shard also carries a ``read_floor`` -- the apply
position its state transfer finished at -- so immediately after a
rebalance no replica can serve a read from a prefix that misses migrated
keys.  Every apply and every served read is recorded as a
:data:`~repro.net.trace.KV_APPLY` / :data:`~repro.net.trace.KV_READ`
trace event, which is what lets the online consistency oracle
(:class:`repro.apps.kv.oracle.KVOracle`) verify per-key ordering,
read-your-writes and state-transfer integrity with zero stored events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.kv.commands import (
    META_KEY,
    MUTATING_OPS,
    apply_kv_command,
    command_info,
    fence_rejects,
    moved_keys,
    value_digest,
)
from repro.apps.kv.ring import HashRing
from repro.net.trace import KV_APPLY, KV_READ

#: ``origin["client"]`` used by the rebalancer's own fence/migrate traffic;
#: control commands never touch the client-facing counters.
REBALANCE_CLIENT = "__rebalance__"


def group_name(shard_id: str, generation: int) -> str:
    """The protocol group of one shard generation."""
    return f"{shard_id}@g{generation}"


class KVReplica:
    """One process's replica of one shard group.

    Registers a delivery callback on the hosting protocol process and
    applies every command of its group in delivery order.  Tracks the
    applied ``position`` (1-based index into the shard's total order) and
    each key's last writer, which is everything a local read needs.
    """

    def __init__(
        self,
        process,
        group_id: str,
        *,
        shard_id: Optional[str] = None,
        generation: int = 1,
        store: Optional["ShardedKV"] = None,
    ) -> None:
        self.process = process
        self.group_id = group_id
        self.shard_id = shard_id or group_id
        self.generation = generation
        self.store = store
        self.state: Dict[str, Any] = {}
        #: Commands applied so far (positions are 1-based).
        self.position = 0
        #: key -> (writer message id, position of that write).
        self.last_writer: Dict[str, Tuple[str, int]] = {}
        process.add_delivery_callback(self._on_delivery)

    # ------------------------------------------------------------------
    # The replicated state machine
    # ------------------------------------------------------------------
    def _on_delivery(self, group: str, sender: str, payload: object, msg_id: str) -> None:
        if group != self.group_id:
            return
        op, key, origin = command_info(payload)
        pre_state = self.state
        rejected = op in MUTATING_OPS and fence_rejects(pre_state, key)
        self.state = apply_kv_command(pre_state, payload)
        self.position += 1
        outcome = "rejected_moved" if rejected else "applied"
        if not rejected:
            if key is not None and op in MUTATING_OPS:
                self.last_writer[key] = (msg_id, self.position)
            elif op == "migrate_in" and key is not None and key not in pre_state:
                self.last_writer[key] = (msg_id, self.position)
            elif op == "drop_moved":
                for dropped in moved_keys(pre_state):
                    self.last_writer.pop(dropped, None)
        details: Dict[str, Any] = {
            "shard": self.shard_id,
            "generation": self.generation,
            "op": op or "unknown",
            "outcome": outcome,
            "position": self.position,
        }
        if key is not None:
            details["key"] = key
            details["digest"] = (
                value_digest(self.state[key]) if key in self.state else None
            )
        if origin is not None:
            details["client"] = origin.get("client")
            details["client_op"] = origin.get("op")
            details["via"] = origin.get("via")
        if op == "migrate_in":
            meta = payload[3]
            if isinstance(meta, dict):
                details["from_shard"] = meta.get("from_shard")
                details["from_digest"] = meta.get("digest")
        self.process.recorder.record(
            self.process.sim.now,
            KV_APPLY,
            self.process.process_id,
            group=self.group_id,
            message_id=msg_id,
            sender=sender,
            **details,
        )
        if self.store is not None:
            self.store._on_apply(self, payload, msg_id, outcome, origin)

    # ------------------------------------------------------------------
    # Local reads
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Raw local read of the applied prefix (no trace event)."""
        return self.state.get(key, default)

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the applied user-visible state (fence meta excluded)."""
        return {k: v for k, v in self.state.items() if k != META_KEY}

    def read(
        self,
        key: str,
        *,
        client: Optional[str] = None,
        required: int = 0,
        ring_version: Optional[int] = None,
    ) -> Tuple[Any, int, Optional[str]]:
        """Serve ``key`` from the local prefix and record the KV_READ event.

        Returns ``(value, position, writer_msg_id)``; the caller has
        already checked ``self.position >= required``.
        """
        value = self.state.get(key)
        writer = self.last_writer.get(key)
        self.process.recorder.record(
            self.process.sim.now,
            KV_READ,
            self.process.process_id,
            group=self.group_id,
            message_id=writer[0] if writer else None,
            shard=self.shard_id,
            generation=self.generation,
            key=key,
            position=self.position,
            required=required,
            client=client,
            digest=value_digest(value) if key in self.state else None,
            ring_version=ring_version,
        )
        return value, self.position, writer[0] if writer else None

    @property
    def alive(self) -> bool:
        """Whether this replica can still serve (not crashed, not departed)."""
        return not self.process.crashed and self.process.is_member(self.group_id)


@dataclass
class Shard:
    """One logical shard: a generation-versioned chain of groups."""

    shard_id: str
    generation: int
    group_id: str
    members: Tuple[str, ...]
    mode: Optional[object] = None
    replicas: Dict[str, KVReplica] = field(default_factory=dict)
    #: Minimum apply position a replica must reach before serving *any*
    #: read: set to the position state transfer finished at, so a freshly
    #: rebalanced shard cannot serve a prefix missing migrated keys.
    read_floor: int = 0
    #: Set when a replica move superseded this generation.
    retired: bool = False

    def alive_members(self) -> List[str]:
        return [pid for pid, replica in self.replicas.items() if replica.alive]

    def describe(self) -> Dict[str, object]:
        return {
            "shard": self.shard_id,
            "generation": self.generation,
            "group": self.group_id,
            "members": list(self.members),
            "read_floor": self.read_floor,
            "retired": self.retired,
        }


@dataclass
class PendingWrite:
    """One in-flight write awaiting its coordinator apply."""

    client: str
    client_op: Any
    key: Optional[str]
    shard_id: str
    via: str
    submitted_at: float
    callback: Optional[Callable[[Dict[str, object]], None]] = None


class ShardedKV:
    """The server side of the sharded store, bound to one Session.

    The store owns the *authoritative* ring (clients cache copies) and the
    shard table mapping shard ids to their current group generation.  All
    client traffic flows through :meth:`submit` (writes; acknowledged at
    the coordinator replica's apply) and :meth:`read` (any-replica reads
    with a session watermark).  Both validate the client's ring version
    and answer ``"stale_ring"`` with the current ring instead of silently
    serving a moved key -- the retry loop that makes rebalancing safe for
    stale clients.
    """

    def __init__(
        self,
        session,
        *,
        mode: Optional[object] = None,
        vnodes: int = 64,
    ) -> None:
        self.session = session
        self.mode = mode
        self.vnodes = vnodes
        self.shards: Dict[str, Shard] = {}
        self._ring: Optional[HashRing] = None
        #: (client, client_op) -> in-flight write.
        self._pending: Dict[Tuple[str, Any], PendingWrite] = {}
        self._control_seq = 0
        # Monotone server-side counters (benchmark reporting).
        self.counters: Dict[str, int] = {
            "writes_submitted": 0,
            "writes_acked": 0,
            "writes_rejected_moved": 0,
            "reads_served": 0,
            "stale_ring_rejections": 0,
            "unavailable_rejections": 0,
            "frozen_rejections": 0,
            "late_applies": 0,
        }

    # ------------------------------------------------------------------
    # Bootstrap and topology
    # ------------------------------------------------------------------
    def bootstrap(self, layout: Dict[str, Sequence[str]]) -> HashRing:
        """Create the initial shards as *static* groups (generation 1) and
        ring version 1.  ``layout`` maps shard id -> replica processes."""
        if self._ring is not None:
            raise RuntimeError("store is already bootstrapped")
        for shard_id, members in sorted(layout.items()):
            self.shards[shard_id] = self._build_shard(
                shard_id, 1, tuple(members), form=True
            )
        self._ring = HashRing(1, tuple(sorted(layout)), self.vnodes)
        return self._ring

    def _build_shard(
        self,
        shard_id: str,
        generation: int,
        members: Tuple[str, ...],
        *,
        form: bool,
    ) -> Shard:
        """Wire a shard generation: create its group statically when
        ``form`` is set (bootstrap), otherwise assume the group was just
        formed dynamically; either way register one replica per member.
        The caller decides when the shard enters :attr:`shards`."""
        gid = group_name(shard_id, generation)
        if form:
            self.session.group(gid, list(members), mode=self.mode)
        shard = Shard(shard_id, generation, gid, tuple(sorted(members)), self.mode)
        for member in shard.members:
            shard.replicas[member] = KVReplica(
                self.session[member],
                gid,
                shard_id=shard_id,
                generation=generation,
                store=self,
            )
        return shard

    @property
    def ring(self) -> HashRing:
        """The authoritative (current) ring."""
        if self._ring is None:
            raise RuntimeError("store is not bootstrapped")
        return self._ring

    def publish_ring(self, ring: HashRing) -> HashRing:
        """Install a new authoritative ring (the rebalancer's final step)."""
        if ring.version <= self.ring.version:
            raise ValueError(
                f"new ring version {ring.version} must exceed {self.ring.version}"
            )
        self._ring = ring
        return ring

    def shard_of(self, key: str, ring: Optional[HashRing] = None) -> Shard:
        """The shard serving ``key`` under ``ring`` (default: current)."""
        return self.shards[(ring or self.ring).lookup(key)]

    def shard_members(self, shard_id: str) -> List[str]:
        """Current replica processes of a shard (its latest generation)."""
        return list(self.shards[shard_id].members)

    def alive_members(self, shard_id: str) -> List[str]:
        return self.shards[shard_id].alive_members()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def submit(
        self,
        *,
        client: str,
        client_op: int,
        op: str,
        key: str,
        value: Any = None,
        via: str,
        ring: Optional[HashRing] = None,
        callback: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> Dict[str, object]:
        """Submit one client write through the ``via`` replica.

        Returns ``{"status": "submitted"}`` on success; the write is
        acknowledged later, when the coordinator replica applies it, by
        invoking ``callback`` with the outcome (``applied`` with the apply
        position, or ``rejected_moved`` with the current ring for the
        client to retry against).  Staleness and liveness failures reject
        synchronously (``stale_ring`` / ``unavailable``).
        """
        ring = ring or self.ring
        target = ring.lookup(key)
        if target != self.ring.lookup(key) or target not in self.shards:
            self.counters["stale_ring_rejections"] += 1
            return {"status": "stale_ring", "ring": self.ring}
        shard = self.shards[target]
        replica = shard.replicas.get(via)
        if replica is None or not replica.alive:
            self.counters["unavailable_rejections"] += 1
            return {"status": "unavailable", "members": shard.alive_members()}
        if fence_rejects(replica.state, key):
            # The replica already applied a fence dooming this key: refuse
            # at the front door instead of multicasting a write every
            # replica would reject -- doomed traffic through the protocol
            # would also stall the coordinator's state-transfer sends via
            # the mixed-mode blocking rule.
            self.counters["frozen_rejections"] += 1
            return {"status": "frozen", "ring": self.ring}
        origin = {"client": client, "op": client_op, "via": via}
        if op == "set":
            command: Tuple = ("set", key, value, origin)
        elif op == "delete":
            command = ("delete", key, origin)
        elif op == "increment":
            command = ("increment", key, value, origin)
        else:
            raise ValueError(f"unknown client write op {op!r}")
        self._pending[(client, client_op)] = PendingWrite(
            client, client_op, key, target, via, self.session.sim.now, callback
        )
        self.counters["writes_submitted"] += 1
        # May return None when the protocol defers the send (flow control,
        # blocking rules); the deferred send goes out automatically and the
        # acknowledgement still arrives through the origin token.
        self.session.multicast(via, shard.group_id, command)
        return {"status": "submitted", "shard": target, "group": shard.group_id}

    def _submit_control(
        self,
        via: str,
        group_id: str,
        command: Tuple,
        callback: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> str:
        """Multicast a rebalance control command (fence / migrate_in /
        drop_moved) with provenance, acknowledged like a client write but
        outside the client counters.  Returns the control token."""
        self._control_seq += 1
        token = f"ctl{self._control_seq}"
        origin = {"client": REBALANCE_CLIENT, "op": token, "via": via}
        _op, key, _ = command_info(command + (origin,))
        self._pending[(REBALANCE_CLIENT, token)] = PendingWrite(
            REBALANCE_CLIENT, token, key, group_id, via, self.session.sim.now, callback
        )
        self.session.multicast(via, group_id, command + (origin,))
        return token

    def _on_apply(
        self,
        replica: KVReplica,
        command: Any,
        msg_id: str,
        outcome: str,
        origin: Optional[Dict],
    ) -> None:
        """Replica apply hook: acknowledge the pending write when the
        coordinator (the ``via`` replica the submitter multicast through)
        applies it -- the earliest moment the client may learn its write's
        position in the shard order."""
        if origin is None or origin.get("via") != replica.process.process_id:
            return
        token = (origin.get("client"), origin.get("op"))
        pending = self._pending.pop(token, None)
        if pending is None:
            self.counters["late_applies"] += 1
            return
        if pending.client != REBALANCE_CLIENT:
            if outcome == "applied":
                self.counters["writes_acked"] += 1
            else:
                self.counters["writes_rejected_moved"] += 1
        if pending.callback is not None:
            ack = {
                "status": outcome,
                "key": pending.key,
                "shard": replica.shard_id,
                "generation": replica.generation,
                "position": replica.position,
                "message_id": msg_id,
                "submitted_at": pending.submitted_at,
                "ring": self.ring,
            }
            # Fire the acknowledgement in a fresh simulator event (same
            # instant), never inside the delivery call stack: a callback
            # that multicasts (the rebalancer's fence -> migrate -> drop
            # chain) would otherwise nest its send inside another
            # message's in-flight transmit and invert the recorded send
            # order that the causal checker audits.
            self.session.sim.schedule(0.0, pending.callback, ack, label="kv_ack")

    def pending_writes(self) -> int:
        """Writes submitted but not yet acknowledged (in flight, or lost
        to a crashed coordinator -- the benchmark reports the residue)."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(
        self,
        *,
        client: str,
        key: str,
        via: str,
        ring: Optional[HashRing] = None,
        min_position: int = 0,
    ) -> Dict[str, object]:
        """Serve ``key`` from the ``via`` replica's applied prefix.

        ``min_position`` is the client's session watermark for the shard's
        current generation (read-your-writes + monotonic reads); together
        with the shard's ``read_floor`` it sets the position the replica
        must have applied, else the answer is ``"behind"`` and the client
        retries -- possibly at a different replica.
        """
        ring = ring or self.ring
        target = ring.lookup(key)
        if target != self.ring.lookup(key) or target not in self.shards:
            self.counters["stale_ring_rejections"] += 1
            return {"status": "stale_ring", "ring": self.ring}
        shard = self.shards[target]
        replica = shard.replicas.get(via)
        if replica is None or not replica.alive:
            self.counters["unavailable_rejections"] += 1
            return {"status": "unavailable", "members": shard.alive_members()}
        required = max(min_position, shard.read_floor)
        if replica.position < required:
            return {
                "status": "behind",
                "position": replica.position,
                "required": required,
                "generation": shard.generation,
            }
        value, position, writer = replica.read(
            key, client=client, required=required, ring_version=ring.version
        )
        self.counters["reads_served"] += 1
        return {
            "status": "ok",
            "value": value,
            "shard": target,
            "generation": shard.generation,
            "position": position,
            "writer": writer,
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "ring": self.ring.describe(),
            "shards": {sid: shard.describe() for sid, shard in self.shards.items()},
            "counters": dict(self.counters),
            "pending_writes": self.pending_writes(),
        }

    def converged(self, shard_id: str) -> bool:
        """Whether the alive replicas of a shard agree: any two at the
        same apply position hold identical state."""
        shard = self.shards[shard_id]
        by_position: Dict[int, str] = {}
        for replica in shard.replicas.values():
            if not replica.alive:
                continue
            digest = value_digest(tuple(sorted(replica.snapshot().items())))
            seen = by_position.get(replica.position)
            if seen is not None and seen != digest:
                return False
            by_position[replica.position] = digest
        return True
