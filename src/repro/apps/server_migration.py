"""Online server migration via overlapping groups (the paper's Fig. 1).

The scenario from §2: a replicated server group ``g1`` serves client
requests; one replica (``P2``) must be migrated to a new machine without
any noticeable disruption of service.  The Newtop solution exploits
overlapping groups:

1. a new server process ``P3`` is created at the target machine;
2. ``P3`` initiates the formation of a new group ``g2`` containing
   ``P1``, ``P2`` and itself, while ``P1`` and ``P2`` keep serving client
   requests in ``g1``;
3. within ``g2`` the current replicas transfer their state to ``P3``
   (``P1`` drives the transfer; if it failed, ``P2`` would take over);
4. once ``P3`` is up to date, new requests are directed to ``g2``;
5. ``P1`` departs ``g1`` and ``P2`` departs both groups, leaving ``g2`` =
   ``{P1, P3}`` as the surviving server group -- the replica has moved from
   ``P2``'s machine to ``P3``'s with the service available throughout.

:class:`ServerMigrationScenario` scripts exactly this against the public
API, applying a steady stream of client requests before, during and after
the migration, and reports whether service and state survived intact.  The
same scenario doubles as the paper's suggested recipe for online software
upgrades (replace component ``P2`` by ``P3``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.session import Session
from repro.apps.replicated_store import ReplicatedStore
from repro.core.config import NewtopConfig, OrderingMode


@dataclass
class MigrationReport:
    """Outcome of one server-migration run."""

    #: Requests issued in each phase (before / during / after migration).
    requests_before: int
    requests_during: int
    requests_after: int
    #: Whether every issued request was applied by the replicas serving it.
    all_requests_applied: bool
    #: Whether the migrated-to replica (P3) ended with the same state as
    #: the surviving original replica (P1).
    state_transferred_intact: bool
    #: Whether the old group's departed members were eventually excluded
    #: from the survivors' views.
    old_group_cleaned_up: bool
    #: Final membership of the surviving group g2.
    final_group_members: Tuple[str, ...]
    #: Simulated time the migration phase took (g2 formation to cut-over).
    migration_duration: float
    #: Final replicated state at the surviving replicas.
    final_state: Dict[str, object] = field(default_factory=dict)

    @property
    def service_uninterrupted(self) -> bool:
        """The headline claim: requests were served in every phase and none
        were lost."""
        return (
            self.all_requests_applied
            and self.requests_during > 0
            and self.state_transferred_intact
        )


class ServerMigrationScenario:
    """Scripted Fig.-1 migration on a :class:`repro.api.Session`."""

    def __init__(
        self,
        config: Optional[NewtopConfig] = None,
        seed: int = 11,
        requests_per_phase: int = 10,
        mode: OrderingMode = OrderingMode.SYMMETRIC,
    ) -> None:
        self.config = config or NewtopConfig(omega=2.0, suspicion_timeout=8.0)
        self.seed = seed
        self.requests_per_phase = requests_per_phase
        self.mode = mode
        self.cluster = Session(stack="newtop", config=self.config, seed=seed)
        self.cluster.spawn(["P1", "P2", "P3"])
        self.stores: Dict[Tuple[str, str], ReplicatedStore] = {}
        self._request_counter = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _store(self, process_id: str, group_id: str) -> ReplicatedStore:
        key = (process_id, group_id)
        if key not in self.stores:
            self.stores[key] = ReplicatedStore(self.cluster[process_id], group_id)
        return self.stores[key]

    def _issue_requests(self, group_id: str, server: str, count: int) -> int:
        """Issue ``count`` client requests to ``server`` in ``group_id``."""
        issued = 0
        for _ in range(count):
            self._request_counter += 1
            store = self._store(server, group_id)
            store.set(f"key{self._request_counter % 7}", self._request_counter)
            issued += 1
            self.cluster.run(1.0)
        return issued

    # ------------------------------------------------------------------
    # The scenario
    # ------------------------------------------------------------------
    def run(self) -> MigrationReport:
        """Execute the migration and return the report."""
        cluster = self.cluster
        # Phase 0: the original server group g1 = {P1, P2} serves requests.
        cluster.group("g1", ["P1", "P2"], mode=self.mode)
        store_p1_g1 = self._store("P1", "g1")
        store_p2_g1 = self._store("P2", "g1")
        requests_before = self._issue_requests("g1", "P1", self.requests_per_phase)
        cluster.run(10)

        # Phase 1: P3 initiates formation of the overlapping group g2.
        migration_start = cluster.sim.now
        handle_p3 = cluster["P3"].form_group("g2", ["P1", "P2", "P3"], mode=self.mode)
        cluster.run_until(lambda: handle_p3.formed, timeout=60)
        cluster.run_until(
            lambda: all(
                cluster[p].is_member("g2") and not cluster[p].endpoint("g2").in_formation_wait
                for p in ("P1", "P2", "P3")
            ),
            timeout=60,
        )
        store_p1_g2 = self._store("P1", "g2")
        store_p2_g2 = self._store("P2", "g2")
        store_p3_g2 = self._store("P3", "g2")

        # Phase 2: P1 transfers g1's state to P3 inside g2 while g1 keeps
        # serving client requests (this is the "during migration" traffic).
        requests_during = self._issue_requests("g1", "P2", self.requests_per_phase)
        snapshot = store_p1_g1.snapshot()
        for key, value in sorted(snapshot.items()):
            store_p1_g2.set(key, value)
        requests_during += self._issue_requests("g1", "P1", self.requests_per_phase)
        cluster.run(20)

        # Re-transfer anything g1 applied after the snapshot was taken (the
        # simple catch-up loop a real migration would run until quiescence).
        for key, value in sorted(store_p1_g1.snapshot().items()):
            if store_p1_g2.get(key) != value:
                store_p1_g2.set(key, value)
        cluster.run(20)
        migration_end = cluster.sim.now
        # The moment of truth for the transfer: before any post-cut-over
        # traffic mutates g2, P3 must hold exactly the state g1 built up.
        state_transferred_intact = all(
            store_p3_g2.get(key) == value for key, value in store_p1_g1.snapshot().items()
        )

        # Phase 3: cut over -- new requests go to g2; the old memberships
        # are wound down (P1 leaves g1, P2 leaves both groups).
        requests_after = self._issue_requests("g2", "P1", self.requests_per_phase)
        cluster["P1"].leave_group("g1")
        cluster["P2"].leave_group("g1")
        cluster["P2"].leave_group("g2")
        cluster.run(self.config.suspicion_timeout * 4)
        requests_after += self._issue_requests("g2", "P3", self.requests_per_phase)
        cluster.run(30)

        # ------------------------------------------------------------------
        # Evaluate the outcome.
        # ------------------------------------------------------------------
        surviving_view = cluster["P1"].view("g2").sorted_members()
        old_group_cleaned_up = (
            "P2" not in surviving_view
            and cluster["P3"].view("g2").sorted_members() == surviving_view
        )
        g1_converged = ReplicatedStore.converged([store_p1_g1, store_p2_g1])
        g2_converged = ReplicatedStore.converged([store_p1_g2, store_p3_g2])
        expected_total = requests_before + requests_during
        all_requests_applied = (
            g1_converged
            and g2_converged
            and store_p1_g1.applied_operations() >= expected_total
        )
        return MigrationReport(
            requests_before=requests_before,
            requests_during=requests_during,
            requests_after=requests_after,
            all_requests_applied=all_requests_applied,
            state_transferred_intact=state_transferred_intact,
            old_group_cleaned_up=old_group_cleaned_up,
            final_group_members=surviving_view,
            migration_duration=migration_end - migration_start,
            final_state=store_p3_g2.snapshot(),
        )
