"""Example applications built on the Newtop public API.

These are the applications the paper's motivation section appeals to:

* :mod:`repro.apps.replicated_state_machine` -- a generic replicated state
  machine: commands multicast in a group are applied in delivery order, so
  total order keeps replicas identical ("Replica management is a well known
  application of total order protocols", §2).
* :mod:`repro.apps.replicated_store` -- a replicated key-value store built
  on the state machine, used by the quickstart and several benchmarks
  (the single-shard special case of :mod:`repro.apps.kv`).
* :mod:`repro.apps.server_migration` -- the paper's Fig. 1 scenario: moving
  a replica of a live server group to a new machine by forming an
  overlapping group, transferring state, and departing the old group
  without interrupting service.
* :mod:`repro.apps.kv` -- the sharded replicated KV store: a consistent-
  hash ring over shards, one Newtop group per shard, rebalancing and
  failover as protocol events, an online consistency oracle, and a
  ring-routed workload (experiment E26).
"""

from repro.apps.kv import (
    HashRing,
    KVOracle,
    KVWorkload,
    Rebalancer,
    RebalanceReport,
    ShardedKV,
)
from repro.apps.replicated_state_machine import ReplicatedStateMachine, StateMachineReplica
from repro.apps.replicated_store import ReplicatedStore
from repro.apps.server_migration import MigrationReport, ServerMigrationScenario

__all__ = [
    "HashRing",
    "KVOracle",
    "KVWorkload",
    "MigrationReport",
    "RebalanceReport",
    "Rebalancer",
    "ReplicatedStateMachine",
    "ReplicatedStore",
    "ServerMigrationScenario",
    "ShardedKV",
    "StateMachineReplica",
]
