"""The group-view process ``GV_x,i`` -- membership agreement (§5.2).

Each process runs one group-view process per group it belongs to.  The GV
process receives suspicion notifications ``{Pk, ln}`` from its failure
suspector and runs the event-driven agreement of §5.2 with the GV processes
of the other members, whose rules (i)-(viii) are implemented here verbatim:

(i)    a local suspicion is recorded and multicast as a *suspect* message;
(ii)   a remote suspicion about somebody else is recorded as *gossip*
       (suspicions about ourselves are discarded -- we wait to be refuted);
(iii)  a gossip suspicion ``{Pk, ln}`` is *refuted* the moment we hold a
       message from ``Pk`` numbered above ``ln``; the refute piggybacks the
       retained messages of ``Pk`` above ``ln`` so the suspecting process
       can recover what it missed;
(iv)   receiving a refute for one of our own suspicions cancels it, feeds
       the recovered messages back into the normal receive path, and
       forwards the refute;
(v)    when *every* current suspicion is supported by a suspect message
       from *every* unsuspected, unfailed view member, the whole suspicion
       set is confirmed as the detection set;
(vi)   a confirmed detection received from a peer is adopted when it is a
       subset of our own suspicions;
(vii)  a confirmed detection that includes *us* makes us reciprocate by
       suspecting its sender (this is what drives concurrent subgroup views
       to stabilise into non-intersecting ones -- Example 3);
(viii) a confirmed detection is executed: messages of the failed processes
       numbered above ``lnmn`` (the minimum ``ln`` in the detection) are
       discarded, the receive/stability vectors stop being constrained by
       the failed processes, and a view excluding them is installed once
       every message numbered ``<= lnmn`` has been delivered.

The refutation-with-recovery rule is what makes concurrently held,
different ``ln`` values converge: whoever holds more messages from ``Pk``
refutes the lower suspicion and supplies the missing messages, so all
connected correct processes end up suspecting ``Pk`` at the same ``ln``,
confirm identical detection sets in the same order (VC1), and discard the
same set of messages (MD3).

Messages from a process we currently suspect (data or membership) are held
*pending*: replayed if the suspicion is refuted, discarded if it is
confirmed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.messages import (
    ConfirmMessage,
    DataMessage,
    RefuteMessage,
    SequencerRequest,
    SuspectMessage,
    Suspicion,
)
from repro.net import trace as trace_events


@dataclass
class MembershipStats:
    """Counters kept by one GV process (used by benchmarks and tests)."""

    suspicions_raised: int = 0
    suspicions_refuted: int = 0
    detections_confirmed: int = 0
    suspect_messages_sent: int = 0
    refute_messages_sent: int = 0
    confirm_messages_sent: int = 0
    messages_recovered: int = 0
    pending_held: int = 0
    pending_discarded: int = 0


class GroupViewProcess:
    """Membership agreement and view-update coordination for one group.

    The GV process does not talk to the network directly; it calls back
    into its :class:`~repro.core.endpoint.GroupEndpoint`, which provides:

    * ``mcast_membership(message)`` -- transmit to every view member's GV,
    * ``retained_messages_from(member, above)`` -- unstable messages held
      for ``member`` (refutation piggyback),
    * ``membership_clock_of(member)`` -- number of the latest message held
      from ``member``,
    * ``recover_messages(messages)`` -- feed recovered messages into the
      normal receive path,
    * ``replay_pending(items)`` -- re-inject held messages after a refute,
    * ``execute_failure_detection(detection)`` -- step (viii),
    * ``record_membership_event(kind, **details)`` -- tracing.
    """

    def __init__(self, endpoint, own_id: str, group_id: str) -> None:
        self.endpoint = endpoint
        self.own_id = own_id
        self.group_id = group_id
        self.stats = MembershipStats()
        #: Rule (i): our own active suspicions.
        self._suspicions: Set[Suspicion] = set()
        #: Rule (ii): supporters per suspicion -- which remote GVs have sent
        #: us a suspect message for exactly this {Pk, ln}.
        self._gossip: Dict[Suspicion, Set[str]] = {}
        #: Processes confirmed failed/disconnected (cumulative); their
        #: messages are discarded from the moment of confirmation even if
        #: the corresponding view has not been installed yet.
        self._excluded: Set[str] = set()
        #: Messages held while their sender is under suspicion:
        #: sender -> list of raw payloads to replay or discard.
        self._pending: Dict[str, List[object]] = {}
        #: Detection sets confirmed so far, in confirmation order.
        self.detection_history: List[frozenset] = []
        #: When each active suspicion was last announced to the group
        #: (simulated time), for the re-gossip keep-alive.
        self._announced: Dict[Suspicion, float] = {}

    # ------------------------------------------------------------------
    # Queries used by the endpoint's receive path
    # ------------------------------------------------------------------
    def is_suspected(self, process: str) -> bool:
        """Whether we currently hold an (unconfirmed) suspicion on ``process``."""
        return any(suspicion.target == process for suspicion in self._suspicions)

    def is_excluded(self, process: str) -> bool:
        """Whether ``process`` has been confirmed failed/disconnected."""
        return process in self._excluded

    def suspected_processes(self) -> Set[str]:
        """Targets of all current suspicions."""
        return {suspicion.target for suspicion in self._suspicions}

    def hold_pending(self, sender: str, payload: object) -> None:
        """Park a message from a suspected sender until the suspicion is
        resolved one way or the other."""
        self._pending.setdefault(sender, []).append(payload)
        self.stats.pending_held += 1

    # ------------------------------------------------------------------
    # Rule (i): local suspicion from the failure suspector
    # ------------------------------------------------------------------
    def on_suspector_notification(self, suspicion: Suspicion) -> None:
        """Record a local suspicion and announce it to the group."""
        target = suspicion.target
        if target == self.own_id:
            return
        if target in self._excluded or target not in self.endpoint.view.members:
            return
        if self.is_suspected(target):
            return
        self._suspicions.add(suspicion)
        self.stats.suspicions_raised += 1
        self.endpoint.record_membership_event(
            trace_events.SUSPECT, target=target, last_number=suspicion.last_number
        )
        self.stats.suspect_messages_sent += 1
        self._announced[suspicion] = self.endpoint.process.sim.now
        self.endpoint.mcast_membership(
            SuspectMessage(origin=self.own_id, group=self.group_id, suspicion=suspicion),
            cause="suspicion_gossip",
        )
        self._try_confirm()

    def regossip_unresolved(self, interval: float) -> None:
        """Re-announce suspicions that have sat unresolved for ``interval``.

        The paper multicasts each suspicion exactly once, which suffices in
        its crash-stop model where membership traffic is never lost.  Under
        transient partitions (a scenario-engine extension) a suspect
        message can vanish with the partition, leaving the group's gossip
        permanently split: each side waits forever for supporters that
        never heard the record, and the agreement -- and with it the
        delivery bound of every overlapping group -- wedges.  Periodic
        re-announcement makes the gossip converge once links heal; it is
        idempotent at receivers that already support the record.
        """
        now = self.endpoint.process.sim.now
        stale = [
            suspicion
            for suspicion in self._suspicions
            if now - self._announced.get(suspicion, now) >= interval
        ]
        # Drop bookkeeping for suspicions resolved in the meantime.
        self._announced = {
            suspicion: when
            for suspicion, when in self._announced.items()
            if suspicion in self._suspicions
        }
        for suspicion in stale:
            self.stats.suspect_messages_sent += 1
            self._announced[suspicion] = now
            self.endpoint.mcast_membership(
                SuspectMessage(
                    origin=self.own_id, group=self.group_id, suspicion=suspicion
                ),
                cause="suspicion_gossip",
            )

    # ------------------------------------------------------------------
    # Incoming membership traffic
    # ------------------------------------------------------------------
    def on_membership_message(self, sender: str, message: object) -> None:
        """Dispatch a membership message from ``sender``'s GV process."""
        if sender in self._excluded or sender not in self.endpoint.view.members:
            return
        if self.is_suspected(sender):
            if (
                isinstance(message, RefuteMessage)
                and message.suspicion.target == sender
            ):
                # A self-refutation from the suspected process is the very
                # evidence the suspicion is wrong; parking it as pending
                # would deadlock (nothing else could refute a member whose
                # messages nobody holds, e.g. one heard only through a
                # failed asymmetric sequencer relay).
                self._on_refute(sender, message)
                return
            if (
                isinstance(message, SuspectMessage)
                and message.suspicion.target == self.own_id
            ):
                # A suspicion naming *us* must reach us even from a sender
                # we suspect, or two live processes that suspect each other
                # simultaneously (mutual relay silence) would each park the
                # other's suspect message and neither would ever learn it
                # needs to refute -- both sides would vacuously confirm and
                # the group would split.
                self._on_suspect(sender, message)
                return
            # "once suspicion {Pk, ln} has been added to suspicions, GVi
            # will keep the messages received from Pk and GVk as pending"
            self.hold_pending(sender, message)
            return
        if isinstance(message, SuspectMessage):
            self._on_suspect(sender, message)
        elif isinstance(message, RefuteMessage):
            self._on_refute(sender, message)
        elif isinstance(message, ConfirmMessage):
            self._on_confirm(sender, message)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected membership message {message!r}")

    def on_data_from(self, sender: str, clock: int) -> None:
        """Hook from the endpoint's data path: a message numbered ``clock``
        from ``sender`` just arrived.  Used for rule (iii): it may refute
        gossip suspicions about ``sender`` with a smaller ``ln``."""
        if self.is_suspected(sender):
            return
        refutable = [
            suspicion
            for suspicion in self._gossip
            if suspicion.target == sender and suspicion.last_number < clock
        ]
        for suspicion in refutable:
            self._send_refute(suspicion)

    # ------------------------------------------------------------------
    # Rule (ii) + (iii): suspect messages from peers
    # ------------------------------------------------------------------
    def _on_suspect(self, sender: str, message: SuspectMessage) -> None:
        suspicion = message.suspicion
        if suspicion.target == self.own_id:
            # The paper lets the target wait "in the hope that some GVj
            # will refute it" -- which presumes somebody holds a message of
            # ours above ln.  When nobody does (an asymmetric member whose
            # every message died with the sequencer relay has ln = 0
            # everywhere), that hope is vain and the suspicion would
            # confirm against a live, connected process.  Refute it
            # ourselves: we are definitionally alive, and the refutation
            # ships our retained messages above ln so the suspecting side
            # also recovers anything it missed.
            self._send_refute(suspicion)
            return
        if suspicion.target in self._excluded:
            return
        supporters = self._gossip.setdefault(suspicion, set())
        supporters.add(message.origin)
        # Rule (iii): refute immediately if we already hold something newer
        # from the target.  This applies even when we suspect the target
        # ourselves (at a higher ln): the refutation does not assert the
        # target is alive, it ships the messages the suspecting process is
        # missing so both sides converge on the same {Pk, ln} record --
        # without it, two processes suspecting the same dead member at
        # different ln values would each wait forever for the other to
        # support its own record, and the detection would never confirm.
        held_clock = self.endpoint.membership_clock_of(suspicion.target)
        if held_clock > suspicion.last_number:
            self._send_refute(suspicion)
        self._try_confirm()

    def _send_refute(self, suspicion: Suspicion) -> None:
        recovered = tuple(
            self.endpoint.retained_messages_from(
                suspicion.target, above=suspicion.last_number
            )
        )
        self.stats.refute_messages_sent += 1
        self.endpoint.record_membership_event(
            trace_events.REFUTE,
            target=suspicion.target,
            last_number=suspicion.last_number,
            recovered=len(recovered),
        )
        self._gossip.pop(suspicion, None)
        self.endpoint.mcast_membership(
            RefuteMessage(
                origin=self.own_id,
                group=self.group_id,
                suspicion=suspicion,
                recovered=recovered,
            ),
            cause="confirm_refute",
        )

    # ------------------------------------------------------------------
    # Rule (iv): refutations of our own suspicions
    # ------------------------------------------------------------------
    def _on_refute(self, sender: str, message: RefuteMessage) -> None:
        suspicion = message.suspicion
        # Stale gossip about the same {Pk, ln} is dropped in every case.
        self._gossip.pop(suspicion, None)
        if suspicion not in self._suspicions:
            return
        self._suspicions.discard(suspicion)
        self.stats.suspicions_refuted += 1
        self.endpoint.record_membership_event(
            trace_events.REFUTE,
            target=suspicion.target,
            last_number=suspicion.last_number,
            accepted=True,
        )
        # Recover the messages we were missing, then let the suspector try
        # again from a clean slate (it will re-suspect at the higher ln if
        # the target really is gone).
        if message.recovered:
            self.stats.messages_recovered += len(message.recovered)
            self.endpoint.recover_messages(list(message.recovered))
        self.endpoint.suspector.clear_suspicion(suspicion.target)
        # Forward the refutation so other suspecting processes learn of it.
        self.stats.refute_messages_sent += 1
        self.endpoint.mcast_membership(
            RefuteMessage(
                origin=self.own_id,
                group=self.group_id,
                suspicion=suspicion,
                recovered=(),
            ),
            cause="confirm_refute",
        )
        # Replay messages held while the target was under suspicion.
        held = self._pending.pop(suspicion.target, [])
        if held:
            self.endpoint.replay_pending(suspicion.target, held)
        self._try_confirm()

    # ------------------------------------------------------------------
    # Rules (vi) + (vii): confirmed detections from peers
    # ------------------------------------------------------------------
    def _on_confirm(self, sender: str, message: ConfirmMessage) -> None:
        detection = frozenset(message.detection)
        if any(suspicion.target == self.own_id for suspicion in detection):
            # Rule (vii): the sender has agreed that *we* failed;
            # reciprocate so the two sides' views stabilise into
            # non-intersecting ones (Example 3).
            self.endpoint.suspector.force_suspect(sender)
            return
        # Rule (vi): a peer's confirmed detection is final.  Adopt it even
        # when our matching suspicions were refuted in the meantime -- a
        # refutation that races a confirmation loses, because the
        # confirming side has already cut its delivery stream and
        # declining to follow would leave the group's views split forever.
        remaining = frozenset(
            suspicion
            for suspicion in detection
            if suspicion.target not in self._excluded
        )
        if remaining:
            self._confirm(remaining)

    # ------------------------------------------------------------------
    # Rule (v): local confirmation
    # ------------------------------------------------------------------
    def _required_supporters(self) -> Set[str]:
        """The members whose agreement is needed: everyone in the current
        view except ourselves, the currently suspected and the already
        excluded."""
        suspected = self.suspected_processes()
        return {
            member
            for member in self.endpoint.view.members
            if member != self.own_id
            and member not in suspected
            and member not in self._excluded
        }

    def _try_confirm(self) -> None:
        if not self._suspicions:
            return
        required = self._required_supporters()
        for suspicion in self._suspicions:
            supporters = self._gossip.get(suspicion, set())
            if not required <= supporters:
                return
        self._confirm(frozenset(self._suspicions))

    def _confirm(self, detection: frozenset) -> None:
        """Steps (v)/(vi) tail + step (viii) hand-off."""
        self._suspicions -= set(detection)
        self.detection_history.append(detection)
        self.stats.detections_confirmed += 1
        self.stats.confirm_messages_sent += 1
        targets = sorted(suspicion.target for suspicion in detection)
        self.endpoint.record_membership_event(
            trace_events.CONFIRM,
            targets=tuple(targets),
            lnmn=min(suspicion.last_number for suspicion in detection),
        )
        self.endpoint.mcast_membership(
            ConfirmMessage(origin=self.own_id, group=self.group_id, detection=detection),
            cause="confirm_refute",
        )
        journeys = self.endpoint.journeys
        for suspicion in detection:
            target = suspicion.target
            self._excluded.add(target)
            self.endpoint.suspector.remove_member(target)
            discarded = self._pending.pop(target, [])
            self.stats.pending_discarded += len(discarded)
            if journeys is not None:
                now = self.endpoint.process.sim.now
                for payload in discarded:
                    journeys.discarded_payload(
                        payload, now, self.own_id, "confirmed_suspect"
                    )
        # Drop gossip that refers to now-excluded processes.
        self._gossip = {
            suspicion: supporters
            for suspicion, supporters in self._gossip.items()
            if suspicion.target not in self._excluded
        }
        self.endpoint.execute_failure_detection(detection)
        # Confirming one detection may have shrunk the required-supporter
        # set enough to unlock the remaining suspicions.
        self._try_confirm()

    # ------------------------------------------------------------------
    # View bookkeeping
    # ------------------------------------------------------------------
    def on_view_installed(self) -> None:
        """Re-evaluate outstanding suspicions against the new view."""
        members = self.endpoint.view.members
        self._suspicions = {
            suspicion for suspicion in self._suspicions if suspicion.target in members
        }
        self._gossip = {
            suspicion: {origin for origin in supporters if origin in members}
            for suspicion, supporters in self._gossip.items()
            if suspicion.target in members
        }
        self._try_confirm()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroupViewProcess(own={self.own_id!r}, group={self.group_id!r}, "
            f"suspicions={sorted(s.target for s in self._suspicions)}, "
            f"excluded={sorted(self._excluded)})"
        )
