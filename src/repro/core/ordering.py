"""Common interface of the per-group ordering engines.

Newtop runs one ordering engine per (process, group) pair.  Both engines --
:class:`~repro.core.symmetric.SymmetricOrdering` (§4.1) and
:class:`~repro.core.asymmetric.AsymmetricOrdering` (§4.2) -- share the same
message-numbering scheme (the process-wide Lamport clock), which is exactly
what lets a process mix modes across its groups (§4.3).  The engine's job
is narrow:

* turn an application payload (or a null / start-group message) into the
  protocol messages that must be transmitted, and
* maintain the per-group deliverable bound ``D_x,i`` that the process-level
  delivery queue combines across groups (safe1').

Everything else -- delivery ordering, stability, membership, blocking rules
-- lives outside the engines, so the two engines stay small and the
mixed-mode guarantees follow from construction rather than case analysis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from repro.core.messages import DataMessage, SequencerRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.endpoint import GroupEndpoint


class OrderingEngine(ABC):
    """Mode-specific send/receive handling for one group."""

    def __init__(self, endpoint: "GroupEndpoint") -> None:
        self.endpoint = endpoint
        #: Floor applied to the deliverable bound; raised by group formation
        #: (§5.3 step 5: D is set to start-number-max) and never lowered.
        self.d_floor: float = 0.0

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    @abstractmethod
    def send(self, payload: object, kind: str) -> str:
        """Disseminate a message with the given payload and kind.

        Returns the identifier under which the message will eventually be
        delivered: the multicast's message id when the engine multicasts
        directly (symmetric engine, or asymmetric engine at the sequencer),
        or the unicast request id when the message is handed to a sequencer
        (the sequencer reuses the request id as the multicast's message id,
        so the identifier is stable end to end).
        """

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    @abstractmethod
    def on_data(self, message: DataMessage) -> None:
        """Fold a received (or self-delivered) group message into the
        engine's deliverability state."""

    def on_sequencer_request(self, request: SequencerRequest) -> None:
        """Handle a unicast addressed to this process as sequencer.

        Only meaningful for the asymmetric engine; the symmetric engine
        never receives such messages.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not sequence messages"
        )

    # ------------------------------------------------------------------
    # Deliverability
    # ------------------------------------------------------------------
    @abstractmethod
    def deliverable_bound(self) -> float:
        """The group's ``D_x,i``: largest number safe to deliver (safe1)."""

    def ldn(self) -> int:
        """The integer ``m.ldn`` value to piggyback on outgoing messages.

        Stability only ever needs a lower bound, so an infinite bound (all
        remaining members excluded from the vector) is clamped to the
        process clock.
        """
        bound = self.deliverable_bound()
        if bound == float("inf"):
            return self.endpoint.process.clock.value
        return int(bound)

    def raise_floor(self, floor: float) -> None:
        """Raise the deliverable-bound floor (group formation, §5.3)."""
        if floor > self.d_floor:
            self.d_floor = floor

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------
    @abstractmethod
    def on_members_removed(self, removed: frozenset, threshold: int) -> None:
        """Membership step (viii): stop letting ``removed`` constrain ``D``."""

    def on_view_installed(self) -> None:
        """Hook called after a new view has been installed (default: no-op)."""

    def on_own_messages_discarded(self, messages) -> None:
        """Hook: step (viii) discarded pending messages this process
        originated.  Engines that route messages through another process
        (the asymmetric sequencer) can arrange recovery; the symmetric
        engine's own multicasts reach members directly, so the default is
        a no-op."""
