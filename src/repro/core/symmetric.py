"""The symmetric total-order engine (§4.1).

Every member multicasts its messages directly to the whole view.  The only
per-group state is the receive vector ``RV_x,i`` (latest number received
from each member); its minimum is the deliverable bound ``D_x,i``:

* a member's own sends count as receipts from itself (the paper: "Pi
  delivers its own messages also by executing the protocol"), so ``RV``
  always has an entry for the local process;
* because numbers increase per sender (CA1) and channels are FIFO, no
  message numbered ``<= D_x,i`` can arrive any more, hence *safe1*;
* the time-silence mechanism keeps ``D_x,i`` advancing when members have
  nothing to say.

The engine is completely symmetric: there is no coordinator, no extra
round, and a send is never blocked (the paper's §7: "If only symmetric
version is used, Newtop is totally non-blocking on send operations").
"""

from __future__ import annotations

from typing import Optional

from repro.core.messages import DataMessage, KIND_NULL, KIND_START_GROUP
from repro.core.ordering import OrderingEngine
from repro.core.vectors import make_receive_vector


class SymmetricOrdering(OrderingEngine):
    """Receive-vector-based total order for one group."""

    def __init__(self, endpoint) -> None:
        super().__init__(endpoint)
        self.receive_vector = make_receive_vector(
            endpoint.view.members, use_slab=endpoint.config.use_slab_state
        )

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(self, payload: object, kind: str) -> str:
        """CA1-number the message and multicast it to the whole view."""
        process = self.endpoint.process
        clock = process.clock.tick()
        ldn = self.ldn()
        if kind == KIND_START_GROUP:
            message = DataMessage.start_group(
                sender=process.process_id,
                group=self.endpoint.group_id,
                clock=clock,
                ldn=ldn,
            )
        elif kind == KIND_NULL:
            message = DataMessage.null(
                sender=process.process_id,
                group=self.endpoint.group_id,
                clock=clock,
                ldn=ldn,
            )
        else:
            message = DataMessage.application(
                sender=process.process_id,
                group=self.endpoint.group_id,
                clock=clock,
                ldn=ldn,
                payload=payload,
            )
        if kind == KIND_START_GROUP:
            cause = "formation"
        elif kind == KIND_NULL:
            cause = "null_time_silence"
        else:
            cause = "app_multicast"
        journeys = self.endpoint.journeys
        if journeys is not None:
            journeys.created(
                message.msg_id, cause, process.process_id,
                self.endpoint.group_id, process.sim.now,
            )
        self.endpoint.broadcast_data(message, cause=cause)
        return message.msg_id

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_data(self, message: DataMessage) -> None:
        """Record the receipt in ``RV`` (monotone per sender)."""
        if message.sender in self.receive_vector:
            self.receive_vector.record_receipt(message.sender, message.clock)

    # ------------------------------------------------------------------
    # Deliverability
    # ------------------------------------------------------------------
    def deliverable_bound(self) -> float:
        """``D_x,i = min(RV_x,i)``, never below the formation floor."""
        return max(self.receive_vector.deliverable_bound, self.d_floor)

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------
    def on_members_removed(self, removed: frozenset, threshold: int) -> None:
        """Step (viii): ``RV[k] := infinity`` so ``D`` can pass ``lnmn``."""
        for member in removed:
            self.receive_vector.mark_infinite(member)

    def on_view_installed(self) -> None:
        """Drop vector entries of members no longer in the view."""
        current = self.endpoint.view.members
        for member in list(self.receive_vector.members()):
            if member not in current:
                self.receive_vector.remove(member)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SymmetricOrdering(group={self.endpoint.group_id!r}, "
            f"D={self.deliverable_bound()})"
        )
