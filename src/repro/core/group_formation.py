"""Dynamic group formation (§5.3).

Newtop has no "join" operation: views only shrink, and processes that want
to (re)join their former co-members instead *form a new group* while
keeping their existing memberships.  Formation is a two-phase protocol run
by an initiator, followed by an in-group agreement on the number from which
application traffic may start:

1. The initiator sends a ``form group gn`` invitation carrying the intended
   membership to every intended member.
2. Every invitee diffuses its yes/no decision to every intended member.
3. The initiator sends its own ``yes`` only once it has received ``yes``
   from everybody else within a timeout; otherwise it diffuses ``no``
   (a single ``no`` acts as a veto).
4. A member that has collected ``yes`` from *every* intended member
   activates the group: installs the initial view, starts the time-silence
   mechanism and the group-view (membership) process, and multicasts a
   special ``start-group`` message whose number is its proposed
   *start-number*.
5. Before sending any application message in the new group, a member waits
   for a ``start-group`` message from every member of its current view; the
   group's deliverable bound is then set to the maximum proposed
   start-number and the member's clock is raised to it, which guarantees
   that application messages of the new group are numbered above the
   start-number and therefore order consistently with the member's other
   groups.

This module implements phases 1-3 (the voting); phases 4-5 live in the
group endpoint (the *formation wait* state) because they interact with the
delivery machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import OrderingMode
from repro.core.errors import GroupFormationError
from repro.core.messages import FormGroupInvite, FormGroupVote
from repro.net.simulator import EventHandle, Simulator

#: Policy callback deciding whether this process accepts an invitation:
#: ``policy(group_id, members) -> bool``.
VotePolicy = Callable[[str, Tuple[str, ...]], bool]


class FormationStatus(enum.Enum):
    """Lifecycle of one group-formation attempt, as seen by one process."""

    VOTING = "voting"
    FORMED = "formed"
    FAILED = "failed"


@dataclass
class FormationHandle:
    """Observable state of one formation attempt at one process."""

    group_id: str
    members: Tuple[str, ...]
    mode: OrderingMode
    initiator: str
    status: FormationStatus = FormationStatus.VOTING
    #: Votes received so far (voter -> decision), including our own.
    votes: Dict[str, bool] = field(default_factory=dict)
    #: Why the attempt failed, when it did.
    failure_reason: Optional[str] = None

    @property
    def formed(self) -> bool:
        """Whether the group has been activated locally."""
        return self.status == FormationStatus.FORMED

    @property
    def failed(self) -> bool:
        """Whether the attempt has failed locally."""
        return self.status == FormationStatus.FAILED


class FormationCoordinator:
    """Runs the voting phases of group formation for one process.

    The coordinator is owned by a :class:`~repro.core.process.NewtopProcess`
    and calls back into it to transmit messages and to activate groups that
    reached unanimous agreement.
    """

    def __init__(
        self,
        process,
        sim: Simulator,
        vote_policy: Optional[VotePolicy] = None,
        formation_timeout: float = 30.0,
    ) -> None:
        self.process = process
        self.sim = sim
        self.vote_policy = vote_policy or (lambda group_id, members: True)
        self.formation_timeout = formation_timeout
        self._attempts: Dict[str, FormationHandle] = {}
        self._timers: Dict[str, EventHandle] = {}
        self._own_vote_sent: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Initiation (step 1)
    # ------------------------------------------------------------------
    def initiate(
        self, group_id: str, members: Tuple[str, ...], mode: OrderingMode
    ) -> FormationHandle:
        """Step 1: invite every intended member to form ``group_id``."""
        own_id = self.process.process_id
        if own_id not in members:
            raise GroupFormationError(
                f"initiator {own_id!r} must be an intended member of {group_id!r}"
            )
        if group_id in self._attempts:
            raise GroupFormationError(f"formation of {group_id!r} already in progress")
        handle = FormationHandle(
            group_id=group_id, members=tuple(members), mode=mode, initiator=own_id
        )
        self._attempts[group_id] = handle
        self._own_vote_sent[group_id] = False
        invite = FormGroupInvite(
            initiator=own_id, group=group_id, members=tuple(members), mode=mode.value
        )
        for member in members:
            if member != own_id:
                self.process.send_control(member, invite, cause="formation")
        self._timers[group_id] = self.sim.schedule(
            self.formation_timeout, self._on_timeout, group_id, label="formation-timeout"
        )
        self._check_initiator_vote(group_id)
        return handle

    # ------------------------------------------------------------------
    # Invitations (step 2)
    # ------------------------------------------------------------------
    def on_invite(self, invite: FormGroupInvite) -> FormationHandle:
        """An invitation arrived: decide, then diffuse our vote to everyone."""
        own_id = self.process.process_id
        handle = self._attempts.get(invite.group)
        if handle is None:
            handle = FormationHandle(
                group_id=invite.group,
                members=tuple(invite.members),
                mode=OrderingMode(invite.mode),
                initiator=invite.initiator,
            )
            self._attempts[invite.group] = handle
            self._own_vote_sent[invite.group] = False
        else:
            # Votes can overtake the invitation (they travel on different
            # channels); the invitation is authoritative for mode/initiator.
            handle.members = tuple(invite.members)
            handle.mode = OrderingMode(invite.mode)
            handle.initiator = invite.initiator
        if own_id not in handle.members:
            # Not actually an intended member; ignore the stray invitation.
            return handle
        accept = bool(self.vote_policy(invite.group, handle.members))
        self._diffuse_vote(handle, accept)
        return handle

    # ------------------------------------------------------------------
    # Votes (steps 2-4)
    # ------------------------------------------------------------------
    def on_vote(self, vote: FormGroupVote) -> None:
        """Record a diffused vote and re-evaluate activation conditions."""
        handle = self._attempts.get(vote.group)
        if handle is None:
            handle = FormationHandle(
                group_id=vote.group,
                members=tuple(vote.members),
                mode=OrderingMode.SYMMETRIC,
                initiator=vote.members[0] if vote.members else vote.voter,
            )
            self._attempts[vote.group] = handle
            self._own_vote_sent[vote.group] = False
        if handle.status != FormationStatus.VOTING:
            return
        handle.votes[vote.voter] = vote.accept
        if not vote.accept:
            self._fail(handle, f"vetoed by {vote.voter}")
            return
        self._check_initiator_vote(vote.group)
        self._check_activation(vote.group)

    def _diffuse_vote(self, handle: FormationHandle, accept: bool) -> None:
        own_id = self.process.process_id
        if self._own_vote_sent.get(handle.group_id):
            return
        self._own_vote_sent[handle.group_id] = True
        handle.votes[own_id] = accept
        vote = FormGroupVote(
            voter=own_id, group=handle.group_id, accept=accept, members=handle.members
        )
        for member in handle.members:
            if member != own_id:
                self.process.send_control(member, vote, cause="formation")
        if not accept:
            self._fail(handle, "declined locally")
            return
        self._check_activation(handle.group_id)

    def _check_initiator_vote(self, group_id: str) -> None:
        """Step 3: the initiator votes yes only once everyone else has."""
        handle = self._attempts.get(group_id)
        if handle is None or handle.status != FormationStatus.VOTING:
            return
        own_id = self.process.process_id
        if handle.initiator != own_id or self._own_vote_sent.get(group_id):
            return
        others = [member for member in handle.members if member != own_id]
        if all(handle.votes.get(member) is True for member in others):
            self._diffuse_vote(handle, True)

    def _check_activation(self, group_id: str) -> None:
        """Step 4: activate once a yes has arrived from every member."""
        handle = self._attempts.get(group_id)
        if handle is None or handle.status != FormationStatus.VOTING:
            return
        if all(handle.votes.get(member) is True for member in handle.members):
            handle.status = FormationStatus.FORMED
            self._cancel_timer(group_id)
            self.process.activate_formed_group(
                group_id, handle.members, handle.mode
            )

    def on_activation_evidence(self, group_id: str) -> bool:
        """A ``start-group`` message arrived while we are still VOTING.

        Its sender activated, and step 4 only fires on a ``yes`` from
        *every* intended member -- and since each member diffuses exactly
        one vote, a single ``no`` anywhere makes activation impossible for
        everyone.  The start-group message is therefore proof that the vote
        was unanimous, even if some of the ``yes`` messages were lost on
        their way to us (e.g. to a transient partition).  Adopt the
        outcome, provided we voted ``yes`` ourselves (which also means the
        invitation's membership and mode are authoritative here).
        """
        handle = self._attempts.get(group_id)
        if handle is None or handle.status != FormationStatus.VOTING:
            return False
        own_id = self.process.process_id
        if not self._own_vote_sent.get(group_id) or handle.votes.get(own_id) is not True:
            return False
        for member in handle.members:
            handle.votes.setdefault(member, True)
        self._check_activation(group_id)
        return handle.formed

    # ------------------------------------------------------------------
    # Failure paths
    # ------------------------------------------------------------------
    def _on_timeout(self, group_id: str) -> None:
        handle = self._attempts.get(group_id)
        if handle is None or handle.status != FormationStatus.VOTING:
            return
        own_id = self.process.process_id
        if handle.initiator == own_id and not self._own_vote_sent.get(group_id):
            # Step 3: "Pi sends its 'yes' message if it receives a 'yes'
            # from the rest within some time duration, else it sends a 'no'."
            self._diffuse_vote(handle, False)
        else:
            self._fail(handle, "formation timed out")

    def _fail(self, handle: FormationHandle, reason: str) -> None:
        if handle.status == FormationStatus.VOTING:
            handle.status = FormationStatus.FAILED
            handle.failure_reason = reason
            self._cancel_timer(handle.group_id)

    def _cancel_timer(self, group_id: str) -> None:
        timer = self._timers.pop(group_id, None)
        if timer is not None:
            timer.cancel()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def attempt(self, group_id: str) -> Optional[FormationHandle]:
        """The formation attempt for ``group_id``, if any."""
        return self._attempts.get(group_id)

    def attempts(self) -> List[FormationHandle]:
        """All formation attempts seen by this process."""
        return list(self._attempts.values())
