"""Configuration for Newtop processes.

The paper leaves several quantities as deployment-time parameters; they are
collected here with the paper's notation preserved where it exists:

* ``omega`` -- the time-silence period ω: a process sends a null message in
  a group if it has sent nothing there for ω time units (§4.1).
* ``suspicion_timeout`` -- Ω, the failure-suspector timeout: a member is
  suspected if nothing has been received from it for Ω (> ω) time units
  (§5.2).  "In practice, Ω should be tuned to a value that minimises the
  possibility of unfounded suspicions."
* ordering mode defaults (symmetric vs asymmetric, §4.1/§4.2),
* optional ISIS-style send blocking during view installation (§3 notes
  Newtop *can* provide the closed form of virtual synchrony "at the
  necessary expense of performance"),
* flow-control window (§7 / reference [11]),
* signature views (§6 extension for never-intersecting concurrent views).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError


class OrderingMode(enum.Enum):
    """Which total-order protocol a group runs (per group, per §4.3)."""

    #: Every member multicasts directly; delivery gated on receive vectors.
    SYMMETRIC = "symmetric"
    #: Members unicast to a deterministic sequencer which re-multicasts.
    ASYMMETRIC = "asymmetric"
    #: No ordering: atomic delivery only (the logical clock layer is
    #: bypassed for delivery decisions, as Fig. 3 allows).
    ATOMIC_ONLY = "atomic_only"


@dataclass
class NewtopConfig:
    """Tunable parameters of a Newtop process.

    The defaults are scaled to the simulator's default latency model
    (mean one-way delay around 1 time unit).
    """

    #: Time-silence period ω (§4.1): maximum silent interval per group
    #: before a null message is sent.
    omega: float = 2.0
    #: Failure-suspector timeout Ω (§5.2).  Must exceed ``omega``.
    suspicion_timeout: float = 10.0
    #: How often the suspector wakes up to check for silence.
    suspector_check_interval: float = 1.0
    #: Default ordering mode for newly created groups.
    default_mode: OrderingMode = OrderingMode.SYMMETRIC
    #: If True, application sends are blocked while a view installation is
    #: pending, yielding ISIS-style closed virtual synchrony (r' == r).
    #: Newtop's default (False) allows sends to proceed, giving r' >= r.
    block_sends_during_view_change: bool = False
    #: Flow-control window: maximum number of own messages per group that
    #: may be unstable at once; further sends are queued.  ``None`` disables
    #: flow control.
    flow_control_window: int | None = None
    #: Use signature views ({process-id, exclusion-count} tuples, §6) so
    #: that concurrent views of different subgroups never intersect.
    use_signature_views: bool = False
    #: Maximum number of messages retained per group for retransmission
    #: before stability forces a garbage collection error.  ``None`` means
    #: unbounded retention (safe, but benchmarks can bound it).
    retention_limit: int | None = None
    #: Timeout used by the group-formation coordinator while collecting
    #: votes (§5.3 step 3).
    formation_timeout: float = 30.0
    #: Back the receive/stability vectors with slab arrays (dense member
    #: slots, cached minimum) instead of per-vector dicts.  Both backends
    #: are behaviourally identical -- equivalence tests run seeded
    #: scenarios under each and require byte-identical results -- so this
    #: switch exists only to prove that and to measure the difference.
    use_slab_state: bool = True
    #: Drain a whole per-process transport batch (all messages arriving at
    #: one simulated instant) before attempting deliveries and flushing
    #: deferred sends, instead of doing both after every message.  Purely a
    #: hot-path batching knob: the delivery sequence is unchanged (pinned
    #: by equivalence tests).
    batch_receipts: bool = True
    #: Approximate payload-independent byte cost of headers added by the
    #: transport; used only for overhead accounting.
    transport_header_bytes: int = 20
    #: Sequence an end-of-view ``view_cut`` marker when an asymmetric group
    #: excludes a non-sequencer member, so every survivor cuts the delivery
    #: stream at the same sequencer number.  Disabling it reverts to the
    #: failed member's ``lnmn`` as the cut -- a position the sequencer
    #: stream never agrees on, which virtual synchrony checkers catch under
    #: faults + load.  This switch exists ONLY as a known-bug target for the
    #: fuzz mutation harness (tests prove the fuzzer re-finds the violation);
    #: never disable it in real runs.
    use_view_cut_marker: bool = True

    def validate(self) -> "NewtopConfig":
        """Raise :class:`ConfigurationError` if the parameters are inconsistent."""
        if self.omega <= 0:
            raise ConfigurationError(f"omega must be positive (got {self.omega})")
        if self.suspicion_timeout <= self.omega:
            raise ConfigurationError(
                "suspicion_timeout (Omega) must exceed the time-silence period "
                f"omega: got Omega={self.suspicion_timeout}, omega={self.omega}"
            )
        if self.suspector_check_interval <= 0:
            raise ConfigurationError("suspector_check_interval must be positive")
        if self.flow_control_window is not None and self.flow_control_window < 1:
            raise ConfigurationError("flow_control_window must be >= 1 or None")
        if self.retention_limit is not None and self.retention_limit < 1:
            raise ConfigurationError("retention_limit must be >= 1 or None")
        if self.formation_timeout <= 0:
            raise ConfigurationError("formation_timeout must be positive")
        return self

    def replace(self, **overrides) -> "NewtopConfig":
        """Return a copy of this config with ``overrides`` applied."""
        values = self.__dict__.copy()
        values.update(overrides)
        return NewtopConfig(**values).validate()
