"""Receive vectors, stability vectors and the deliverability bound ``D``.

§4.1: each process ``Pi`` keeps, per group ``gx``, a *receive vector*
``RV_x,i`` with one entry per member of its current view recording the
number (``m.c``) of the latest message received from that member.  The
minimum entry, ``D_x,i``, bounds the numbers of messages that can still
arrive: because senders number their messages increasingly and channels are
FIFO, ``Pi`` will never again receive a message numbered ``<= D_x,i`` in
``gx``, so every received message numbered ``<= D_x,i`` is safe to deliver
(condition *safe1*).  For a multi-group process the per-group minima are
combined into ``D_i = min over groups`` (*safe1'*).

§5.1: the *stability vector* ``SV_x,i`` records, per member, the largest
``m.ldn`` (the sender's own ``D`` at send time) received from it; a message
numbered ``<= min(SV_x,i)`` has been received by every member of the view
and can be discarded from retransmission buffers.

§5.2 (view installation, step viii): entries of failed processes are set to
infinity so that ``D`` can advance past the point at which the failed
processes fell silent.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Optional

#: Sentinel used for members removed from the view: their entry no longer
#: constrains the minimum (step (viii): ``RV[k] := infinity``).
INFINITY = math.inf


class MemberVector:
    """A per-member counter vector with a cached minimum.

    Base class for :class:`ReceiveVector` and :class:`StabilityVector`;
    both are maps ``member id -> message number`` whose minimum over the
    current view drives a protocol decision.
    """

    def __init__(self, members: Iterable[str], initial: int = 0) -> None:
        self._entries: Dict[str, float] = {member: initial for member in members}
        if not self._entries:
            raise ValueError("a member vector needs at least one member")
        #: Largest finite minimum ever observed; the fallback value of
        #: :meth:`finite_minimum` once every entry has been marked infinite
        #: (mass failure / view collapse, §5.2 step viii).
        self._last_finite_minimum: float = float(initial)

    # ------------------------------------------------------------------
    # Entry access
    # ------------------------------------------------------------------
    def __getitem__(self, member: str) -> float:
        return self._entries[member]

    def __contains__(self, member: str) -> bool:
        return member in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, member: str, default: Optional[float] = None) -> Optional[float]:
        """Entry for ``member`` or ``default`` when absent."""
        return self._entries.get(member, default)

    def members(self) -> list[str]:
        """Member identifiers tracked by this vector, sorted."""
        return sorted(self._entries)

    def as_dict(self) -> Dict[str, float]:
        """Copy of the underlying mapping (for inspection / metrics)."""
        return dict(self._entries)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, member: str, value: float) -> bool:
        """Record ``value`` for ``member`` if it is larger than the current
        entry.  Returns True if the entry changed.

        Message numbers from one sender only ever increase (CA1 + FIFO), so
        a monotone update is the correct and safe behaviour even if the
        caller processes piggybacked or recovered messages out of order.
        """
        if member not in self._entries:
            raise KeyError(f"{member!r} is not tracked by this vector")
        if value > self._entries[member]:
            self._entries[member] = value
            return True
        return False

    def mark_infinite(self, member: str) -> None:
        """Step (viii): stop letting ``member`` constrain the minimum."""
        if member in self._entries:
            self._entries[member] = INFINITY

    def remove(self, member: str) -> None:
        """Drop ``member`` from the vector entirely (after view installation)."""
        self._entries.pop(member, None)

    def add_member(self, member: str, initial: int = 0) -> None:
        """Track a new member (used only by group formation, where the
        vector is created for the full intended membership)."""
        self._entries.setdefault(member, initial)

    # ------------------------------------------------------------------
    # The protocol-relevant aggregate
    # ------------------------------------------------------------------
    def minimum(self) -> float:
        """Minimum entry over all tracked members.

        Entries marked infinite (failed/departed members) do not constrain
        the result; if *every* entry is infinite the result is infinity,
        meaning nothing constrains deliverability any more.
        """
        return min(self._entries.values()) if self._entries else INFINITY

    def finite_minimum(self) -> float:
        """Minimum over the *finite* entries, with an all-infinite fallback.

        When every entry has been marked infinite (all other members failed
        at once) the plain :meth:`minimum` is ``inf`` -- a value that must
        never be serialised into an ``m.ldn`` field or compared against
        integer message numbers.  This variant clamps to the last finite
        bound observed instead, which is always a *safe* (possibly
        conservative) stability bound: entries only ever grow, so every
        message at or below it really was covered by finite evidence.
        """
        finite = [value for value in self._entries.values() if value != INFINITY]
        if not finite:
            return self._last_finite_minimum
        value = min(finite)
        if value > self._last_finite_minimum:
            self._last_finite_minimum = value
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{member}:{value}" for member, value in sorted(self._entries.items()))
        return f"{type(self).__name__}({inner})"


class ReceiveVector(MemberVector):
    """``RV_x,i``: latest message number received from each view member.

    ``minimum()`` is the paper's ``D_x,i``.
    """

    def record_receipt(self, sender: str, clock: int) -> bool:
        """Record that a message numbered ``clock`` arrived from ``sender``."""
        return self.update(sender, clock)

    @property
    def deliverable_bound(self) -> float:
        """``D_x,i`` -- the largest number that is safe to deliver."""
        return self.minimum()


class StabilityVector(MemberVector):
    """``SV_x,i``: latest ``m.ldn`` received from each view member.

    ``minimum()`` bounds the numbers of messages known to have been received
    by every member; such messages are *stable* and may be discarded from
    retransmission buffers (§5.1).
    """

    def record_ldn(self, sender: str, ldn: int) -> bool:
        """Record the ``m.ldn`` piggybacked on a message from ``sender``."""
        return self.update(sender, ldn)

    @property
    def stability_bound(self) -> float:
        """Largest message number known to be stable.

        Unlike the deliverable bound ``D`` (where an all-infinite vector
        legitimately means "nothing constrains delivery"), the stability
        bound is piggybacked into ``m.ldn`` fields and compared against
        integer message numbers, so it is clamped to the last finite value
        when every entry is infinite (mass failure, §5.2 step viii).
        """
        return self.finite_minimum()
