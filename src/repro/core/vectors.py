"""Receive vectors, stability vectors and the deliverability bound ``D``.

§4.1: each process ``Pi`` keeps, per group ``gx``, a *receive vector*
``RV_x,i`` with one entry per member of its current view recording the
number (``m.c``) of the latest message received from that member.  The
minimum entry, ``D_x,i``, bounds the numbers of messages that can still
arrive: because senders number their messages increasingly and channels are
FIFO, ``Pi`` will never again receive a message numbered ``<= D_x,i`` in
``gx``, so every received message numbered ``<= D_x,i`` is safe to deliver
(condition *safe1*).  For a multi-group process the per-group minima are
combined into ``D_i = min over groups`` (*safe1'*).

§5.1: the *stability vector* ``SV_x,i`` records, per member, the largest
``m.ldn`` (the sender's own ``D`` at send time) received from it; a message
numbered ``<= min(SV_x,i)`` has been received by every member of the view
and can be discarded from retransmission buffers.

§5.2 (view installation, step viii): entries of failed processes are set to
infinity so that ``D`` can advance past the point at which the failed
processes fell silent.

Two interchangeable backends implement the vector:

* :class:`SlabMemberVector` (the default, aliased as :class:`MemberVector`)
  stores values in a flat slab list keyed by dense slot indices with a
  cached minimum.  Entries are monotone (they only grow), so the cache is
  ``(min value, count of entries at it)``: a receipt that raises a
  non-minimal entry is O(1), and the O(n) rescan happens only when the
  minimum actually advances -- amortised O(1) per receipt on the hot path.
* :class:`DictMemberVector` is the original dict-per-vector implementation,
  kept as the executable reference: the equivalence tests run whole seeded
  scenarios under both backends (``NewtopConfig.use_slab_state``) and
  require byte-identical results.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional

#: Sentinel used for members removed from the view: their entry no longer
#: constrains the minimum (step (viii): ``RV[k] := infinity``).
INFINITY = math.inf


class SlabMemberVector:
    """Slab-backed per-member counter vector with an O(1) cached minimum.

    Values live in a flat list indexed by a dense per-member slot; the
    pid -> slot map is the only dict, and it is touched once per lookup
    rather than once per aggregate.  The minimum is cached as
    ``(_min_value, _min_count)`` and is exact at all times except when a
    raise empties the minimum class, which flags ``_min_dirty`` for a lazy
    rescan on the next read.
    """

    __slots__ = (
        "_slot", "_pids", "_values", "_present", "_present_count",
        "_min_value", "_min_count", "_min_dirty", "_last_finite_minimum",
    )

    def __init__(self, members: Iterable[str], initial: int = 0) -> None:
        self._slot: Dict[str, int] = {}
        self._pids: List[str] = []
        self._values: List[float] = []
        self._present: List[bool] = []
        for member in members:
            if member in self._slot:
                continue
            self._slot[member] = len(self._pids)
            self._pids.append(member)
            self._values.append(initial)
            self._present.append(True)
        if not self._pids:
            raise ValueError("a member vector needs at least one member")
        self._present_count = len(self._pids)
        self._min_value: float = float(initial)
        self._min_count = self._present_count
        self._min_dirty = False
        #: Largest finite minimum ever observed; the fallback value of
        #: :meth:`finite_minimum` once every entry has been marked infinite
        #: (mass failure / view collapse, §5.2 step viii).
        self._last_finite_minimum: float = float(initial)

    # ------------------------------------------------------------------
    # Entry access
    # ------------------------------------------------------------------
    def __getitem__(self, member: str) -> float:
        slot = self._slot.get(member)
        if slot is None or not self._present[slot]:
            raise KeyError(member)
        return self._values[slot]

    def __contains__(self, member: str) -> bool:
        slot = self._slot.get(member)
        return slot is not None and self._present[slot]

    def __iter__(self) -> Iterator[str]:
        for slot, pid in enumerate(self._pids):
            if self._present[slot]:
                yield pid

    def __len__(self) -> int:
        return self._present_count

    def get(self, member: str, default: Optional[float] = None) -> Optional[float]:
        """Entry for ``member`` or ``default`` when absent."""
        slot = self._slot.get(member)
        if slot is None or not self._present[slot]:
            return default
        return self._values[slot]

    def members(self) -> list[str]:
        """Member identifiers tracked by this vector, sorted."""
        return sorted(self)

    def as_dict(self) -> Dict[str, float]:
        """Copy of the vector as a mapping (for inspection / metrics)."""
        return {
            pid: self._values[slot]
            for slot, pid in enumerate(self._pids)
            if self._present[slot]
        }

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, member: str, value: float) -> bool:
        """Record ``value`` for ``member`` if it is larger than the current
        entry.  Returns True if the entry changed.

        Message numbers from one sender only ever increase (CA1 + FIFO), so
        a monotone update is the correct and safe behaviour even if the
        caller processes piggybacked or recovered messages out of order.
        """
        slot = self._slot.get(member)
        if slot is None or not self._present[slot]:
            raise KeyError(f"{member!r} is not tracked by this vector")
        current = self._values[slot]
        if value <= current:
            return False
        self._values[slot] = value
        self._on_raised(current)
        return True

    def mark_infinite(self, member: str) -> None:
        """Step (viii): stop letting ``member`` constrain the minimum."""
        slot = self._slot.get(member)
        if slot is None or not self._present[slot]:
            return
        current = self._values[slot]
        if current != INFINITY:
            self._values[slot] = INFINITY
            self._on_raised(current)

    def remove(self, member: str) -> None:
        """Drop ``member`` from the vector entirely (after view installation)."""
        slot = self._slot.get(member)
        if slot is None or not self._present[slot]:
            return
        self._present[slot] = False
        self._present_count -= 1
        self._on_raised(self._values[slot])

    def add_member(self, member: str, initial: int = 0) -> None:
        """Track a new member (used only by group formation, where the
        vector is created for the full intended membership)."""
        slot = self._slot.get(member)
        if slot is not None:
            if not self._present[slot]:
                self._present[slot] = True
                self._present_count += 1
                self._values[slot] = initial
                self._on_lowered(float(initial))
            return
        self._slot[member] = len(self._pids)
        self._pids.append(member)
        self._values.append(initial)
        self._present.append(True)
        self._present_count += 1
        self._on_lowered(float(initial))

    def _on_raised(self, old_value: float) -> None:
        """An entry at ``old_value`` was raised or removed."""
        if self._min_dirty or old_value != self._min_value:
            return
        self._min_count -= 1
        if self._min_count <= 0:
            self._min_dirty = True

    def _on_lowered(self, value: float) -> None:
        """A new entry at ``value`` appeared (group formation only)."""
        if self._min_dirty:
            return
        if value < self._min_value:
            self._min_value = value
            self._min_count = 1
        elif value == self._min_value:
            self._min_count += 1

    def _rescan(self) -> None:
        best = INFINITY
        count = 0
        values = self._values
        present = self._present
        for slot in range(len(values)):
            if not present[slot]:
                continue
            value = values[slot]
            if value < best:
                best = value
                count = 1
            elif value == best:
                count += 1
        self._min_value = best
        self._min_count = count
        self._min_dirty = False

    # ------------------------------------------------------------------
    # The protocol-relevant aggregate
    # ------------------------------------------------------------------
    def minimum(self) -> float:
        """Minimum entry over all tracked members.

        Entries marked infinite (failed/departed members) do not constrain
        the result; if *every* entry is infinite the result is infinity,
        meaning nothing constrains deliverability any more.
        """
        if self._present_count == 0:
            return INFINITY
        if self._min_dirty:
            self._rescan()
        return self._min_value

    def finite_minimum(self) -> float:
        """Minimum over the *finite* entries, with an all-infinite fallback.

        When every entry has been marked infinite (all other members failed
        at once) the plain :meth:`minimum` is ``inf`` -- a value that must
        never be serialised into an ``m.ldn`` field or compared against
        integer message numbers.  This variant clamps to the last finite
        bound observed instead, which is always a *safe* (possibly
        conservative) stability bound: entries only ever grow, so every
        message at or below it really was covered by finite evidence.
        """
        value = self.minimum()
        if value == INFINITY:
            return self._last_finite_minimum
        if value > self._last_finite_minimum:
            self._last_finite_minimum = value
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{member}:{value}" for member, value in sorted(self.as_dict().items()))
        return f"{type(self).__name__}({inner})"


class DictMemberVector:
    """Reference dict-backed vector (the pre-slab implementation).

    Selected with ``NewtopConfig.use_slab_state=False``; the equivalence
    tests run identical seeded scenarios under both backends and require
    byte-identical scenario results.
    """

    def __init__(self, members: Iterable[str], initial: int = 0) -> None:
        self._entries: Dict[str, float] = {member: initial for member in members}
        if not self._entries:
            raise ValueError("a member vector needs at least one member")
        self._last_finite_minimum: float = float(initial)

    # ------------------------------------------------------------------
    # Entry access
    # ------------------------------------------------------------------
    def __getitem__(self, member: str) -> float:
        return self._entries[member]

    def __contains__(self, member: str) -> bool:
        return member in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, member: str, default: Optional[float] = None) -> Optional[float]:
        """Entry for ``member`` or ``default`` when absent."""
        return self._entries.get(member, default)

    def members(self) -> list[str]:
        """Member identifiers tracked by this vector, sorted."""
        return sorted(self._entries)

    def as_dict(self) -> Dict[str, float]:
        """Copy of the underlying mapping (for inspection / metrics)."""
        return dict(self._entries)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, member: str, value: float) -> bool:
        """Monotone update; see :meth:`SlabMemberVector.update`."""
        if member not in self._entries:
            raise KeyError(f"{member!r} is not tracked by this vector")
        if value > self._entries[member]:
            self._entries[member] = value
            return True
        return False

    def mark_infinite(self, member: str) -> None:
        """Step (viii): stop letting ``member`` constrain the minimum."""
        if member in self._entries:
            self._entries[member] = INFINITY

    def remove(self, member: str) -> None:
        """Drop ``member`` from the vector entirely (after view installation)."""
        self._entries.pop(member, None)

    def add_member(self, member: str, initial: int = 0) -> None:
        """Track a new member (group formation only)."""
        self._entries.setdefault(member, initial)

    # ------------------------------------------------------------------
    # The protocol-relevant aggregate
    # ------------------------------------------------------------------
    def minimum(self) -> float:
        """Minimum entry; see :meth:`SlabMemberVector.minimum`."""
        return min(self._entries.values()) if self._entries else INFINITY

    def finite_minimum(self) -> float:
        """Clamped finite minimum; see :meth:`SlabMemberVector.finite_minimum`."""
        finite = [value for value in self._entries.values() if value != INFINITY]
        if not finite:
            return self._last_finite_minimum
        value = min(finite)
        if value > self._last_finite_minimum:
            self._last_finite_minimum = value
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{member}:{value}" for member, value in sorted(self._entries.items()))
        return f"{type(self).__name__}({inner})"


#: Default backend.  Protocol code should construct concrete vectors via
#: :func:`make_receive_vector` / :func:`make_stability_vector` so the
#: config flag can switch backends.
MemberVector = SlabMemberVector


class _ReceiveVectorOps:
    """``RV_x,i`` behaviour shared by both backends."""

    def record_receipt(self, sender: str, clock: int) -> bool:
        """Record that a message numbered ``clock`` arrived from ``sender``."""
        return self.update(sender, clock)

    @property
    def deliverable_bound(self) -> float:
        """``D_x,i`` -- the largest number that is safe to deliver."""
        return self.minimum()


class _StabilityVectorOps:
    """``SV_x,i`` behaviour shared by both backends."""

    def record_ldn(self, sender: str, ldn: int) -> bool:
        """Record the ``m.ldn`` piggybacked on a message from ``sender``."""
        return self.update(sender, ldn)

    @property
    def stability_bound(self) -> float:
        """Largest message number known to be stable.

        Unlike the deliverable bound ``D`` (where an all-infinite vector
        legitimately means "nothing constrains delivery"), the stability
        bound is piggybacked into ``m.ldn`` fields and compared against
        integer message numbers, so it is clamped to the last finite value
        when every entry is infinite (mass failure, §5.2 step viii).
        """
        return self.finite_minimum()


class ReceiveVector(_ReceiveVectorOps, SlabMemberVector):
    """``RV_x,i``: latest message number received from each view member.

    ``minimum()`` is the paper's ``D_x,i``.
    """


class DictReceiveVector(_ReceiveVectorOps, DictMemberVector):
    """Dict-backed reference ``RV_x,i``."""


class StabilityVector(_StabilityVectorOps, SlabMemberVector):
    """``SV_x,i``: latest ``m.ldn`` received from each view member.

    ``minimum()`` bounds the numbers of messages known to have been received
    by every member; such messages are *stable* and may be discarded from
    retransmission buffers (§5.1).
    """


class DictStabilityVector(_StabilityVectorOps, DictMemberVector):
    """Dict-backed reference ``SV_x,i``."""


def make_receive_vector(members: Iterable[str], use_slab: bool = True):
    """Construct an ``RV`` with the configured backend."""
    return ReceiveVector(members) if use_slab else DictReceiveVector(members)


def make_stability_vector(members: Iterable[str], use_slab: bool = True):
    """Construct an ``SV`` with the configured backend."""
    return StabilityVector(members) if use_slab else DictStabilityVector(members)
