"""Message stability tracking and the retention buffer (§5.1).

To make message recovery possible (a process must always be able to
retrieve a missing message from another functioning member), every process
retains the messages it has sent and received in a group until they become
*stable*:

    "A message m becomes stable in Pi if Pi knows that all processes in the
    current view of m.g have received m."

Stability information travels piggybacked on normal traffic: every message
carries ``m.ldn``, the sender's current ``D_x`` for the group; the receiver
records it in its stability vector ``SV_x,i``.  Every message numbered at
most ``min(SV_x,i)`` has, transitively, been received by every member and
can be discarded.

The :class:`RetentionBuffer` below is the store backing that rule.  It also
answers the query the membership protocol needs for refutations (step iii):
"all received m of Pk, m.c > ln" -- by definition such messages are
unstable, so they are guaranteed to still be in the buffer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.messages import DataMessage
from repro.core.vectors import INFINITY as _INF, make_stability_vector


class RetentionBuffer:
    """Per-group store of not-yet-stable messages, keyed by sender.

    Only messages actually *received* (or sent, which includes loopback
    receipt) are retained; the buffer is not a log of everything ever sent
    in the group.
    """

    def __init__(self, group: str, retention_limit: Optional[int] = None) -> None:
        self.group = group
        self.retention_limit = retention_limit
        # sender -> {clock -> message}
        self._by_sender: Dict[str, Dict[int, DataMessage]] = {}
        self._discarded_stable = 0
        self._size = 0
        self._peak_size = 0
        #: Sound lower bound on the smallest retained clock: the stability
        #: garbage collector runs per received message, so the common case
        #: ("bound did not advance past anything retained") must be an O(1)
        #: comparison, not a full-buffer scan.  Removals may leave the
        #: bound stale-low, which only costs an occasional wasted scan.
        self._min_retained: float = _INF

    # ------------------------------------------------------------------
    # Insertion and garbage collection
    # ------------------------------------------------------------------
    def retain(self, message: DataMessage, key: Optional[str] = None) -> None:
        """Keep ``message`` until it is known to be stable.

        ``key`` overrides the sender the message is filed under; asymmetric
        groups file sequenced messages under the sequencer, because that is
        the process whose silence/failure governs their recovery (§4.2).
        """
        per_sender = self._by_sender.setdefault(key or message.sender, {})
        if message.clock not in per_sender:
            self._size += 1
            if self._size > self._peak_size:
                self._peak_size = self._size
        per_sender[message.clock] = message
        if message.clock < self._min_retained:
            self._min_retained = message.clock

    def discard_stable(self, stability_bound: float) -> int:
        """Discard every retained message numbered ``<= stability_bound``.

        Returns the number of messages discarded.  Called whenever the
        stability vector's minimum advances.
        """
        if stability_bound < self._min_retained:
            return 0
        discarded = 0
        new_min: float = _INF
        for sender in list(self._by_sender):
            per_sender = self._by_sender[sender]
            stable_clocks = [clock for clock in per_sender if clock <= stability_bound]
            for clock in stable_clocks:
                del per_sender[clock]
                discarded += 1
            if per_sender:
                sender_min = min(per_sender)
                if sender_min < new_min:
                    new_min = sender_min
            else:
                del self._by_sender[sender]
        self._min_retained = new_min
        self._size -= discarded
        self._discarded_stable += discarded
        return discarded

    def discard_sender(self, sender: str) -> int:
        """Drop everything retained for ``sender`` (used when a failed
        process is removed from the view and its pending messages must be
        discarded, §5.2 step viii)."""
        removed = len(self._by_sender.pop(sender, {}))
        self._size -= removed
        return removed

    def discard_sender_above(self, sender: str, threshold: int) -> int:
        """Drop ``sender``'s retained messages numbered above ``threshold``.

        Step (viii): messages of a failed process numbered above ``lnmn``
        are discarded even if they were received, as a safety measure that
        preserves MD5.
        """
        per_sender = self._by_sender.get(sender)
        if not per_sender:
            return 0
        doomed = [clock for clock in per_sender if clock > threshold]
        for clock in doomed:
            del per_sender[clock]
        if not per_sender:
            del self._by_sender[sender]
        self._size -= len(doomed)
        return len(doomed)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has(self, sender: str, clock: int) -> bool:
        """Whether a message from ``sender`` numbered ``clock`` is retained."""
        return clock in self._by_sender.get(sender, {})

    def messages_from(self, sender: str, above: int = -1) -> List[DataMessage]:
        """Retained messages from ``sender`` numbered strictly above ``above``,
        in increasing number order.  This is exactly the refutation payload
        of membership step (iii)."""
        per_sender = self._by_sender.get(sender, {})
        return [per_sender[clock] for clock in sorted(per_sender) if clock > above]

    def latest_clock_from(self, sender: str) -> Optional[int]:
        """Largest retained message number from ``sender`` (None if nothing)."""
        per_sender = self._by_sender.get(sender)
        return max(per_sender) if per_sender else None

    def size(self) -> int:
        """Number of messages currently retained."""
        return self._size

    @property
    def peak_size(self) -> int:
        """Largest size the buffer ever reached (buffer-occupancy benchmarks)."""
        return self._peak_size

    @property
    def discarded_stable_count(self) -> int:
        """How many messages have been garbage-collected as stable."""
        return self._discarded_stable

    def over_limit(self) -> bool:
        """Whether the configured retention limit is currently exceeded."""
        return self.retention_limit is not None and self._size > self.retention_limit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RetentionBuffer(group={self.group!r}, size={self.size()})"


class StabilityTracker:
    """Combines the stability vector and the retention buffer for one group.

    The group endpoint funnels every send and receive through this tracker:

    * :meth:`on_message` records the piggybacked ``ldn`` and retains the
      message; if the stability bound advanced, stable messages are
      discarded immediately.
    * :meth:`stability_bound` exposes ``min(SV)`` for flow control and
      benchmarks.
    """

    def __init__(
        self,
        group: str,
        members: Iterable[str],
        retention_limit: Optional[int] = None,
        use_slab: bool = True,
    ) -> None:
        self.group = group
        self.vector = make_stability_vector(members, use_slab=use_slab)
        self.buffer = RetentionBuffer(group, retention_limit=retention_limit)

    def on_message(self, message: DataMessage, key: Optional[str] = None) -> int:
        """Process a sent-or-received message; returns messages discarded.

        ``key`` optionally overrides the member the message (and its ``ldn``)
        is attributed to -- asymmetric groups attribute sequenced messages to
        the sequencer.
        """
        self.buffer.retain(message, key=key)
        attributed_to = key or message.sender
        if attributed_to in self.vector:
            self.vector.record_ldn(attributed_to, message.ldn)
        return self.buffer.discard_stable(self.vector.stability_bound)

    def record_global_ldn(self, ldn: int) -> int:
        """Record a sequencer-aggregated stability bound (asymmetric groups).

        The sequencer computes the minimum deliverable bound over every
        member (from the ``origin_ldn`` of their unicasts) before stamping
        it into sequenced messages, so the bound applies to all members at
        once.  Returns the number of retained messages discarded.
        """
        for member in list(self.vector):
            self.vector.record_ldn(member, ldn)
        return self.buffer.discard_stable(self.vector.stability_bound)

    def stability_bound(self) -> float:
        """``min(SV_x)``: every message numbered at or below this is stable.

        Always finite: when every vector entry has been marked infinite
        (all other members failed at once), the bound clamps to the last
        finite value instead of ``inf`` -- an infinite bound must never
        leak into piggybacked ``m.ldn`` fields or integer comparisons.
        """
        return self.vector.stability_bound

    def is_stable(self, clock: int) -> bool:
        """Whether messages numbered ``clock`` are known stable."""
        return clock <= self.vector.stability_bound

    def handle_member_removed(self, member: str, discard_above: int) -> None:
        """View installation (step viii) bookkeeping for a removed member."""
        self.buffer.discard_sender_above(member, discard_above)
        self.vector.mark_infinite(member)
        self.buffer.discard_stable(self.vector.stability_bound)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StabilityTracker(group={self.group!r}, bound={self.stability_bound()}, "
            f"retained={self.buffer.size()})"
        )
