"""The asymmetric (sequencer-based) total-order engine (§4.2).

One member of the group -- chosen deterministically from the current view,
so every member with the same view picks the same process -- acts as the
*sequencer*.  To multicast, a member unicasts its message to the sequencer;
the sequencer re-numbers it with its own clock (CA1) and multicasts it to
the whole view in the order the unicasts arrived.  Because the sequencer's
numbers increase and its channels are FIFO, a member can deliver a
sequenced message as soon as the cross-group bound (safe1') allows:
``D_x,i`` is simply the number of the last message received from the
sequencer.

Newtop's twist over the classic fixed-sequencer scheme is that overlapping
groups need *no* coordination between their sequencers and no common
sequencer: the shared Lamport clock plus the Send Blocking Rule (enforced
at the process level, see :mod:`repro.core.process`) are enough to keep
cross-group delivery totally ordered (MD4').

Fault tolerance for the asymmetric engine (sequencer failover, re-sending
of unsequenced requests) goes beyond what the paper spells out -- §5 covers
only the symmetric version "to save space" -- and is documented as an
extension in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.messages import (
    DataMessage,
    KIND_NULL,
    KIND_START_GROUP,
    KIND_VIEW_CUT,
    SequencerRequest,
)
from repro.core.ordering import OrderingEngine


def _cause_for_kind(kind: str) -> str:
    """Root cause of a send, derived from the message kind."""
    if kind == KIND_START_GROUP:
        return "formation"
    if kind == KIND_NULL:
        return "null_time_silence"
    return "app_multicast"


class AsymmetricOrdering(OrderingEngine):
    """Sequencer-based total order for one group."""

    def __init__(self, endpoint) -> None:
        super().__init__(endpoint)
        #: Number of the last sequenced message received (the paper's
        #: ``D_x,i`` for asymmetric groups).
        self.last_sequenced: int = 0
        #: At the sequencer only: last ``origin_ldn`` reported by each
        #: member, aggregated into the ``ldn`` of sequenced messages so
        #: stability works group-wide.
        self._member_ldn: Dict[str, int] = {
            member: 0 for member in endpoint.view.members
        }
        #: Requests this process unicast that have not yet come back as a
        #: sequenced multicast: request id -> (payload, kind).  Used to
        #: re-send after a sequencer failover.
        self._unsequenced: Dict[str, Tuple[object, str]] = {}
        #: Sequencer of the view as last installed; view installations that
        #: leave the sequencer in place must not trigger re-sends.
        self._current_sequencer: str = endpoint.view.sequencer()

    # ------------------------------------------------------------------
    # Sequencer identity
    # ------------------------------------------------------------------
    def sequencer(self) -> str:
        """The current sequencer: a deterministic choice from the view."""
        return self.endpoint.view.sequencer()

    def is_sequencer(self) -> bool:
        """Whether the local process is the current sequencer."""
        return self.sequencer() == self.endpoint.process.process_id

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(self, payload: object, kind: str) -> str:
        """Disseminate a message: sequence it locally or unicast it to the
        sequencer.

        The sequencer "logically follows the same procedure, unicasting to
        itself, and then multicasting" -- implemented as a direct local
        sequencing step, which is behaviourally identical and avoids a
        pointless network round-trip to self.
        """
        process = self.endpoint.process
        cause = _cause_for_kind(kind)
        if self.is_sequencer():
            message = self._sequence_and_multicast(
                origin=process.process_id,
                payload=payload,
                kind=kind,
                origin_request=None,
                cause=cause,
            )
            return message.msg_id
        origin_clock = process.clock.tick()
        request = SequencerRequest.make(
            origin=process.process_id,
            group=self.endpoint.group_id,
            origin_clock=origin_clock,
            payload=payload,
            kind=kind,
            origin_ldn=self.ldn(),
        )
        if kind != KIND_NULL:
            # Null requests are exempt from the blocking rules (they carry
            # no application causality), so they are not tracked.
            self._unsequenced[request.request_id] = (payload, kind)
            process.note_unicast_outstanding(self.endpoint.group_id, request.request_id)
        journeys = self.endpoint.journeys
        if journeys is not None:
            journeys.created(
                request.request_id, cause, process.process_id,
                self.endpoint.group_id, process.sim.now,
            )
            journeys.sent_to_sequencer(
                request.request_id, process.sim.now, self.sequencer()
            )
        self.endpoint.send_to_member(self.sequencer(), request, cause=cause)
        return request.request_id

    def on_sequencer_request(self, request: SequencerRequest) -> None:
        """Sequencer side: CA2 the origin's number, then sequence and
        multicast the message in arrival order."""
        process = self.endpoint.process
        process.clock.observe(request.origin_clock)
        if request.origin in self._member_ldn:
            self._member_ldn[request.origin] = max(
                self._member_ldn[request.origin], request.origin_ldn
            )
        self._sequence_and_multicast(
            origin=request.origin,
            payload=request.payload,
            kind=request.kind,
            origin_request=request.request_id,
            cause=_cause_for_kind(request.kind),
        )

    def _sequence_and_multicast(
        self,
        origin: str,
        payload: object,
        kind: str,
        origin_request: Optional[str],
        cause: Optional[str] = None,
    ) -> DataMessage:
        process = self.endpoint.process
        clock = process.clock.tick()
        message = DataMessage.sequenced(
            origin=origin,
            group=self.endpoint.group_id,
            clock=clock,
            ldn=self._aggregate_ldn(),
            payload=payload,
            kind=kind,
            sequencer=process.process_id,
            origin_request=origin_request,
        )
        journeys = self.endpoint.journeys
        if journeys is not None:
            if origin_request is None:
                # A sequencer-local send: no unicast leg, so the journey
                # starts here.  (Sequenced copies of member requests reuse
                # the request id as msg_id, continuing the same journey.)
                journeys.created(
                    message.msg_id,
                    cause or _cause_for_kind(kind),
                    origin,
                    self.endpoint.group_id,
                    process.sim.now,
                )
            journeys.sequenced(message.msg_id, process.sim.now, process.process_id)
        self.endpoint.broadcast_data(message, cause=cause)
        return message

    def emit_view_cut(self, removed: frozenset) -> int:
        """Sequence the end-of-view marker for a confirmed detection (§5.2
        extension) and return its number -- the cut at which every surviving
        member installs the view excluding ``removed``.

        The asymmetric deliverable bound is the last number received *from
        the sequencer*, so a cut expressed in any other numbering (such as
        the detection's ``lnmn``, which is in the failed member's terms)
        cannot tell receivers where the old view's stream ends: a member
        whose detection lags keeps delivering freshly sequenced messages in
        the old view while faster peers deliver them in the new one.  The
        marker closes that gap by placing the view change *into the
        sequenced stream itself*: everything the sequencer numbered below
        the marker belongs to the old view at every member, everything
        above it waits for the install.
        """
        process = self.endpoint.process
        clock = process.clock.tick()
        message = DataMessage.sequenced(
            origin=process.process_id,
            group=self.endpoint.group_id,
            clock=clock,
            ldn=self._aggregate_ldn(),
            payload=tuple(sorted(removed)),
            kind=KIND_VIEW_CUT,
            sequencer=process.process_id,
            origin_request=None,
        )
        journeys = self.endpoint.journeys
        if journeys is not None:
            journeys.created(
                message.msg_id, "view_cut", process.process_id,
                self.endpoint.group_id, process.sim.now,
            )
            journeys.sequenced(message.msg_id, process.sim.now, process.process_id)
        self.endpoint.broadcast_data(message, cause="view_cut")
        return clock

    def _aggregate_ldn(self) -> int:
        """Group-wide stability bound: the minimum deliverable bound over
        every member the sequencer has heard from, and its own."""
        own = self.ldn()
        if not self._member_ldn:
            return own
        return min(own, min(self._member_ldn.values()))

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_data(self, message: DataMessage) -> None:
        """Advance ``D_x`` and clear Send-Blocking-Rule bookkeeping.

        Only *sequenced* messages advance ``D_x``: during a sequencer
        failover members may multicast liveness nulls directly (see the
        endpoint), and those must not move the deliverable bound.
        """
        if message.sequenced_by is not None and message.clock > self.last_sequenced:
            self.last_sequenced = message.clock
        if (
            message.origin_request is not None
            and message.sender == self.endpoint.process.process_id
        ):
            # Receipt of the sequenced copy ends the failover-resend
            # obligation, but deliberately NOT the Send-Blocking-Rule
            # bookkeeping: a received-yet-undelivered copy can still be
            # discarded by a failure agreement (its clocks die with the
            # removed sequencer) and re-sequenced later, so receipt is not
            # final.  The blocking rule releases on *delivery* (see
            # ``NewtopProcess._handle_delivery``), the point past which the
            # message can no longer lose its place in the total order.
            self._unsequenced.pop(message.origin_request, None)

    # ------------------------------------------------------------------
    # Deliverability
    # ------------------------------------------------------------------
    def deliverable_bound(self) -> float:
        """``D_x,i`` = number of the last message received from the sequencer."""
        return max(float(self.last_sequenced), self.d_floor)

    # ------------------------------------------------------------------
    # View changes / failover
    # ------------------------------------------------------------------
    def on_members_removed(self, removed: frozenset, threshold: int) -> None:
        """Forget stability reports from removed members."""
        for member in removed:
            self._member_ldn.pop(member, None)

    def on_own_messages_discarded(self, messages: List[DataMessage]) -> None:
        """Step (viii) discarded our own sequenced messages (they travelled
        through the failed sequencer above ``lnmn``); track them as
        unsequenced again so the failover resend gives them a second life
        under their original identity instead of silently losing them."""
        process = self.endpoint.process
        for message in messages:
            request_id = message.origin_request
            if request_id is None or request_id in self._unsequenced:
                continue
            self._unsequenced[request_id] = (message.payload, message.kind)
            process.note_unicast_outstanding(self.endpoint.group_id, request_id)

    def _unsequenced_in_send_order(self) -> List[Tuple[str, Tuple[object, str]]]:
        """Outstanding requests ordered by original send time.

        Dict insertion order is *not* send order here: step (viii) of the
        failure agreement re-adds own messages whose sequenced copies were
        discarded (:meth:`on_own_messages_discarded`), and those were sent
        *before* any request that never came back.  Re-sequencing in
        insertion order would invert the origin's FIFO.  Request ids carry
        a monotonically increasing counter, so the numeric suffix recovers
        the true send order.
        """
        return sorted(
            self._unsequenced.items(),
            key=lambda item: int(item[0].rsplit("#", 1)[1]),
        )

    def on_view_installed(self) -> None:
        """Sequencer failover: if the sequencer changed, re-send requests
        that were never sequenced (or whose sequenced copies were discarded
        by the failure agreement) to the new sequencer."""
        process = self.endpoint.process
        new_sequencer = self.sequencer()
        if new_sequencer == self._current_sequencer:
            # The view shrank but the sequencer survived: our outstanding
            # requests are still queued at (or in flight to) it, and
            # re-unicasting would make it sequence them twice.
            return
        self._current_sequencer = new_sequencer
        if self.is_sequencer():
            # We just became the sequencer; sequence our unsequenced
            # requests locally, under their original request ids.  The
            # loopback *delivery* clears the Send-Blocking-Rule bookkeeping
            # -- clearing it up front would let deferred sends in *other*
            # groups flush with Lamport clocks below these messages',
            # violating the causal order the blocking rule exists for.
            pending = self._unsequenced_in_send_order()
            self._unsequenced.clear()
            for request_id, (payload, kind) in pending:
                self._sequence_and_multicast(
                    origin=process.process_id,
                    payload=payload,
                    kind=kind,
                    origin_request=request_id,
                    cause="failover_resend",
                )
            return
        if not self._unsequenced:
            return
        # Re-unicast under the *original* request id: the sequencer reuses
        # it as the multicast's message id, so the message keeps one
        # identity from the origin's send to every delivery (receivers that
        # saw a pre-crash copy dedup instead of delivering twice), and the
        # Send-Blocking-Rule bookkeeping simply stays outstanding.
        journeys = self.endpoint.journeys
        for request_id, (payload, kind) in self._unsequenced_in_send_order():
            request = SequencerRequest(
                request_id=request_id,
                origin=process.process_id,
                group=self.endpoint.group_id,
                origin_clock=process.clock.tick(),
                payload=payload,
                kind=kind,
                origin_ldn=self.ldn(),
            )
            if journeys is not None:
                journeys.sent_to_sequencer(
                    request_id, process.sim.now, self.sequencer()
                )
            self.endpoint.send_to_member(
                self.sequencer(), request, cause="failover_resend"
            )

    def unsequenced_requests(self) -> List[str]:
        """Request ids awaiting sequencing (introspection for tests)."""
        return sorted(self._unsequenced)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsymmetricOrdering(group={self.endpoint.group_id!r}, "
            f"sequencer={self.sequencer()!r}, D={self.deliverable_bound()})"
        )
