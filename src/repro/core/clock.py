"""Lamport logical clock (rules CA1 and CA2 of §4.1).

Every Newtop process maintains exactly one logical clock, *regardless of
how many groups it belongs to*; this is the key design decision that makes
mixed symmetric/asymmetric operation and cross-group total order (MD4')
possible with a single integer of per-message overhead.

The two counter-advance rules from the paper:

* **CA1** (on send): before sending ``m``, increment the clock by one and
  stamp the new value into ``m.c``.
* **CA2** (on receive): on receiving ``m``, set the clock to
  ``max(clock, m.c)``.

These yield the paper's properties pr1 and pr2, and hence
``send(m) -> send(m')  =>  m.c < m'.c`` for any two messages in the system.
"""

from __future__ import annotations

from typing import Optional


class LamportClock:
    """A single Lamport counter shared by all of a process's groups."""

    __slots__ = ("_value", "_ticks", "_observations")

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise ValueError(f"clock value must be non-negative (got {initial})")
        self._value = initial
        self._ticks = 0
        self._observations = 0

    # ------------------------------------------------------------------
    # Counter-advance rules
    # ------------------------------------------------------------------
    def tick(self) -> int:
        """CA1: advance the clock for a send and return the new value.

        The returned value is the message number ``m.c`` to stamp on the
        outgoing message.
        """
        self._value += 1
        self._ticks += 1
        return self._value

    def observe(self, received_clock: int) -> int:
        """CA2: fold in the number of a received message; return the clock.

        Note CA2 takes the maximum *without* the extra increment some
        Lamport-clock formulations use; the paper's CA2 is exactly
        ``LC := max(LC, m.c)`` and the delivery conditions rely on that
        (a process that only ever receives never outruns the senders).
        """
        if received_clock < 0:
            raise ValueError(f"received clock must be non-negative (got {received_clock})")
        if received_clock > self._value:
            self._value = received_clock
        self._observations += 1
        return self._value

    def advance_to(self, floor: int) -> int:
        """Raise the clock to at least ``floor`` (used by group formation,
        §5.3 step 5: "LCk is set to start-number-max if start-number-max is
        larger")."""
        if floor > self._value:
            self._value = floor
        return self._value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """Current clock value (the number of the last send or the largest
        number observed, whichever is greater)."""
        return self._value

    @property
    def ticks(self) -> int:
        """How many times CA1 has fired (messages sent by this process)."""
        return self._ticks

    @property
    def observations(self) -> int:
        """How many times CA2 has fired (messages received)."""
        return self._observations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LamportClock(value={self._value})"

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LamportClock):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "LamportClock | int") -> bool:
        other_value = other._value if isinstance(other, LamportClock) else other
        return self._value < other_value

    def __hash__(self) -> int:
        return hash(self._value)
