"""The Newtop process: the library's primary public API.

A :class:`NewtopProcess` represents one application process participating
in any number of groups.  It owns the pieces the paper describes as shared
across a process's memberships:

* the single Lamport clock (CA1/CA2, §4.1) -- one per process, *not* one
  per group;
* the cross-group delivery queue implementing safe1'/safe2, which is what
  extends total order across overlapping groups (MD4');
* the blocking rules of §4.2/§4.3 (a multi-group process must not
  disseminate a new message while a message it unicast to some *other*
  group's sequencer is still awaiting sequencing);
* the group-formation coordinator (§5.3).

Per-group machinery (ordering engine, membership, stability, time-silence,
flow control) lives in :class:`~repro.core.endpoint.GroupEndpoint`.

Typical usage::

    sim = Simulator(seed=1)
    network = Network(sim)
    transport = Transport(network)
    recorder = TraceRecorder()
    config = NewtopConfig()

    processes = {
        name: NewtopProcess(name, sim, transport, recorder, config)
        for name in ("P1", "P2", "P3")
    }
    for process in processes.values():
        process.create_group("g1", ["P1", "P2", "P3"])

    processes["P1"].multicast("g1", {"op": "set", "key": "x", "value": 1})
    sim.run(until=50)

(or use :class:`repro.api.Session`, which wraps exactly this boilerplate
behind one interface for Newtop and every baseline stack.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.clock import LamportClock
from repro.core.config import NewtopConfig, OrderingMode
from repro.core.delivery import DeliveryQueue
from repro.core.endpoint import GroupEndpoint
from repro.core.errors import (
    AlreadyMemberError,
    DepartedGroupError,
    NotAMemberError,
    ProcessCrashedError,
)
from repro.core.group_formation import FormationCoordinator, FormationHandle, VotePolicy
from repro.core.messages import (
    ConfirmMessage,
    DataMessage,
    FormGroupInvite,
    FormGroupVote,
    RefuteMessage,
    SequencerRequest,
    SuspectMessage,
)
from repro.core.vectors import INFINITY
from repro.core.views import MembershipView
from repro.net import trace as trace_events
from repro.net.simulator import Simulator
from repro.net.trace import TraceRecorder
from repro.net.transport import Transport, TransportMessage

#: Application delivery callback: ``callback(group, sender, payload, msg_id)``.
DeliveryCallback = Callable[[str, str, object, str], None]


@dataclass
class DeliveredMessage:
    """A record of one application delivery, kept in arrival order."""

    group: str
    sender: str
    payload: object
    msg_id: str
    clock: int
    view_index: int
    time: float


class NewtopProcess:
    """One Newtop protocol participant (public API)."""

    def __init__(
        self,
        process_id: str,
        sim: Simulator,
        transport: Transport,
        recorder: Optional[TraceRecorder] = None,
        config: Optional[NewtopConfig] = None,
        delivery_callback: Optional[DeliveryCallback] = None,
        formation_vote_policy: Optional[VotePolicy] = None,
    ) -> None:
        self.process_id = process_id
        self.sim = sim
        self.config = (config or NewtopConfig()).validate()
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self.transport_endpoint = transport.endpoint(process_id)
        self.transport_endpoint.register_handler("newtop", self._on_transport_message)
        if self.config.batch_receipts:
            self.transport_endpoint.register_batch_handler(
                "newtop", self._on_transport_batch
            )
        self.clock = LamportClock()
        self.delivery_queue = DeliveryQueue()
        metrics = sim.metrics
        if metrics is not None:
            # One aggregate gauge over every process; polled at sampler
            # ticks only, so joining it costs nothing on the hot path.
            metrics.sum_gauge("process.delivery_queue_depth").add(
                self.delivery_queue.pending_count
            )
        #: Journey tracing (``sim.journeys`` is None unless the run asked
        #: for it); hooks below pay one ``is None`` check when off.
        self.journeys = sim.journeys
        self.formation = FormationCoordinator(
            self,
            sim,
            vote_policy=formation_vote_policy,
            formation_timeout=self.config.formation_timeout,
        )
        self._endpoints: Dict[str, GroupEndpoint] = {}
        self._delivery_callbacks: List[DeliveryCallback] = []
        if delivery_callback is not None:
            self._delivery_callbacks.append(delivery_callback)
        #: Per-group set of request ids unicast to a sequencer and not yet
        #: sequenced (the Send / Mixed-mode Blocking Rule bookkeeping).
        self._outstanding_unicasts: Dict[str, Set[str]] = {}
        #: Group messages that arrived for a group whose formation we are
        #: still voting on (e.g. a faster member's start-group overtaking the
        #: last vote); replayed once the group is activated locally.
        self._pre_activation_buffer: Dict[str, List[DataMessage]] = {}
        self.delivered: List[DeliveredMessage] = []
        self.crashed = False
        self._delivering = False
        self._flushing = False
        self._in_receipt_batch = False

    # ------------------------------------------------------------------
    # Group membership (public API)
    # ------------------------------------------------------------------
    def create_group(
        self,
        group_id: str,
        members: Sequence[str],
        mode: Optional[OrderingMode] = None,
    ) -> GroupEndpoint:
        """Install the initial view of a statically configured group.

        Every intended member must call this with the same membership; the
        initial view ``V^0`` is the full membership (§3).  For dynamically
        formed groups use :meth:`form_group` instead.
        """
        self._ensure_alive()
        if group_id in self._endpoints:
            raise AlreadyMemberError(self.process_id, group_id)
        if self.process_id not in members:
            raise NotAMemberError(self.process_id, group_id)
        endpoint = GroupEndpoint(
            self,
            group_id,
            tuple(sorted(set(members))),
            mode or self.config.default_mode,
        )
        self._endpoints[group_id] = endpoint
        endpoint.start()
        return endpoint

    def form_group(
        self,
        group_id: str,
        members: Sequence[str],
        mode: Optional[OrderingMode] = None,
    ) -> FormationHandle:
        """Initiate dynamic formation of a new group (§5.3)."""
        self._ensure_alive()
        if group_id in self._endpoints:
            raise AlreadyMemberError(self.process_id, group_id)
        return self.formation.initiate(
            group_id, tuple(sorted(set(members))), mode or self.config.default_mode
        )

    def activate_formed_group(
        self, group_id: str, members: Tuple[str, ...], mode: OrderingMode
    ) -> None:
        """Formation step 4: install the initial view of a formed group and
        multicast the ``start-group`` message.  Called by the formation
        coordinator; applications normally never call this directly."""
        if self.crashed or group_id in self._endpoints:
            return
        endpoint = GroupEndpoint(
            self, group_id, tuple(sorted(set(members))), mode, formation_wait=True
        )
        self._endpoints[group_id] = endpoint
        endpoint.start()
        endpoint.send_start_group()
        # Replay group traffic (typically other members' start-group
        # messages) that overtook our last formation vote.
        for message in self._pre_activation_buffer.pop(group_id, []):
            endpoint.on_data_message(message)

    def leave_group(self, group_id: str) -> None:
        """Voluntarily depart from ``group_id``.

        The departing process simply stops participating; the remaining
        members observe its silence, reach agreement and install a view
        without it (the paper folds departures into the same machinery as
        crashes).  Once departed, a process keeps no view for the group.
        """
        endpoint = self._endpoint(group_id)
        self.recorder.record(
            self.sim.now, trace_events.DEPART, self.process_id, group=group_id
        )
        endpoint.shutdown()
        self.attempt_delivery()
        self.flush_deferred_sends()

    def crash(self) -> None:
        """Crash-stop this process: all memberships cease immediately."""
        if self.crashed:
            return
        self.crashed = True
        self.recorder.record(self.sim.now, trace_events.CRASH, self.process_id)
        for endpoint in self._endpoints.values():
            endpoint.shutdown()
        self.transport_endpoint.crash()

    # ------------------------------------------------------------------
    # Introspection (public API)
    # ------------------------------------------------------------------
    @property
    def groups(self) -> List[str]:
        """Groups this process currently participates in."""
        return sorted(
            group_id
            for group_id, endpoint in self._endpoints.items()
            if not endpoint.departed
        )

    def view(self, group_id: str) -> MembershipView:
        """The currently installed view for ``group_id``."""
        return self._endpoint(group_id).view

    def endpoint(self, group_id: str) -> GroupEndpoint:
        """The group endpoint (advanced introspection; prefer :meth:`view`)."""
        return self._endpoint(group_id)

    def is_member(self, group_id: str) -> bool:
        """Whether the process currently participates in ``group_id``."""
        endpoint = self._endpoints.get(group_id)
        return endpoint is not None and not endpoint.departed and not self.crashed

    def add_delivery_callback(self, callback: DeliveryCallback) -> None:
        """Register an additional application delivery callback."""
        self._delivery_callbacks.append(callback)

    def delivered_payloads(self, group_id: Optional[str] = None) -> List[object]:
        """Payloads delivered so far, in delivery order."""
        return [
            record.payload
            for record in self.delivered
            if group_id is None or record.group == group_id
        ]

    # ------------------------------------------------------------------
    # Sending (public API)
    # ------------------------------------------------------------------
    def multicast(self, group_id: str, payload: object) -> Optional[str]:
        """Multicast ``payload`` to the members of ``group_id``.

        Returns the end-to-end message id, or ``None`` when the send was
        deferred (blocking rules, formation wait, view-change blocking or
        flow control); deferred sends are transmitted automatically, in
        order, as soon as the obstacle clears.
        """
        self._ensure_alive()
        endpoint = self._endpoint(group_id)
        if endpoint.departed:
            raise DepartedGroupError(self.process_id, group_id)
        reason = self._send_block_reason(endpoint)
        if reason is not None or endpoint.deferred_sends:
            endpoint.defer_send(payload, reason or "queued_behind_deferred")
            return None
        return self._transmit(endpoint, payload)

    def _transmit(
        self,
        endpoint: GroupEndpoint,
        payload: object,
        blocked_for: Optional[float] = None,
    ) -> str:
        message_id = endpoint.send_application(payload)
        if self.journeys is not None and blocked_for is not None:
            self.journeys.blocked_send(
                message_id, self.sim.now, self.process_id, blocked_for
            )
        self.recorder.record(
            self.sim.now,
            trace_events.SEND,
            self.process_id,
            group=endpoint.group_id,
            message_id=message_id,
            sender=self.process_id,
            clock=self.clock.value,
        )
        return message_id

    def _send_block_reason(self, endpoint: GroupEndpoint) -> Optional[str]:
        """Why an application send in this group must wait, if at all.

        Implements the Send Blocking Rule / Mixed-mode Blocking Rule
        (§4.2/§4.3): dissemination waits while a message unicast to the
        sequencer of a *different* group is still unsequenced.  Also folds
        in the optional ISIS-style view-change blocking, the §5.3 step-5
        formation wait, and flow control.
        """
        for group_id, outstanding in self._outstanding_unicasts.items():
            if group_id != endpoint.group_id and outstanding:
                return f"blocking_rule:{group_id}"
        if endpoint.in_formation_wait:
            return "formation_wait"
        if self.config.block_sends_during_view_change and endpoint.pending_view_changes:
            return "view_change"
        if not endpoint.flow.can_send():
            return "flow_control"
        return None

    def flush_deferred_sends(self) -> int:
        """Transmit deferred application sends whose obstacle has cleared.

        Called internally whenever an obstacle may have cleared; returns the
        number of messages transmitted.  The method is not re-entrant:
        transmitting a deferred message loops back through the local receive
        path, which would otherwise re-invoke the flush mid-transmission and
        interleave the recorded send order.
        """
        if self.crashed or self._flushing:
            return 0
        self._flushing = True
        flushed = 0
        try:
            for endpoint in self._endpoints.values():
                while endpoint.deferred_sends and not endpoint.departed:
                    if self._send_block_reason(endpoint) is not None:
                        break
                    payload = endpoint.deferred_sends.pop(0)
                    # ``deferred_since`` is only populated when journey
                    # tracing is on (it parallels ``deferred_sends``).
                    blocked_for = (
                        self.sim.now - endpoint.deferred_since.pop(0)
                        if endpoint.deferred_since
                        else None
                    )
                    self.recorder.record(
                        self.sim.now,
                        trace_events.UNBLOCKED_SEND,
                        self.process_id,
                        group=endpoint.group_id,
                    )
                    self._transmit(endpoint, payload, blocked_for=blocked_for)
                    flushed += 1
        finally:
            self._flushing = False
        return flushed

    # ------------------------------------------------------------------
    # Blocking-rule bookkeeping (called by the asymmetric engine)
    # ------------------------------------------------------------------
    def note_unicast_outstanding(self, group_id: str, request_id: str) -> None:
        """A message was unicast to ``group_id``'s sequencer and now awaits
        sequencing."""
        self._outstanding_unicasts.setdefault(group_id, set()).add(request_id)

    def note_unicast_sequenced(self, group_id: str, request_id: str) -> None:
        """A previously unicast message came back sequenced *and was
        delivered* (called from :meth:`_handle_delivery`).

        Deliberately does NOT flush deferred sends: this runs inside the
        delivery loop, and a flush here can re-enter it -- if the flushed
        send makes this process sequence a message in another group, the
        loopback delivery runs under a deliverable bound that already
        covers the not-yet-enqueued message, inverting the total order
        (safe2).  Callers of :meth:`attempt_delivery` flush afterwards.
        """
        outstanding = self._outstanding_unicasts.get(group_id)
        if outstanding is not None:
            outstanding.discard(request_id)

    def outstanding_unicasts(self, group_id: Optional[str] = None) -> int:
        """Number of unsequenced unicasts (introspection for tests)."""
        if group_id is not None:
            return len(self._outstanding_unicasts.get(group_id, set()))
        return sum(len(values) for values in self._outstanding_unicasts.values())

    # ------------------------------------------------------------------
    # Transport ingress
    # ------------------------------------------------------------------
    @property
    def in_receipt_batch(self) -> bool:
        """Whether a transport batch is being drained right now.

        While true, the per-receipt delivery pass in
        :meth:`GroupEndpoint.on_data_message` is suppressed; one pass runs
        at the end of the batch instead.
        """
        return self._in_receipt_batch

    def _on_transport_batch(self, messages: List[TransportMessage]) -> None:
        """Drain every receipt that arrived at this instant, then run a
        single delivery pass and deferred-send flush for the whole batch.

        The delivery *sequence* is unchanged: safe2 pops messages from the
        sorted queue under a monotone bound, so delivering after the last
        receipt of an instant yields the same stream as delivering after
        each one (pinned by the batching equivalence test).
        """
        self._in_receipt_batch = True
        try:
            for tmsg in messages:
                if self.crashed:
                    return
                self._on_transport_message(tmsg)
        finally:
            self._in_receipt_batch = False
        self.attempt_delivery()
        self.flush_deferred_sends()

    def _on_transport_message(self, tmsg: TransportMessage) -> None:
        if self.crashed:
            return
        if self.journeys is not None:
            # Exact transit timing: the envelope carries its send instant.
            self.journeys.transport_received(tmsg, self.sim.now, self.process_id)
        payload = tmsg.payload
        if isinstance(payload, DataMessage):
            endpoint = self._endpoints.get(payload.group)
            if endpoint is not None:
                endpoint.on_data_message(payload)
            elif self.formation.attempt(payload.group) is not None:
                self._pre_activation_buffer.setdefault(payload.group, []).append(payload)
                if payload.is_start_group:
                    # Proof the vote was unanimous even if some yes votes
                    # never reached us; activation replays the buffer.
                    self.formation.on_activation_evidence(payload.group)
        elif isinstance(payload, SequencerRequest):
            endpoint = self._endpoints.get(payload.group)
            if endpoint is not None:
                endpoint.on_sequencer_request(payload)
        elif isinstance(payload, (SuspectMessage, RefuteMessage, ConfirmMessage)):
            endpoint = self._endpoints.get(payload.group)
            if endpoint is not None:
                endpoint.on_membership_message(tmsg.src, payload)
        elif isinstance(payload, FormGroupInvite):
            self.formation.on_invite(payload)
        elif isinstance(payload, FormGroupVote):
            self.formation.on_vote(payload)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected protocol payload: {payload!r}")

    def send_control(
        self, member: str, payload: object, cause: str = "formation"
    ) -> None:
        """Transmit a formation (control) message to ``member``."""
        size = payload.wire_size_bytes() if hasattr(payload, "wire_size_bytes") else 0
        self.transport_endpoint.send(
            member, payload, channel="newtop", size_bytes=size, cause=cause
        )

    # ------------------------------------------------------------------
    # Delivery machinery
    # ------------------------------------------------------------------
    def global_deliverable_bound(self) -> float:
        """``D_i``: the minimum of the per-group deliverable bounds (safe1')."""
        bound = INFINITY
        for endpoint in self._endpoints.values():
            group_bound = endpoint.deliverable_bound()
            if group_bound < bound:
                bound = group_bound
        return bound

    def attempt_delivery(self) -> int:
        """Deliver everything that is deliverable, interleaving pending view
        installations at their thresholds.  Returns deliveries made."""
        if self.crashed or self._delivering:
            return 0
        self._delivering = True
        delivered = 0
        try:
            progress = True
            while progress:
                progress = False
                effective = self.global_deliverable_bound()
                for endpoint in self._endpoints.values():
                    threshold = endpoint.next_view_change_threshold()
                    if threshold < effective:
                        effective = threshold
                if effective > 0:
                    for delivery in self.delivery_queue.pop_deliverable(effective):
                        self._handle_delivery(delivery.message)
                        delivered += 1
                        progress = True
                for endpoint in self._endpoints.values():
                    if endpoint.maybe_install_views():
                        progress = True
        finally:
            self._delivering = False
        return delivered

    def deliver_immediately(self, endpoint: GroupEndpoint, message: DataMessage) -> None:
        """Atomic-only groups: hand the message to the application without
        total-order gating (Fig. 3's atomic-delivery path)."""
        self._handle_delivery(message)

    def _handle_delivery(self, message: DataMessage) -> None:
        if message.origin_request is not None and message.sender == self.process_id:
            # Our unicast came back sequenced and is now *delivered*: only
            # here may the Send Blocking Rule release.  Releasing on mere
            # receipt is unsound -- a received-but-undelivered sequenced
            # copy can still be discarded by a failure agreement and
            # re-sequenced with a later clock, after causally-later sends
            # in other groups already went out and delivered.
            self.note_unicast_sequenced(message.group, message.origin_request)
        endpoint = self._endpoints.get(message.group)
        view_index = endpoint.view.index if endpoint is not None else -1
        record = DeliveredMessage(
            group=message.group,
            sender=message.sender,
            payload=message.payload,
            msg_id=message.msg_id,
            clock=message.clock,
            view_index=view_index,
            time=self.sim.now,
        )
        self.delivered.append(record)
        self.recorder.record(
            self.sim.now,
            trace_events.DELIVER,
            self.process_id,
            group=message.group,
            message_id=message.msg_id,
            sender=message.sender,
            clock=message.clock,
            view_index=view_index,
        )
        if self.journeys is not None:
            self.journeys.delivered(message.msg_id, self.sim.now, self.process_id)
        for callback in self._delivery_callbacks:
            callback(message.group, message.sender, message.payload, message.msg_id)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _endpoint(self, group_id: str) -> GroupEndpoint:
        endpoint = self._endpoints.get(group_id)
        if endpoint is None:
            raise NotAMemberError(self.process_id, group_id)
        return endpoint

    def _ensure_alive(self) -> None:
        if self.crashed:
            raise ProcessCrashedError(self.process_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"NewtopProcess({self.process_id!r}, groups={self.groups}, {state})"
